"""Shared fixtures: small on-disk datasets, engine builders, lock watchdog."""

from __future__ import annotations

import os

import pytest

from repro import QueryEngine, ReCacheConfig
from repro.engine.types import FLOAT, INT, Field, ListType, RecordType
from repro.formats import write_csv, write_json_lines
from repro.workloads.nested import synthetic_order_lineitems
from repro.workloads.tpch import ORDER_LINEITEMS_SCHEMA

FLAT_SCHEMA = RecordType(
    [Field("id", INT), Field("value", FLOAT), Field("group", INT), Field("score", FLOAT)]
)


def make_flat_rows(count: int = 400) -> list[dict]:
    return [
        {"id": i, "value": i * 0.5, "group": i % 10, "score": (i * 7) % 100 / 10.0}
        for i in range(count)
    ]


@pytest.fixture(scope="session")
def dataset_dir(tmp_path_factory):
    """A session-scoped directory holding one CSV and one nested JSON file."""
    directory = tmp_path_factory.mktemp("data")
    write_csv(directory / "flat.csv", FLAT_SCHEMA, make_flat_rows())
    write_json_lines(directory / "orders.json", synthetic_order_lineitems(200, seed=5))
    return directory


@pytest.fixture()
def engine(dataset_dir):
    """A query engine over the shared datasets with a fresh cache per test."""
    config = ReCacheConfig(admission_sample_records=50)
    eng = QueryEngine(config)
    eng.register_csv("flat", dataset_dir / "flat.csv", FLAT_SCHEMA)
    eng.register_json("orders", dataset_dir / "orders.json", ORDER_LINEITEMS_SCHEMA)
    return eng


def build_engine(dataset_dir, config: ReCacheConfig) -> QueryEngine:
    eng = QueryEngine(config)
    eng.register_csv("flat", dataset_dir / "flat.csv", FLAT_SCHEMA)
    eng.register_json("orders", dataset_dir / "orders.json", ORDER_LINEITEMS_SCHEMA)
    return eng


# ---------------------------------------------------------------------------
# Budget/occupancy conservation — the chaos suite's leak detector
# ---------------------------------------------------------------------------
@pytest.fixture()
def assert_budget_conserved():
    """Register caches; teardown asserts their accounting returned to baseline.

    Usage: ``assert_budget_conserved(engine.recache)`` (returns the cache, so
    it chains).  At teardown every tracked cache must satisfy conservation:
    zero outstanding :class:`~repro.core.sharded_cache.SharedBudget`
    reservations (every ``try_reserve`` was settled by a release) and
    occupancy equal to the bytes of the entries actually resident — exactly
    what a test that raises mid-admission, mid-eviction or mid-quarantine is
    trying to violate.
    """
    tracked = []

    def track(recache):
        tracked.append(recache)
        return recache

    yield track

    for recache in tracked:
        budget = getattr(recache, "budget", None)
        if budget is not None:
            assert budget.reserved == 0, (
                f"leaked budget reservation: {budget.reserved} bytes still "
                "reserved after all queries settled"
            )
        resident = sum(entry.nbytes for entry in recache.entries())
        assert recache.total_bytes == resident, (
            f"occupancy {recache.total_bytes} != resident entry bytes "
            f"{resident}: admission/eviction accounting leaked"
        )


# ---------------------------------------------------------------------------
# Runtime lock-order watchdog (tsan-lite) — see repro.analysis.lock_watchdog
# ---------------------------------------------------------------------------
@pytest.fixture()
def lock_watchdog():
    """An installed lock-order watchdog; fails the test on any inversion."""
    from repro.analysis.lock_watchdog import LockWatchdog

    watchdog = LockWatchdog().install()
    try:
        yield watchdog
        watchdog.assert_clean()
    finally:
        watchdog.uninstall()


@pytest.fixture(autouse=True, scope="session")
def _lock_watchdog_session():
    """Under ``RECACHE_LOCK_WATCHDOG=1`` run the whole session watched.

    Session-scoped on purpose: locks are created at object construction, so a
    per-test install would miss locks built by session fixtures, and a
    function-scoped autouse fixture would trip Hypothesis' function-scoped
    fixture health check.  Inversions recorded anywhere in the run fail the
    session at teardown with both acquisition sites in the message.
    """
    if os.environ.get("RECACHE_LOCK_WATCHDOG") != "1":
        yield
        return
    from repro.analysis.lock_watchdog import LockWatchdog

    watchdog = LockWatchdog().install()
    try:
        yield
        watchdog.assert_clean()
    finally:
        watchdog.uninstall()
