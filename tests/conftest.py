"""Shared fixtures: small on-disk datasets and engine builders."""

from __future__ import annotations

import pytest

from repro import QueryEngine, ReCacheConfig
from repro.engine.types import FLOAT, INT, Field, ListType, RecordType
from repro.formats import write_csv, write_json_lines
from repro.workloads.nested import synthetic_order_lineitems
from repro.workloads.tpch import ORDER_LINEITEMS_SCHEMA

FLAT_SCHEMA = RecordType(
    [Field("id", INT), Field("value", FLOAT), Field("group", INT), Field("score", FLOAT)]
)


def make_flat_rows(count: int = 400) -> list[dict]:
    return [
        {"id": i, "value": i * 0.5, "group": i % 10, "score": (i * 7) % 100 / 10.0}
        for i in range(count)
    ]


@pytest.fixture(scope="session")
def dataset_dir(tmp_path_factory):
    """A session-scoped directory holding one CSV and one nested JSON file."""
    directory = tmp_path_factory.mktemp("data")
    write_csv(directory / "flat.csv", FLAT_SCHEMA, make_flat_rows())
    write_json_lines(directory / "orders.json", synthetic_order_lineitems(200, seed=5))
    return directory


@pytest.fixture()
def engine(dataset_dir):
    """A query engine over the shared datasets with a fresh cache per test."""
    config = ReCacheConfig(admission_sample_records=50)
    eng = QueryEngine(config)
    eng.register_csv("flat", dataset_dir / "flat.csv", FLAT_SCHEMA)
    eng.register_json("orders", dataset_dir / "orders.json", ORDER_LINEITEMS_SCHEMA)
    return eng


def build_engine(dataset_dir, config: ReCacheConfig) -> QueryEngine:
    eng = QueryEngine(config)
    eng.register_csv("flat", dataset_dir / "flat.csv", FLAT_SCHEMA)
    eng.register_json("orders", dataset_dir / "orders.json", ORDER_LINEITEMS_SCHEMA)
    return eng
