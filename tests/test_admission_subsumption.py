"""Tests for the admission controller and the subsumption index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.admission import AdmissionController, AdmissionDecision, AdmissionSample
from repro.core.cache_entry import CacheEntry, CacheKey
from repro.core.subsumption import SubsumptionIndex
from repro.engine.expressions import And, RangePredicate
from repro.engine.types import FLOAT, Field, RecordType
from repro.layouts import build_layout

SCHEMA = RecordType([Field("x", FLOAT), Field("y", FLOAT)])


def make_entry(source, predicate, fields=("x", "y")):
    layout = build_layout(
        "columnar", SCHEMA, list(fields), rows=[{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": 4.0}]
    )
    return CacheEntry(
        key=CacheKey.for_select(source, predicate),
        source=source,
        source_format="csv",
        predicate=predicate,
        fields=list(fields),
        layout=layout,
    )


class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(overhead_threshold=0.0)
        with pytest.raises(ValueError):
            AdmissionController(sample_records=0)
        with pytest.raises(ValueError):
            AdmissionSample(0, 0, 1, 1, sample_records=0, total_records=10)

    def test_projected_overhead_scales_to_file_size(self):
        # 10% overhead within the sample stays 10% when extrapolated linearly.
        sample = AdmissionSample(to1=0.0, tc1=0.0, to2=1.0, tc2=0.1, sample_records=100, total_records=1000)
        controller = AdmissionController(overhead_threshold=0.2)
        assert controller.projected_overhead(sample) == pytest.approx(0.1)
        assert controller.decide(sample) is AdmissionDecision.EAGER

    def test_paper_join_example(self):
        """The R x S x sigma(T) example of Section 5.2.

        A 10-second join ran before the sample; caching the sample of T took
        100ms out of 10.1s total, which looks like 1% — but extrapolated to the
        rest of T the caching overhead is far higher, so ReCache must go lazy
        while the naive estimator stays eager.
        """
        sample = AdmissionSample(
            to1=10.0, tc1=0.0, to2=10.1, tc2=0.1, sample_records=1_000, total_records=1_000_000
        )
        controller = AdmissionController(overhead_threshold=0.10)
        assert controller.naive_overhead(sample) == pytest.approx(0.0099, rel=1e-2)
        assert controller.decide_naive(sample) is AdmissionDecision.EAGER
        assert controller.projected_overhead(sample) > 0.5
        assert controller.decide(sample) is AdmissionDecision.LAZY

    def test_high_overhead_goes_lazy(self):
        sample = AdmissionSample(to1=0.0, tc1=0.0, to2=1.0, tc2=0.5, sample_records=10, total_records=100)
        assert AdmissionController(0.10).decide(sample) is AdmissionDecision.LAZY

    def test_small_file_clamps_total_records(self):
        sample = AdmissionSample(to1=0.0, tc1=0.0, to2=1.0, tc2=0.05, sample_records=100, total_records=10)
        assert sample.total_records == 100

    def test_working_set_shortcut(self):
        assert AdmissionController.should_skip_sampling(True)
        assert not AdmissionController.should_skip_sampling(False)

    @given(
        st.floats(0, 10), st.floats(0, 10), st.floats(0, 10), st.integers(1, 1000), st.integers(1, 100000)
    )
    def test_projected_overhead_bounded(self, to1, extra_to, tc_delta, sample_records, total_records):
        sample = AdmissionSample(
            to1=to1,
            tc1=0.0,
            to2=to1 + extra_to + tc_delta,
            tc2=min(tc_delta, extra_to + tc_delta),
            sample_records=sample_records,
            total_records=total_records,
        )
        overhead = AdmissionController().projected_overhead(sample)
        assert 0.0 <= overhead <= 1.0 + 1e-9


class TestSubsumptionIndex:
    def test_exact_and_covering_lookup(self):
        index = SubsumptionIndex()
        wide = make_entry("t", RangePredicate("x", 0, 100))
        narrow = make_entry("t", RangePredicate("x", 40, 50))
        other_source = make_entry("u", RangePredicate("x", 0, 100))
        for entry in (wide, narrow, other_source):
            index.register(entry)
        matches = index.find_subsuming("t", RangePredicate("x", 45, 48), ["x"])
        assert wide in matches and narrow in matches and other_source not in matches
        assert index.find_subsuming("t", RangePredicate("x", 10, 60), ["x"]) == [wide]

    def test_full_scan_entries_subsume_everything(self):
        index = SubsumptionIndex()
        full = make_entry("t", None)
        index.register(full)
        assert index.find_subsuming("t", RangePredicate("x", 0, 1), ["x"]) == [full]
        assert index.find_subsuming("t", None, ["x"]) == [full]

    def test_field_coverage_required(self):
        index = SubsumptionIndex()
        entry = make_entry("t", RangePredicate("x", 0, 100), fields=("x",))
        index.register(entry)
        assert index.find_subsuming("t", RangePredicate("x", 1, 2), ["x", "y"]) == []

    def test_unregister(self):
        index = SubsumptionIndex()
        entry = make_entry("t", RangePredicate("x", 0, 100))
        index.register(entry)
        index.unregister(entry)
        assert index.find_subsuming("t", RangePredicate("x", 1, 2), ["x"]) == []

    def test_conjunctive_predicates(self):
        index = SubsumptionIndex()
        cached = make_entry("t", And([RangePredicate("x", 0, 50), RangePredicate("y", 0, 50)]))
        index.register(cached)
        assert index.find_subsuming(
            "t", And([RangePredicate("x", 10, 20), RangePredicate("y", 10, 20)]), ["x"]
        ) == [cached]
        # the new predicate leaves y unconstrained: the cached result is not a superset
        assert index.find_subsuming("t", RangePredicate("x", 10, 20), ["x"]) == []

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(st.floats(0, 100), st.floats(0, 30)), min_size=1, max_size=25),
        st.tuples(st.floats(0, 100), st.floats(0, 10)),
    )
    def test_rtree_and_linear_lookup_agree(self, cached_ranges, probe):
        rtree_index = SubsumptionIndex(use_rtree=True)
        linear_index = SubsumptionIndex(use_rtree=False)
        entries = []
        for low, width in cached_ranges:
            entry = make_entry("t", RangePredicate("x", low, low + width))
            entries.append(entry)
        for entry in entries:
            rtree_index.register(entry)
            linear_index.register(entry)
        query = RangePredicate("x", probe[0], probe[0] + probe[1])
        rtree_hits = {e.entry_id for e in rtree_index.find_subsuming("t", query, ["x"])}
        linear_hits = {e.entry_id for e in linear_index.find_subsuming("t", query, ["x"])}
        assert rtree_hits == linear_hits
