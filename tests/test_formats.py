"""Tests for the raw-format plugins, positional maps and schema inference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.types import FLOAT, INT, STRING, Field, ListType, RecordType
from repro.formats import (
    CSVPlugin,
    DataSource,
    DataSourceCatalog,
    JSONPlugin,
    infer_csv_schema,
    infer_json_schema,
    write_csv,
    write_json_lines,
)

FLAT = RecordType([Field("id", INT), Field("value", FLOAT), Field("name", STRING)])
NESTED = RecordType(
    [Field("key", INT), Field("items", ListType(RecordType([Field("q", INT), Field("p", FLOAT)])))]
)


def _flat_rows(n=50):
    return [{"id": i, "value": i * 1.5, "name": f"name{i}"} for i in range(n)]


def _nested_records(n=30):
    return [
        {"key": i, "items": [{"q": j, "p": j * 0.25} for j in range(i % 4)]} for i in range(n)
    ]


class TestCSVPlugin:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "flat.csv"
        assert write_csv(path, FLAT, _flat_rows()) == 50
        plugin = CSVPlugin(path, FLAT)
        rows = list(plugin.scan())
        assert rows[:2] == [{"id": 0, "value": 0.0, "name": "name0"}, {"id": 1, "value": 1.5, "name": "name1"}]
        assert len(rows) == 50

    def test_partial_field_parse(self, tmp_path):
        path = tmp_path / "flat.csv"
        write_csv(path, FLAT, _flat_rows())
        plugin = CSVPlugin(path, FLAT)
        rows = list(plugin.scan(fields=["value"]))
        assert rows[3] == {"value": 4.5}

    def test_unknown_field_rejected(self, tmp_path):
        path = tmp_path / "flat.csv"
        write_csv(path, FLAT, _flat_rows())
        with pytest.raises(KeyError):
            list(CSVPlugin(path, FLAT).scan(fields=["nope"]))

    def test_positional_map_and_read_records(self, tmp_path):
        path = tmp_path / "flat.csv"
        write_csv(path, FLAT, _flat_rows())
        plugin = CSVPlugin(path, FLAT)
        assert plugin.record_count() == 50
        assert plugin.positional_map.complete
        picked = list(plugin.read_records([5, 10, 49]))
        assert [row["id"] for row in picked] == [5, 10, 49]

    def test_scan_with_lines_and_parse_full(self, tmp_path):
        path = tmp_path / "flat.csv"
        write_csv(path, FLAT, _flat_rows())
        plugin = CSVPlugin(path, FLAT)
        line, row = next(iter(plugin.scan_with_lines(fields=["id"])))
        assert row == {"id": 0}
        assert plugin.parse_full(line) == {"id": 0, "value": 0.0, "name": "name0"}

    def test_missing_values_parse_to_none(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("1||x\n2|3.5|\n")
        plugin = CSVPlugin(path, FLAT)
        rows = list(plugin.scan())
        assert rows[0]["value"] is None
        assert rows[1]["name"] is None

    def test_nested_schema_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CSVPlugin(tmp_path / "x.csv", NESTED)


class TestJSONPlugin:
    def test_flattened_scan(self, tmp_path):
        path = tmp_path / "nested.json"
        write_json_lines(path, _nested_records())
        plugin = JSONPlugin(path, NESTED)
        rows = list(plugin.scan())
        # each record contributes max(1, len(items)) rows
        assert len(rows) == sum(max(1, i % 4) for i in range(30))
        assert rows[0] == {"key": 0, "items.q": None, "items.p": None}

    def test_scan_records_preserves_nesting(self, tmp_path):
        path = tmp_path / "nested.json"
        write_json_lines(path, _nested_records())
        plugin = JSONPlugin(path, NESTED)
        records = list(plugin.scan_records())
        assert records[3]["items"] == [{"q": 0, "p": 0.0}, {"q": 1, "p": 0.25}, {"q": 2, "p": 0.5}]

    def test_read_record_rows_grouping(self, tmp_path):
        path = tmp_path / "nested.json"
        write_json_lines(path, _nested_records())
        plugin = JSONPlugin(path, NESTED)
        plugin.record_count()
        groups = list(plugin.read_record_rows([2, 3]))
        assert len(groups) == 2
        assert len(groups[1]) == 3  # record 3 has 3 items

    def test_field_restriction(self, tmp_path):
        path = tmp_path / "nested.json"
        write_json_lines(path, _nested_records())
        rows = list(JSONPlugin(path, NESTED).scan(fields=["key"]))
        assert all(set(row) == {"key"} for row in rows)


class TestSchemaInference:
    def test_csv_inference(self, tmp_path):
        path = tmp_path / "flat.csv"
        write_csv(path, FLAT, _flat_rows())
        inferred = infer_csv_schema(path, column_names=["id", "value", "name"])
        assert inferred.field("id").dtype == INT
        assert inferred.field("value").dtype == FLOAT
        assert inferred.field("name").dtype == STRING

    def test_json_inference_merges_optional_fields(self, tmp_path):
        path = tmp_path / "opt.json"
        write_json_lines(path, [{"a": 1, "b": [1, 2]}, {"a": 2, "c": {"x": 0.5}}])
        inferred = infer_json_schema(path)
        assert inferred.field("a").dtype == INT
        assert isinstance(inferred.field("b").dtype, ListType)
        assert inferred.path_type("c.x") == FLOAT

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            infer_csv_schema(empty)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=20))
    def test_json_round_trip_property(self, tmp_path_factory, values):
        path = tmp_path_factory.mktemp("h") / "vals.json"
        records = [{"v": v, "tag": [v, v + 1]} for v in values]
        write_json_lines(path, records)
        schema = infer_json_schema(path)
        plugin = JSONPlugin(path, schema)
        assert list(plugin.scan_records()) == records


class TestDataSourceCatalog:
    def test_register_and_lookup(self, tmp_path):
        write_csv(tmp_path / "flat.csv", FLAT, _flat_rows(10))
        catalog = DataSourceCatalog()
        source = catalog.register_csv("flat", tmp_path / "flat.csv", FLAT)
        assert catalog.get("flat") is source
        assert "flat" in catalog and len(catalog) == 1
        assert not source.is_nested()
        with pytest.raises(ValueError):
            catalog.register_csv("flat", tmp_path / "flat.csv", FLAT)
        with pytest.raises(KeyError):
            catalog.get("missing")

    def test_bad_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DataSource("x", tmp_path / "x.bin", "parquet", FLAT)
