"""Unit and property tests for the expression language and subsumption rules."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.engine.expressions import (
    AggregateSpec,
    And,
    Arithmetic,
    Comparison,
    FieldRef,
    Interval,
    Literal,
    Not,
    Or,
    RangePredicate,
    conjuncts,
    extract_ranges,
    predicate_subsumes,
    referenced_fields,
)


class TestEvaluation:
    def test_field_ref_flat_and_nested(self):
        assert FieldRef("a").evaluate({"a": 3}) == 3
        assert FieldRef("a.b").evaluate({"a": {"b": 5}}) == 5
        with pytest.raises(KeyError):
            FieldRef("missing").evaluate({"a": 1})

    def test_comparison_and_null_semantics(self):
        cmp = Comparison("<", FieldRef("x"), Literal(10))
        assert cmp.evaluate({"x": 5})
        assert not cmp.evaluate({"x": 15})
        assert not cmp.evaluate({"x": None})

    def test_boolean_connectives(self):
        expr = And([Comparison(">", FieldRef("x"), Literal(0)), Comparison("<", FieldRef("x"), Literal(10))])
        assert expr.evaluate({"x": 5})
        assert not expr.evaluate({"x": 20})
        assert Or([Comparison("==", FieldRef("x"), Literal(1)), Literal(False)]).evaluate({"x": 1})
        assert Not(Comparison("==", FieldRef("x"), Literal(1))).evaluate({"x": 2})

    def test_arithmetic(self):
        expr = Arithmetic("*", FieldRef("x"), Literal(3))
        assert expr.evaluate({"x": 4}) == 12
        assert expr.evaluate({"x": None}) is None

    def test_range_predicate(self):
        pred = RangePredicate("x", 5, 10)
        assert pred.evaluate({"x": 5}) and pred.evaluate({"x": 10})
        assert not pred.evaluate({"x": 4.9})
        assert not pred.evaluate({"x": None})

    def test_invalid_operators_rejected(self):
        with pytest.raises(ValueError):
            Comparison("<>", FieldRef("x"), Literal(1))
        with pytest.raises(ValueError):
            Arithmetic("%", FieldRef("x"), Literal(1))
        with pytest.raises(ValueError):
            AggregateSpec("median", FieldRef("x"))

    def test_referenced_fields(self):
        expr = And([RangePredicate("a", 0, 1), Comparison("<", FieldRef("b.c"), Literal(2))])
        assert expr.referenced_fields() == {"a", "b.c"}
        assert referenced_fields([AggregateSpec("sum", FieldRef("z")), expr]) == {"a", "b.c", "z"}


class TestSignatures:
    def test_structural_equality(self):
        a = RangePredicate("x", 1, 2)
        b = RangePredicate("x", 1, 2)
        c = RangePredicate("x", 1, 3)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_and_signature_is_order_insensitive(self):
        p1 = And([RangePredicate("a", 0, 1), RangePredicate("b", 2, 3)])
        p2 = And([RangePredicate("b", 2, 3), RangePredicate("a", 0, 1)])
        assert p1.signature() == p2.signature()


class TestIntervals:
    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 1)

    def test_covers_boundaries(self):
        assert Interval(0, 10).covers(Interval(0, 10))
        assert Interval(0, 10).covers(Interval(2, 8))
        assert not Interval(0, 10).covers(Interval(0, 11))
        assert not Interval(0, 10, low_inclusive=False).covers(Interval(0, 5))

    @given(
        st.floats(-1e6, 1e6), st.floats(0, 1e5), st.floats(-1e6, 1e6), st.floats(0, 1e5)
    )
    def test_covers_is_consistent_with_membership(self, low_a, width_a, low_b, width_b):
        outer = Interval(low_a, low_a + width_a)
        inner = Interval(low_b, low_b + width_b)
        if outer.covers(inner):
            for point in (inner.low, inner.high, (inner.low + inner.high) / 2):
                assert outer.contains_value(point)


class TestRangeExtractionAndSubsumption:
    def test_extract_from_conjunction(self):
        expr = And(
            [
                RangePredicate("a", 0, 10),
                Comparison(">=", FieldRef("b"), Literal(5)),
                Comparison("<", Literal(20), FieldRef("c")),
            ]
        )
        ranges = extract_ranges(expr)
        assert ranges["a"].low == 0 and ranges["a"].high == 10
        assert ranges["b"].low == 5 and math.isinf(ranges["b"].high)
        assert ranges["c"].low == 20 and not ranges["c"].low_inclusive

    def test_same_field_conjuncts_intersect(self):
        expr = And([RangePredicate("a", 0, 10), RangePredicate("a", 5, 20)])
        interval = extract_ranges(expr)["a"]
        assert (interval.low, interval.high) == (5, 10)

    def test_conjuncts_decomposition(self):
        expr = And([RangePredicate("a", 0, 1), And([RangePredicate("b", 0, 1), RangePredicate("c", 0, 1)])])
        assert len(conjuncts(expr)) == 3
        assert conjuncts(None) == []

    def test_subsumption_basic(self):
        wide = RangePredicate("a", 0, 100)
        narrow = RangePredicate("a", 10, 20)
        assert predicate_subsumes(wide, narrow)
        assert not predicate_subsumes(narrow, wide)
        assert wide.subsumes(narrow)

    def test_full_scan_subsumes_everything(self):
        assert predicate_subsumes(None, RangePredicate("a", 0, 1))
        assert not predicate_subsumes(RangePredicate("a", 0, 1), None)

    def test_different_fields_do_not_subsume(self):
        assert not predicate_subsumes(RangePredicate("a", 0, 100), RangePredicate("b", 10, 20))

    def test_conjunction_subsumption(self):
        cached = RangePredicate("a", 0, 100)
        new = And([RangePredicate("a", 10, 20), RangePredicate("b", 0, 5)])
        assert predicate_subsumes(cached, new)
        # The cached predicate constrains a field the new one does not: unsafe.
        cached2 = And([RangePredicate("a", 0, 100), RangePredicate("c", 0, 1)])
        assert not predicate_subsumes(cached2, new)

    def test_non_range_conjunct_blocks_subsumption(self):
        cached = And([RangePredicate("a", 0, 100), Or([RangePredicate("b", 0, 1)])])
        assert not predicate_subsumes(cached, RangePredicate("a", 10, 20))

    @given(
        st.floats(-1e5, 1e5),
        st.floats(0.1, 1e4),
        st.floats(-1e5, 1e5),
        st.floats(0.1, 1e4),
    )
    def test_subsumption_soundness(self, low_a, width_a, low_b, width_b):
        """If cached subsumes new, any value satisfying new satisfies cached."""
        cached = RangePredicate("x", low_a, low_a + width_a)
        new = RangePredicate("x", low_b, low_b + width_b)
        if predicate_subsumes(cached, new):
            for value in (new.low, new.high, (new.low + new.high) / 2):
                assert cached.evaluate({"x": value})
