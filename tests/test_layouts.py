"""Tests for the cache layouts: striping, assembly, scans, conversion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.compiler import compile_predicate
from repro.engine.expressions import RangePredicate
from repro.engine.types import FLOAT, INT, STRING, Field, ListType, RecordType, flatten_record
from repro.layouts import (
    ColumnarLayout,
    ParquetLayout,
    RowLayout,
    build_layout,
    convert_layout,
    stripe_records,
)
from repro.layouts.assembly import assemble_records, assemble_rows, repetition_group
from repro.layouts.striping import column_levels, prune_schema

SCHEMA = RecordType(
    [
        Field("key", INT),
        Field("total", FLOAT),
        Field("info", RecordType([Field("city", STRING)])),
        Field("items", ListType(RecordType([Field("q", INT), Field("p", FLOAT)]))),
    ]
)

RECORDS = [
    {"key": 1, "total": 10.0, "info": {"city": "a"}, "items": [{"q": 1, "p": 0.5}, {"q": 2, "p": 1.5}]},
    {"key": 2, "total": 20.0, "info": {"city": "b"}, "items": []},
    {"key": 3, "total": 30.0, "info": {"city": "c"}, "items": [{"q": 7, "p": 7.5}]},
]

FIELDS = SCHEMA.leaf_paths()


def expected_rows(records=RECORDS, fields=FIELDS):
    rows = []
    for record in records:
        for row in flatten_record(record, SCHEMA):
            rows.append({f: row.get(f) for f in fields})
    return rows


class TestStriping:
    def test_column_levels(self):
        assert column_levels(SCHEMA, "key") == (0, 1)
        assert column_levels(SCHEMA, "info.city") == (0, 2)
        assert column_levels(SCHEMA, "items.q") == (1, 3)

    def test_prune_schema(self):
        pruned = prune_schema(SCHEMA, ["key", "items.q"])
        assert pruned.leaf_paths() == ["key", "items.q"]

    def test_non_nested_columns_have_one_entry_per_record(self):
        columns = stripe_records(RECORDS, SCHEMA, FIELDS)
        assert columns["key"].entry_count == len(RECORDS)
        assert columns["total"].repetition_levels == [0, 0, 0]

    def test_nested_column_repetition_levels(self):
        columns = stripe_records(RECORDS, SCHEMA, FIELDS)
        q = columns["items.q"]
        # record 1: two items (rep 0 then 1); record 2: placeholder; record 3: one item
        assert q.repetition_levels == [0, 1, 0, 0]
        assert q.values == [1, 2, None, 7]
        assert q.definition_levels[2] < q.max_definition

    def test_record_ranges_cover_all_entries(self):
        columns = stripe_records(RECORDS, SCHEMA, FIELDS)
        for column in columns.values():
            assert column.record_ranges[0][0] == 0
            assert column.record_ranges[-1][1] == column.entry_count


class TestAssembly:
    def test_repetition_group(self):
        assert repetition_group(SCHEMA, "items.q") == "items"
        assert repetition_group(SCHEMA, "key") is None

    def test_assemble_rows_matches_flattening(self):
        columns = stripe_records(RECORDS, SCHEMA, FIELDS)
        assert list(assemble_rows(columns, SCHEMA, FIELDS)) == expected_rows()

    def test_assemble_records_round_trip(self):
        columns = stripe_records(RECORDS, SCHEMA, FIELDS)
        assert list(assemble_records(columns, SCHEMA, FIELDS)) == RECORDS

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.fixed_dictionaries(
                {
                    "key": st.integers(-50, 50),
                    "total": st.floats(0, 100),
                    "info": st.fixed_dictionaries({"city": st.text(max_size=3)}),
                    "items": st.lists(
                        st.fixed_dictionaries(
                            {"q": st.integers(0, 9), "p": st.floats(0, 10)}
                        ),
                        max_size=4,
                    ),
                }
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_stripe_assemble_round_trip_property(self, records):
        columns = stripe_records(records, SCHEMA, FIELDS)
        assembled = list(assemble_rows(columns, SCHEMA, FIELDS))
        expected = []
        for record in records:
            for row in flatten_record(record, SCHEMA):
                expected.append({f: row.get(f) for f in FIELDS})
        assert assembled == expected


class TestLayouts:
    @pytest.mark.parametrize("name", ["row", "columnar", "parquet"])
    def test_scan_equivalence_across_layouts(self, name):
        layout = build_layout(name, SCHEMA, FIELDS, records=RECORDS)
        assert sorted(layout.scan(), key=str) == sorted(expected_rows(), key=str)
        assert layout.flattened_row_count == len(expected_rows())
        assert layout.record_count == len(RECORDS)
        assert layout.nbytes > 0
        assert layout.supports_fields(["key", "items.q"])
        assert not layout.supports_fields(["unknown"])

    def test_parquet_flat_path_is_per_record(self):
        layout = build_layout("parquet", SCHEMA, FIELDS, records=RECORDS)
        rows = list(layout.scan(fields=["key", "total"]))
        assert len(rows) == len(RECORDS)

    def test_columnar_dedupe_records(self):
        layout = build_layout("columnar", SCHEMA, FIELDS, records=RECORDS)
        rows = list(layout.scan(fields=["key"], dedupe_records=True))
        assert [row["key"] for row in rows] == [1, 2, 3]

    def test_predicate_pushdown_in_scan(self):
        layout = build_layout("columnar", SCHEMA, FIELDS, records=RECORDS)
        predicate = compile_predicate(RangePredicate("items.q", 2, 10))
        rows = list(layout.scan(fields=["items.q"], predicate=predicate))
        assert sorted(row["items.q"] for row in rows) == [2, 7]

    def test_vectorized_range_filter_columnar(self):
        layout = build_layout("columnar", SCHEMA, FIELDS, records=RECORDS)
        assert layout.supports_range_filter(["total", "items.q"])
        rows = list(layout.scan_range_filtered({"total": (15.0, 35.0)}, fields=["key"]))
        assert sorted(row["key"] for row in rows) == [2, 3]
        assert not layout.supports_range_filter(["info.city"])

    def test_vectorized_range_filter_parquet_flat_columns(self):
        layout = build_layout("parquet", SCHEMA, FIELDS, records=RECORDS)
        assert layout.supports_range_filter(["total"])
        rows = list(layout.scan_range_filtered({"total": (5.0, 25.0)}, fields=["key", "total"]))
        assert sorted(row["key"] for row in rows) == [1, 2]

    def test_vectorized_range_filter_parquet_nested_columns(self):
        # Nested numeric columns of one aligned repetition group now take the
        # entry-granular striped range path (no assembly); string columns and
        # cross-group requests still refuse.
        layout = build_layout("parquet", SCHEMA, FIELDS, records=RECORDS)
        assert layout.supports_range_filter(["items.q"])
        assert layout.supports_range_filter(["key", "items.q", "items.p"])
        assert not layout.supports_range_filter(["info.city", "items.q"])
        rows = list(
            layout.scan_range_filtered(
                {"items.q": (2.0, 9.0)}, fields=["key", "items.q", "items.p"]
            )
        )
        expected = [
            {f: row.get(f) for f in ("key", "items.q", "items.p")}
            for row in expected_rows(fields=["key", "items.q", "items.p"])
            if row["items.q"] is not None and 2.0 <= row["items.q"] <= 9.0
        ]
        assert rows == expected
        batch = layout.range_filtered_batch(
            {"items.q": (2.0, 9.0)}, fields=["key", "items.q", "items.p"]
        )
        assert batch.to_rows() == expected

    def test_flat_relational_rows(self):
        schema = RecordType([Field("a", INT), Field("b", FLOAT)])
        rows = [{"a": i, "b": i * 0.5} for i in range(10)]
        for name in ("row", "columnar", "parquet"):
            layout = build_layout(name, schema, schema.field_names(), rows=rows)
            assert list(layout.scan()) == rows

    def test_build_layout_requires_data(self):
        with pytest.raises(ValueError):
            build_layout("columnar", SCHEMA, FIELDS)
        with pytest.raises(ValueError):
            build_layout("unknown", SCHEMA, FIELDS, records=RECORDS)


NULLABLE_SCHEMA = RecordType([Field("id", INT), Field("v", FLOAT), Field("w", FLOAT)])
NULLABLE_ROWS = [
    {"id": 1, "v": 1.5, "w": 10.0},
    {"id": 2, "v": None, "w": 20.0},
    {"id": 3, "v": 3.5, "w": None},
    {"id": 4, "v": None, "w": 40.0},
    {"id": 5, "v": 5.5, "w": 50.0},
]


class TestParquetBatchFastPath:
    """The vectorized parquet scan paths: no assembly for flat fields, NULL
    alignment in the float64 views, and mask-before-materialize filtering."""

    def _no_assembly(self, monkeypatch):
        """Make any call into the row/record assembly machinery fail loudly."""
        import repro.layouts.parquet as parquet_module

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("flat fast path must not assemble rows/records")

        monkeypatch.setattr(parquet_module, "assemble_records", boom)
        monkeypatch.setattr(parquet_module, "assemble_rows", boom)

    def test_flat_scan_batches_skip_assembly(self, monkeypatch):
        layout = build_layout("parquet", SCHEMA, FIELDS, records=RECORDS)
        self._no_assembly(monkeypatch)
        batches = list(layout.scan_batches(fields=["key", "total"], batch_size=2))
        assert [batch.row_count for batch in batches] == [2, 1]
        rows = [row for batch in batches for row in batch.iter_rows()]
        assert rows == list(layout.scan(fields=["key", "total"]))

    def test_flat_scan_batches_preseed_numeric_views(self, monkeypatch):
        layout = build_layout("parquet", SCHEMA, FIELDS, records=RECORDS)
        self._no_assembly(monkeypatch)
        (batch,) = layout.scan_batches(fields=["key", "total"], numeric_fields=["total"])
        # The view comes pre-seeded from the layout's cached array: identical
        # values, and present without touching the batch's lazy builder.
        assert batch._numeric["total"].tolist() == [10.0, 20.0, 30.0]

    def test_nested_scan_batches_match_scan(self):
        layout = build_layout("parquet", SCHEMA, FIELDS, records=RECORDS)
        wanted = ["key", "items.q", "items.p"]
        rows = [row for batch in layout.scan_batches(fields=wanted, batch_size=2) for row in batch.iter_rows()]
        assert rows == list(layout.scan(fields=wanted))

    def test_range_filtered_batch_matches_iterator(self):
        layout = build_layout("parquet", SCHEMA, FIELDS, records=RECORDS)
        ranges = {"total": (15.0, 35.0)}
        batch = layout.range_filtered_batch(ranges, fields=["key", "total"])
        assert batch.to_rows() == list(layout.scan_range_filtered(ranges, fields=["key", "total"]))

    def test_numeric_array_keeps_nulls_aligned(self):
        """Regression: NULLs become NaN at their own record position, never
        skipped, so masks over several columns stay row-aligned."""
        import numpy as np

        layout = build_layout(
            "parquet", NULLABLE_SCHEMA, NULLABLE_SCHEMA.field_names(), rows=NULLABLE_ROWS
        )
        array = layout.numeric_array("v")
        assert len(array) == len(NULLABLE_ROWS)
        assert np.isnan(array[[1, 3]]).all()
        assert array[[0, 2, 4]].tolist() == [1.5, 3.5, 5.5]
        # A conjunction across a nullable and a non-nullable column must pair
        # values belonging to the same record (misalignment would let id=2 or
        # id=4 leak in via a shifted v value).
        batch = layout.range_filtered_batch({"v": (0.0, 9.0), "w": (0.0, 45.0)}, fields=["id", "v", "w"])
        assert batch.to_rows() == [
            {"id": 1, "v": 1.5, "w": 10.0},
        ]
        rows = list(layout.scan_range_filtered({"v": (0.0, 9.0), "w": (0.0, 45.0)}, fields=["id"]))
        assert rows == [{"id": 1}]


class TestConversion:
    @pytest.mark.parametrize("source", ["row", "columnar", "parquet"])
    @pytest.mark.parametrize("target", ["row", "columnar", "parquet"])
    def test_conversion_preserves_rows(self, source, target):
        layout = build_layout(source, SCHEMA, FIELDS, records=RECORDS)
        converted, seconds = convert_layout(layout, target, SCHEMA)
        assert converted.layout_name == target
        assert seconds >= 0.0
        assert sorted(converted.scan(), key=str) == sorted(expected_rows(), key=str)

    def test_same_target_is_noop(self):
        layout = build_layout("columnar", SCHEMA, FIELDS, records=RECORDS)
        converted, seconds = convert_layout(layout, "columnar")
        assert converted is layout and seconds == 0.0

    def test_unknown_target_rejected(self):
        layout = build_layout("columnar", SCHEMA, FIELDS, records=RECORDS)
        with pytest.raises(ValueError):
            convert_layout(layout, "arrow")
