"""Regression tests for the size-aware eviction heuristic (Algorithm 1 phase 2).

The documented contract: ``choose_victims`` never frees fewer bytes than
requested (unless the cache simply does not hold enough evictable data), and
the phase-2 trim stops at the *smallest* candidate that alone covers the
remaining deficit.  These properties also hold for the cross-shard variant
``choose_global_victims`` used by the admission-balancing round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import given, strategies as st

from repro.core.cache_entry import CacheStats
from repro.core.eviction import (
    ReCacheGreedyDualPolicy,
    choose_global_victims,
    size_aware_victims,
    total_bytes,
)


@dataclass
class _StubEntry:
    """The minimal entry surface the eviction ranking touches."""

    nbytes: int
    stats: CacheStats = field(default_factory=CacheStats)
    gd_baseline: float = 0.0
    frozen_benefit: float | None = None


def _entry(nbytes: int, operator_time: float = 1.0, reuse_count: int = 0) -> _StubEntry:
    entry = _StubEntry(nbytes=nbytes)
    entry.stats.operator_time = operator_time
    entry.stats.caching_time = 0.1
    entry.stats.reuse_count = reuse_count
    return entry


# ---------------------------------------------------------------------------
# Phase-2 trim: documented stopping behaviour
# ---------------------------------------------------------------------------
def test_trim_stops_at_smallest_candidate_covering_the_deficit():
    candidates = [_entry(100), _entry(60), _entry(30), _entry(10)]
    victims = size_aware_victims(candidates, bytes_to_free=130)
    # Largest first (100), 30 bytes remain; the smallest candidate covering
    # the remainder is the 30-byte one — NOT the 60-byte one.
    assert [v.nbytes for v in victims] == [100, 30]


def test_trim_prefers_single_large_victim():
    candidates = [_entry(100), _entry(60), _entry(30), _entry(10)]
    victims = size_aware_victims(candidates, bytes_to_free=90)
    assert [v.nbytes for v in victims] == [100]


def test_trim_takes_smallest_topup_for_tiny_remainder():
    candidates = [_entry(100), _entry(60), _entry(10)]
    victims = size_aware_victims(candidates, bytes_to_free=101)
    assert [v.nbytes for v in victims] == [100, 10]


@given(
    st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=30),
    st.data(),
)
def test_trim_never_frees_fewer_bytes_than_requested(sizes, data):
    candidates = [_entry(size) for size in sizes]
    need = data.draw(st.integers(min_value=1, max_value=sum(sizes)))
    victims = size_aware_victims(candidates, need)
    assert total_bytes(victims) >= need
    assert len(victims) == len({id(v) for v in victims}), "no victim twice"
    assert {id(v) for v in victims} <= {id(c) for c in candidates}


# ---------------------------------------------------------------------------
# Full Algorithm 1 through the policy
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=2, max_value=5000),  # nbytes
            st.floats(min_value=0.0, max_value=10.0),  # operator_time
            st.integers(min_value=0, max_value=5),  # reuse_count
        ),
        min_size=1,
        max_size=25,
    ),
    st.data(),
)
def test_choose_victims_covers_the_deficit_when_possible(specs, data):
    entries = [_entry(n, t, r) for n, t, r in specs]
    capacity = sum(e.nbytes for e in entries)
    need = data.draw(st.integers(min_value=1, max_value=capacity))
    policy = ReCacheGreedyDualPolicy()
    for sequence, entry in enumerate(entries):
        policy.on_admit(entry, sequence)
    victims = policy.choose_victims(entries, need)
    assert total_bytes(victims) >= need


def test_choose_victims_returns_everything_when_deficit_exceeds_cache():
    entries = [_entry(10), _entry(20)]
    policy = ReCacheGreedyDualPolicy()
    victims = policy.choose_victims(entries, bytes_to_free=1000)
    assert {id(v) for v in victims} == {id(e) for e in entries}


def test_choose_victims_without_size_awareness_still_covers_deficit():
    entries = [_entry(100), _entry(60), _entry(30)]
    policy = ReCacheGreedyDualPolicy(size_aware=False)
    victims = policy.choose_victims(entries, bytes_to_free=120)
    assert total_bytes(victims) >= 120


# ---------------------------------------------------------------------------
# Cross-shard variant
# ---------------------------------------------------------------------------
def test_global_victims_rank_by_benefit_and_cover_deficit():
    cheap = [_entry(100, operator_time=0.001) for _ in range(3)]
    precious = [_entry(100, operator_time=50.0, reuse_count=4) for _ in range(3)]
    victims = choose_global_victims(cheap + precious, bytes_to_free=250)
    assert total_bytes(victims) >= 250
    assert all(v in cheap for v in victims), "low-benefit entries evict first"


@given(
    st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=30),
    st.data(),
)
def test_global_victims_never_free_fewer_bytes_than_requested(sizes, data):
    entries = [_entry(size) for size in sizes]
    need = data.draw(st.integers(min_value=1, max_value=sum(sizes)))
    assert total_bytes(choose_global_victims(entries, need)) >= need


def test_global_victims_empty_inputs():
    assert choose_global_victims([], 100) == []
    assert choose_global_victims([_entry(10)], 0) == []
