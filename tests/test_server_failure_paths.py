"""Regression tests: every failure path resolves futures and frees capacity.

Three bugs fixed in the serving layer, each locked down here:

* ``execute_group`` failing *outside* the per-query callbacks left the
  group's futures unresolved forever and leaked their pending slots;
* ``submit_batch`` failing after the pending-count bump (e.g. the pool
  rejecting work) leaked backpressure capacity and stranded futures;
* a raising ``response_hook`` could leave later duplicates of a coalesced
  execution unresolved.

The contract: a client blocked on a returned future ALWAYS gets a result or
an exception, and ``queue_depth`` always returns to zero, so backpressure
capacity never leaks.
"""

from __future__ import annotations

import time

import pytest

from repro import EngineServer, Query, ReCacheConfig
from repro.engine.expressions import AggregateSpec, FieldRef, RangePredicate

from tests.conftest import build_engine


def _query(index: int, low: float, width: float = 5.0) -> Query:
    return Query.select_aggregate(
        "flat",
        RangePredicate("value", low, low + width),
        [AggregateSpec("sum", FieldRef("score"))],
        label=f"fail-{index}",
    )


def _wait_drained(server: EngineServer, timeout: float = 5.0) -> None:
    deadline = time.perf_counter() + timeout
    while server.queue_depth != 0:
        assert time.perf_counter() < deadline, (
            f"queue never drained: depth={server.queue_depth}"
        )
        time.sleep(0.005)


@pytest.fixture()
def server(dataset_dir):
    engine = build_engine(dataset_dir, ReCacheConfig(shard_count=2, max_workers=2))
    with EngineServer(engine) as srv:
        yield srv


class _Boom(RuntimeError):
    pass


def test_engine_failure_outside_callbacks_resolves_every_future(server):
    """A broken session must fail the whole group's futures, not hang them."""
    def broken_execute_group(queries, **kwargs):
        raise _Boom("session broke before any callback ran")

    server.engine.execute_group = broken_execute_group
    try:
        futures = server.submit_batch([_query(i, float(10 * i)) for i in range(4)])
        for future in futures:
            with pytest.raises(_Boom):
                future.result(timeout=5.0)
        _wait_drained(server)
    finally:
        del server.engine.execute_group
    # Capacity is intact: the same server still serves normally.
    report = server.execute(_query(99, 20.0))
    assert report.rows_returned == 1
    _wait_drained(server)


def test_pool_rejection_rolls_back_pending_and_strands_no_future(server):
    """submit_batch failing at enqueue must raise AND return every slot."""
    def rejecting_submit(*args, **kwargs):
        raise _Boom("pool rejected the task")

    server._pool.submit = rejecting_submit
    try:
        with pytest.raises(_Boom):
            server.submit_batch([_query(i, float(10 * i)) for i in range(3)])
        assert server.queue_depth == 0, "backpressure capacity leaked"
    finally:
        del server._pool.submit
    report = server.execute(_query(98, 30.0))
    assert report.rows_returned == 1
    _wait_drained(server)


def test_partial_enqueue_fails_only_the_stranded_groups(server):
    """Groups already in flight settle themselves; the rest fail cleanly."""
    real_submit = server._pool.submit
    calls = []

    def submit_once_then_fail(fn, *args, **kwargs):
        calls.append(fn)
        if len(calls) > 1:
            raise _Boom("pool full after the first group")
        return real_submit(fn, *args, **kwargs)

    server._pool.submit = submit_once_then_fail
    try:
        # Two disjoint intervals on the same source: two overlap groups.
        queries = [_query(0, 0.0), _query(1, 100.0)]
        with pytest.raises(_Boom):
            server.submit_batch(queries)
        assert len(calls) == 2
        _wait_drained(server)  # the in-flight group settles itself
    finally:
        del server._pool.submit
    report = server.execute(_query(97, 40.0))
    assert report.rows_returned == 1
    _wait_drained(server)


def test_raising_response_hook_still_resolves_futures(server):
    def broken_hook(report):
        raise _Boom("delivery failed")

    server.response_hook = broken_hook
    try:
        future = server.submit(_query(96, 50.0))
        with pytest.raises(_Boom):
            future.result(timeout=5.0)
        _wait_drained(server)
    finally:
        server.response_hook = None
    report = server.execute(_query(95, 60.0))
    assert report.rows_returned == 1
    _wait_drained(server)


def test_coalesced_duplicates_fail_exceptionally_with_the_primary(server):
    """Duplicates of a failing execution must not hang on their futures."""
    def broken_execute_group(queries, **kwargs):
        raise _Boom("no callbacks")

    server.engine.execute_group = broken_execute_group
    try:
        duplicate = _query(94, 70.0)
        futures = server.submit_batch([duplicate, duplicate, duplicate])
        assert len(futures) == 3
        for future in futures:
            with pytest.raises(_Boom):
                future.result(timeout=5.0)
        _wait_drained(server)
    finally:
        del server.engine.execute_group
