"""Deadlock stress: concurrent admit/evict/lookup under the lock watchdog.

Eight client threads hammer a small :class:`ShardedReCache` hard enough that
admissions constantly borrow from the :class:`SharedBudget`, overflow their
home shard, and trigger cross-shard eviction rounds — the paths where a
shard lock, the budget lock and the coordinator bookkeeping locks interact.
Every lock in the tree is labeled with its declared rank, so any dynamic
acquisition-order inversion (the deadlock shape the static pass cannot see
through indirection) is recorded and fails the test.
"""

from __future__ import annotations

import threading

from repro.analysis.lock_watchdog import LockWatchdog, label_locks
from repro.core.config import ReCacheConfig
from repro.core.sharded_cache import ShardedReCache
from repro.engine.expressions import RangePredicate
from repro.engine.types import FLOAT, INT, Field, RecordType
from repro.layouts import build_layout

SCHEMA = RecordType([Field("id", INT), Field("value", FLOAT)])


def _layout(rows: int):
    data = [{"id": i, "value": float(i)} for i in range(rows)]
    return build_layout("columnar", SCHEMA, ["id", "value"], rows=data)


def test_sharded_cache_stress_has_no_lock_order_inversions():
    watchdog = LockWatchdog().install()
    try:
        # Constructed under the watchdog so every internal lock is wrapped.
        small = _layout(25)
        limit = small.nbytes * 5
        cache = ShardedReCache(ReCacheConfig(cache_size_limit=limit), shard_count=4)

        labeled = label_locks(cache) + label_locks(cache.budget)
        for index, shard in enumerate(cache.shards):
            labeled += label_locks(shard, prefix=f"shard{index}")
        assert labeled >= 3 + 1 + 4, "expected the full lock tree to be labeled"

        errors: list[Exception] = []

        def client(worker: int) -> None:
            try:
                for step in range(30):
                    index = worker * 1000 + step
                    rows = 25 + (index % 3) * 10
                    predicate = RangePredicate("value", float(index), float(index) + 0.5)
                    cache.admit_eager(
                        "s", "csv", predicate, ["id", "value"], _layout(rows),
                        operator_time=0.1 + step * 0.01, caching_time=0.01,
                    )
                    cache.lookup("s", predicate, ["id", "value"])
                    cache.get_exact("s", predicate)
                    assert cache.total_bytes <= limit, "global budget violated"
            except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert cache.total_bytes <= limit
        assert cache.budget.reserved == 0, "no reservation may leak"
        # Enough churn to exercise the cross-shard paths, not just happy admits.
        assert cache.stats.extras.get("borrowed_admissions", 0) >= 1
        watchdog.assert_clean()
    finally:
        watchdog.uninstall()
