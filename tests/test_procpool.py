"""Process-pool execution: parity, lifecycle, crash semantics, timing rules.

The worker-process path must be *indistinguishable* from the thread path in
everything but throughput: identical results (it runs the same vectorized
batch pipeline against shared-memory views), identical cache accounting,
typed ``WorkerCrashed`` on real process death, and zero residue — no
``/dev/shm`` segments, no live children — after shutdown.
"""

from __future__ import annotations

import dataclasses
import glob
import os
import random
import time

import pytest

from repro import (
    AggregateSpec,
    EngineServer,
    FieldRef,
    Query,
    QueryEngine,
    RangePredicate,
    ReCacheConfig,
    TableRef,
)
from repro.core.errors import WorkerCrashed
from repro.engine.procpool import ScanTaskResult
from repro.faults import runtime as faults

from tests.conftest import build_engine

PARITY_SEED = 20260808


def _procs_config(**overrides) -> ReCacheConfig:
    # layout_selection is pinned off: the adaptive switcher is timing-driven
    # and can move a hot flat entry off ColumnarLayout mid-test, which makes
    # it non-exportable and starves the offload assertions.
    base = {
        "admission_sample_records": 50,
        "execution_mode": "processes",
        "layout_selection": False,
    }
    base.update(overrides)
    return ReCacheConfig(**base)


def _fuzz_queries(count: int, seed: int) -> list[Query]:
    """A seeded pool of offload-shaped queries (plus a few fallback shapes)."""
    rng = random.Random(seed)
    queries = []
    for index in range(count):
        field = rng.choice(["value", "score"])
        low = rng.uniform(0.0, 80.0)
        width = rng.uniform(5.0, 120.0)
        predicate = RangePredicate(field, low, low + width)
        shape = rng.randrange(4)
        if shape == 0:
            query = Query(tables=[TableRef("flat", predicate)], label=f"fuzz-{index}")
        elif shape == 1:
            query = Query.select_aggregate(
                "flat",
                predicate,
                [AggregateSpec("sum", FieldRef("value")), AggregateSpec("count", FieldRef("id"))],
                label=f"fuzz-{index}",
            )
        elif shape == 2:
            query = Query(
                tables=[TableRef("flat", predicate)],
                aggregates=[AggregateSpec("avg", FieldRef("score"))],
                group_by=["group"],
                label=f"fuzz-{index}",
            )
        else:
            # Nested source: never offloadable, must silently fall back.
            query = Query.select_aggregate(
                "orders",
                RangePredicate("o_totalprice", low * 10, (low + width) * 10),
                [AggregateSpec("count", FieldRef("o_orderkey"))],
                label=f"fuzz-{index}",
            )
        queries.append(query)
    return queries


def _warm(engine: QueryEngine, query: Query) -> None:
    """Admit and fully materialize the entry (first reuse finishes eager build)."""
    engine.execute(query)
    engine.execute(query)


def _assert_no_residue(engine: QueryEngine) -> None:
    pattern = f"/dev/shm/rcshm-{os.getpid()}-*"
    assert glob.glob(pattern) == [], f"leaked shm segments: {glob.glob(pattern)}"
    assert engine._procpool is None or engine._procpool.live_worker_pids() == []


# ---------------------------------------------------------------------------
# Parity fuzz: execution_mode=processes is bit-identical to threads
# ---------------------------------------------------------------------------
def test_process_mode_parity_fuzz(dataset_dir):
    threads = build_engine(dataset_dir, _procs_config(execution_mode="threads"))
    processes = build_engine(dataset_dir, _procs_config())
    try:
        queries = _fuzz_queries(24, PARITY_SEED)
        offloaded = 0
        for repetition in range(2):  # cold pass warms the caches, hot pass offloads
            for query in queries:
                expected = threads.execute(query)
                actual = processes.execute(query)
                assert actual.results == expected.results, (repetition, query.label)
                assert actual.rows_returned == expected.rows_returned
                offloaded += actual.offloaded
        assert offloaded >= 1, "hot flat cache hits never reached the process pool"
    finally:
        processes.close_workers()
    _assert_no_residue(processes)


def test_per_query_execution_mode_override(dataset_dir):
    engine = build_engine(dataset_dir, _procs_config(execution_mode="threads"))
    try:
        query = Query.select_aggregate(
            "flat",
            RangePredicate("value", 10.0, 150.0),
            [AggregateSpec("sum", FieldRef("score"))],
            label="override",
        )
        baseline = engine.execute(query)
        hot = engine.execute(query)
        assert hot.offloaded == 0  # engine default is threads
        forced = engine.execute(query, execution_mode="processes")
        assert forced.offloaded == 1
        assert forced.results == hot.results == baseline.results
        per_query = dataclasses.replace(query, execution_mode="processes")
        tagged = engine.execute(per_query)
        assert tagged.offloaded == 1
        assert tagged.results == hot.results
    finally:
        engine.close_workers()
    _assert_no_residue(engine)


def test_offloaded_scan_still_feeds_cache_accounting(dataset_dir):
    engine = build_engine(dataset_dir, _procs_config())
    try:
        query = Query.select_aggregate(
            "flat",
            RangePredicate("value", 5.0, 120.0),
            [AggregateSpec("sum", FieldRef("value"))],
            label="accounting",
        )
        engine.execute(query)  # miss: admits the entry in-process
        engine.execute(query)  # first reuse finishes eager materialization
        (entry,) = [e for e in engine.recache.entries() if e.source == "flat"]
        observed_before = len(entry.observations)
        hot = engine.execute(query)
        assert hot.offloaded == 1
        assert hot.exact_hits == 1
        assert hot.cache_scan_time > 0.0
        assert hot.lookup_time >= 0.0
        # The worker's measured scan fed the layout selector like any reuse.
        assert len(entry.observations) == observed_before + 1
        assert entry.stats.reuse_count >= 1
    finally:
        engine.close_workers()


# ---------------------------------------------------------------------------
# Crash semantics: real process death -> typed error -> respawn
# ---------------------------------------------------------------------------
def test_worker_crash_is_typed_and_pool_respawns(dataset_dir, assert_budget_conserved):
    engine = build_engine(dataset_dir, _procs_config())
    assert_budget_conserved(engine.recache)
    try:
        query = Query.select_aggregate(
            "flat",
            RangePredicate("value", 0.0, 90.0),
            [AggregateSpec("count", FieldRef("id"))],
            label="crash",
        )
        _warm(engine, query)
        baseline = engine.execute(query)
        assert baseline.offloaded == 1
        first_pids = engine._procpool.live_worker_pids()
        with faults.activate("server.worker:worker_crash:rate=1.0,limit=1", seed=3):
            with pytest.raises(WorkerCrashed):
                engine.execute(query)
        # The crashed worker is gone; the next query gets a fresh process
        # and the scarred cache still serves the identical result.
        after = engine.execute(query)
        assert after.results == baseline.results
        assert after.offloaded == 1
        respawned = engine._procpool.live_worker_pids()
        assert respawned and respawned != first_pids
    finally:
        engine.close_workers()
    _assert_no_residue(engine)


# ---------------------------------------------------------------------------
# Lifecycle: shutdown (either flavor) leaves no segments and no children
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("wait", [True, False])
def test_server_shutdown_reaps_workers_and_unlinks_segments(dataset_dir, wait):
    engine = build_engine(dataset_dir, _procs_config(max_workers=2))
    query = Query.select_aggregate(
        "flat",
        RangePredicate("value", 0.0, 100.0),
        [AggregateSpec("sum", FieldRef("score"))],
        label="lifecycle",
    )
    _warm(engine, query)
    server = EngineServer(engine)
    futures = [server.submit(query) for _ in range(4)]
    for future in futures:
        future.result(timeout=60)
    assert engine._shm_registry is not None
    assert engine._shm_registry.live_segment_names()
    pids = engine._procpool.live_worker_pids()
    assert pids
    server.shutdown(wait=wait)
    deadline = time.time() + 10.0
    while time.time() < deadline and any(_alive(pid) for pid in pids):
        time.sleep(0.05)
    assert not any(_alive(pid) for pid in pids), "zombie worker processes"
    _assert_no_residue(engine)
    # Idempotent: a second teardown must not raise.
    engine.close_workers(wait=wait)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    # Reaped-but-zombie children still answer signal 0; check the state.
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split()[2] != "Z"
    except OSError:
        return False


def test_eviction_retires_the_entrys_segment(dataset_dir):
    engine = build_engine(dataset_dir, _procs_config())
    try:
        query = Query.select_aggregate(
            "flat",
            RangePredicate("value", 0.0, 80.0),
            [AggregateSpec("sum", FieldRef("value"))],
            label="evict",
        )
        _warm(engine, query)
        hot = engine.execute(query)
        assert hot.offloaded == 1
        registry = engine._shm_registry
        assert registry.export_count == 1
        (entry,) = [e for e in engine.recache.entries() if e.source == "flat"]
        engine.recache.evict_entry(entry)
        assert registry.export_count == 0
        assert registry.live_segment_names() == []
        # The source is re-admitted and re-exported on the next hot pass.
        engine.execute(query)
        again = engine.execute(query)
        assert again.results == hot.results
    finally:
        engine.close_workers()
    _assert_no_residue(engine)


# ---------------------------------------------------------------------------
# Timing regression: worker clocks never flow into report wait fields
# ---------------------------------------------------------------------------
def test_worker_results_carry_durations_only():
    """Cross-process ``perf_counter()`` values are not comparable.

    The wire type workers answer with must stay duration-only: any field
    smelling like an absolute instant (``*_at``, enqueue/start/resolve
    stamps) would tempt coordinator code into subtracting worker clocks
    from coordinator clocks, which is meaningless across processes.
    """
    forbidden = ("_at", "enqueued", "started", "resolved", "timestamp", "clock")
    for spec in dataclasses.fields(ScanTaskResult):
        assert not any(token in spec.name for token in forbidden), (
            f"ScanTaskResult.{spec.name} looks like a cross-process timestamp"
        )
    assert {f.name for f in dataclasses.fields(ScanTaskResult)} == {
        "rows",
        "scanned_rows",
        "scan_seconds",
        "operator_seconds",
    }


def test_offload_wait_fields_are_coordinator_owned(dataset_dir):
    """Offloaded reports keep queue fields exactly as the coordinator set them.

    Outside a server no queue exists, so an offloaded execution must report
    zero wait — a nonzero value here could only come from worker-side
    timing leaking into the report.  Through a server, every wait interval
    must fit inside the coordinator's own submit->resolve window.
    """
    engine = build_engine(dataset_dir, _procs_config(max_workers=2))
    try:
        query = Query.select_aggregate(
            "flat",
            RangePredicate("value", 10.0, 90.0),
            [AggregateSpec("count", FieldRef("id"))],
            label="timing",
        )
        _warm(engine, query)
        direct = engine.execute(query)
        assert direct.offloaded == 1
        assert direct.queue_wait_time == 0.0
        assert direct.coalesced_wait_time == 0.0

        submitted = time.perf_counter()
        with EngineServer(engine) as server:
            reports = server.serve_all([query] * 6)
        window = time.perf_counter() - submitted
        assert any(r.offloaded for r in reports)
        for report in reports:
            assert 0.0 <= report.queue_wait_time <= window
            assert 0.0 <= report.coalesced_wait_time <= window
    finally:
        engine.close_workers()
