"""Tests for the layout cost model (equations 1-5) and the layout selector."""

import pytest

from repro.core.cache_entry import CacheEntry, CacheKey, LayoutObservation
from repro.core.cost_model import (
    LayoutCostModel,
    closest_compute_cost,
    percentage_error,
)
from repro.core.layout_selector import (
    ColumnAccessProfile,
    LayoutSelector,
    RowColumnSelector,
)
from repro.layouts import build_layout
from repro.workloads.nested import ORDER_LINEITEMS_SCHEMA, synthetic_order_lineitems


def obs(layout, data, compute, rows, cols, nested=False, index=0):
    return LayoutObservation(
        query_index=index,
        layout_name=layout,
        data_cost=data,
        compute_cost=compute,
        rows_accessed=rows,
        columns_accessed=cols,
        accessed_nested=nested,
    )


class TestPaperWorkedExample:
    """The numeric example of Section 4.2: 5 queries, sum(D)=1000, sum(C)=2000."""

    def _observations(self, rows):
        return [obs("parquet", 200.0, 400.0, rows, 2, index=i) for i in range(5)]

    def test_non_nested_access_keeps_parquet(self):
        model = LayoutCostModel()
        estimate = model.evaluate_parquet_to_relational(self._observations(rows=100), flattened_rows=400)
        assert estimate.current_cost == pytest.approx(3000.0)
        assert estimate.candidate_cost == pytest.approx(4000.0)
        assert estimate.transformation_cost == pytest.approx(2400.0)
        assert not estimate.should_switch

    def test_nested_access_switches_to_relational(self):
        model = LayoutCostModel()
        estimate = model.evaluate_parquet_to_relational(self._observations(rows=400), flattened_rows=400)
        assert estimate.current_cost == pytest.approx(3000.0)
        assert estimate.candidate_cost == pytest.approx(1000.0)
        assert estimate.transformation_cost == pytest.approx(600.0)
        assert estimate.should_switch


class TestRelationalToParquet:
    def test_switch_when_queries_avoid_nested_columns(self):
        model = LayoutCostModel()
        observations = [obs("columnar", 100.0, 0.0, 400, 2, index=i) for i in range(5)]
        estimate = model.evaluate_relational_to_parquet(
            observations,
            flattened_rows=400,
            parquet_rows_for=lambda o: 100,
            compute_cost_estimator=lambda rows, cols: 50.0,
        )
        # relational: 500; parquet estimate: 5 * (100 + 50) * 0.25 = 187.5; T = 100
        assert estimate.current_cost == pytest.approx(500.0)
        assert estimate.candidate_cost == pytest.approx(187.5)
        assert estimate.should_switch

    def test_minimum_observation_guard(self):
        model = LayoutCostModel(minimum_observations=3)
        observations = [obs("columnar", 100.0, 0.0, 400, 2)]
        estimate = model.evaluate_relational_to_parquet(
            observations, 400, lambda o: 100, lambda r, c: 0.0
        )
        assert not estimate.should_switch


class TestHelpers:
    def test_percentage_error(self):
        assert percentage_error(110, 100) == pytest.approx(10.0)
        assert percentage_error(0, 0) == 0.0
        assert percentage_error(5, 0) == 100.0

    def test_closest_compute_cost_scales_to_footprint(self):
        history = [obs("parquet", 10.0, 40.0, 1000, 4), obs("parquet", 10.0, 8.0, 100, 2)]
        # closest by rows to 100 is the second observation; same footprint -> unscaled
        assert closest_compute_cost(history, 100, 2) == pytest.approx(8.0)
        # half the rows -> half the compute
        assert closest_compute_cost(history, 50, 2) == pytest.approx(4.0)
        assert closest_compute_cost([], 10, 1) is None

    def test_prediction_helpers(self):
        model = LayoutCostModel()
        parquet_obs = obs("parquet", 10.0, 20.0, 100, 2)
        assert model.predict_relational_scan_cost(parquet_obs, 400) == pytest.approx(40.0)
        columnar_obs = obs("columnar", 40.0, 0.0, 400, 2)
        assert model.predict_parquet_scan_cost(columnar_obs, 100, 5.0) == pytest.approx(15.0)


class TestLayoutSelectorOnEntries:
    def _entry(self, layout_name):
        records = synthetic_order_lineitems(40, seed=3)
        fields = ORDER_LINEITEMS_SCHEMA.leaf_paths()
        layout = build_layout(layout_name, ORDER_LINEITEMS_SCHEMA, fields, records=records)
        entry = CacheEntry(
            key=CacheKey.for_select("orders", None),
            source="orders",
            source_format="json",
            predicate=None,
            fields=fields,
            layout=layout,
        )
        entry.record_creation(0, 1.0, 0.5)
        return entry

    def test_parquet_entry_switches_under_nested_access(self):
        entry = self._entry("parquet")
        selector = LayoutSelector()
        rows = entry.layout.flattened_row_count
        for i in range(4):
            selector.observe(entry, obs("parquet", 1.0, 2.0, rows, 3, nested=True, index=i))
        decision = selector.decide(entry)
        assert decision.should_switch and decision.target_layout == "columnar"

    def test_columnar_entry_switches_back_for_non_nested_workload(self):
        entry = self._entry("columnar")
        # give it some Parquet history so ComputeCost has something to scale
        entry.parquet_history.append(obs("parquet", 1.0, 2.0, entry.layout.flattened_row_count, 3, nested=True))
        selector = LayoutSelector()
        rows = entry.layout.flattened_row_count
        for i in range(6):
            selector.observe(entry, obs("columnar", 1.0, 0.1, rows, 2, nested=False, index=i))
        decision = selector.decide(entry)
        assert decision.should_switch and decision.target_layout == "parquet"

    def test_window_is_bounded(self):
        entry = self._entry("parquet")
        selector = LayoutSelector(window_size=5)
        for i in range(20):
            selector.observe(entry, obs("parquet", 1.0, 1.0, 10, 1, index=i))
        assert len(entry.observations) == 5

    def test_lazy_and_flat_entries_never_switch(self):
        selector = LayoutSelector()
        entry = self._entry("parquet")
        entry.mode = "lazy"
        assert not selector.decide(entry).should_switch


class TestRowColumnSelector:
    def test_narrow_projections_favor_columns(self):
        profile = ColumnAccessProfile(
            column_widths={f"c{i}": 8 for i in range(16)},
            row_count=10_000,
            query_column_sets=[frozenset({"c0"}), frozenset({"c1"})],
        )
        assert RowColumnSelector().choose(profile) == "columnar"

    def test_full_tuple_access_favors_rows(self):
        columns = {f"c{i}": 8 for i in range(16)}
        profile = ColumnAccessProfile(
            column_widths=columns,
            row_count=10_000,
            query_column_sets=[frozenset(columns)] * 4,
        )
        assert RowColumnSelector().choose(profile) == "row"

    def test_empty_workload_defaults_to_columnar(self):
        profile = ColumnAccessProfile(column_widths={"a": 8}, row_count=10, query_column_sets=[])
        assert RowColumnSelector().choose(profile) == "columnar"

    def test_invalid_cache_line(self):
        with pytest.raises(ValueError):
            RowColumnSelector(cache_line_bytes=0)
