"""Tests for the benefit metric, Greedy-Dual eviction and the baseline policies."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.benefit import benefit_from_measurements, benefit_metric
from repro.core.cache_entry import CacheEntry, CacheKey
from repro.core.eviction import ReCacheGreedyDualPolicy, total_bytes
from repro.core.policies import (
    LFUPolicy,
    LRUPolicy,
    MonetDBPolicy,
    OfflineFarthestFirstPolicy,
    OfflineLogOptimalPolicy,
    ProteusLRUPolicy,
    VectorwisePolicy,
    make_policy,
)
from repro.engine.expressions import RangePredicate
from repro.engine.types import FLOAT, Field, RecordType
from repro.layouts import build_layout

SCHEMA = RecordType([Field("x", FLOAT)])


def make_entry(
    name: str,
    size_rows: int = 10,
    source_format: str = "csv",
    operator_time: float = 1.0,
    caching_time: float = 0.5,
    reuse_count: int = 0,
    last_access: int = 0,
) -> CacheEntry:
    layout = build_layout("columnar", SCHEMA, ["x"], rows=[{"x": float(i)} for i in range(size_rows)])
    entry = CacheEntry(
        key=CacheKey.for_select(name, RangePredicate("x", 0, size_rows)),
        source=name,
        source_format=source_format,
        predicate=RangePredicate("x", 0, size_rows),
        fields=["x"],
        layout=layout,
    )
    entry.record_creation(0, operator_time, caching_time)
    entry.stats.reuse_count = reuse_count
    entry.stats.access_count = 1 + reuse_count
    entry.stats.last_access = last_access
    return entry


class TestBenefitMetric:
    def test_formula(self):
        value = benefit_from_measurements(
            reuse_count=3, operator_time=2.0, caching_time=1.0, scan_time=0.2, lookup_time=0.1,
            size_bytes=1024,
        )
        assert value == pytest.approx(3 * (2.0 + 1.0 - 0.3) / math.log2(1024))

    def test_floors_reuse_count_at_one(self):
        zero = benefit_from_measurements(0, 1.0, 1.0, 0.0, 0.0, 64)
        one = benefit_from_measurements(1, 1.0, 1.0, 0.0, 0.0, 64)
        assert zero == one > 0

    def test_never_negative(self):
        assert benefit_from_measurements(5, 0.1, 0.1, 1.0, 1.0, 64) == 0.0

    @given(
        st.integers(0, 100), st.floats(0, 10), st.floats(0, 10), st.floats(0, 1), st.floats(0, 1),
        st.integers(1, 10**9),
    )
    def test_non_negative_property(self, n, t, c, s, l, size):
        assert benefit_from_measurements(n, t, c, s, l, size) >= 0.0

    def test_entry_wrapper(self):
        entry = make_entry("a", reuse_count=2)
        assert benefit_metric(entry) > 0


class TestGreedyDualEviction:
    def test_evicts_lowest_benefit_first(self):
        cheap = make_entry("cheap", operator_time=0.01, caching_time=0.01)
        expensive = make_entry("expensive", operator_time=5.0, caching_time=2.0)
        policy = ReCacheGreedyDualPolicy()
        for entry in (cheap, expensive):
            policy.on_admit(entry, 1)
        victims = policy.choose_victims([cheap, expensive], bytes_to_free=1)
        assert victims == [cheap]

    def test_frees_enough_bytes(self):
        entries = [make_entry(f"e{i}", size_rows=10 * (i + 1)) for i in range(6)]
        policy = ReCacheGreedyDualPolicy()
        for entry in entries:
            policy.on_admit(entry, 1)
        needed = total_bytes(entries) // 2
        victims = policy.choose_victims(entries, needed)
        assert sum(v.nbytes for v in victims) >= needed

    def test_size_aware_heuristic_evicts_fewer_items(self):
        entries = [make_entry(f"e{i}", size_rows=5) for i in range(8)]
        entries.append(make_entry("big", size_rows=200, operator_time=0.02))
        size_aware = ReCacheGreedyDualPolicy(size_aware=True)
        plain = ReCacheGreedyDualPolicy(size_aware=False)
        for policy in (size_aware, plain):
            for entry in entries:
                policy.on_admit(entry, 1)
        target = entries[-1].nbytes  # exactly one big item's worth of space
        assert len(size_aware.choose_victims(entries, target)) <= len(plain.choose_victims(entries, target))

    def test_baseline_advances_after_eviction(self):
        policy = ReCacheGreedyDualPolicy()
        entries = [make_entry(f"e{i}") for i in range(4)]
        for entry in entries:
            policy.on_admit(entry, 1)
        assert policy.baseline == 0.0
        policy.choose_victims(entries, bytes_to_free=entries[0].nbytes)
        assert policy.baseline > 0.0

    def test_recently_accessed_items_survive(self):
        policy = ReCacheGreedyDualPolicy()
        old = make_entry("old", reuse_count=1)
        recent = make_entry("recent", reuse_count=1)
        policy.on_admit(old, 1)
        policy.on_admit(recent, 1)
        # Advance the baseline by evicting a throwaway entry, then access
        # "recent" so it picks up the new, higher baseline.
        filler = make_entry("filler", operator_time=3.0, caching_time=1.0)
        policy.on_admit(filler, 2)
        policy.choose_victims([old, recent, filler], bytes_to_free=filler.nbytes)
        policy.on_access(recent, 3)
        victims = policy.choose_victims([old, recent], bytes_to_free=1)
        assert victims == [old]

    def test_frozen_benefit_mode(self):
        policy = ReCacheGreedyDualPolicy(recompute_benefit=False)
        entry = make_entry("a", operator_time=1.0)
        policy.on_admit(entry, 1)
        frozen = policy.h_value(entry)
        entry.stats.operator_time = 100.0  # new measurement ignored when frozen
        assert policy.h_value(entry) == frozen

    def test_empty_and_zero_requests(self):
        policy = ReCacheGreedyDualPolicy()
        assert policy.choose_victims([], 100) == []
        assert policy.choose_victims([make_entry("a")], 0) == []


class TestBaselinePolicies:
    def test_lru_order(self):
        entries = [make_entry(f"e{i}", last_access=i) for i in range(5)]
        victims = LRUPolicy().choose_victims(entries, bytes_to_free=1)
        assert victims[0].source == "e0"

    def test_lfu_order(self):
        hot = make_entry("hot", reuse_count=10)
        cold = make_entry("cold", reuse_count=0)
        assert LFUPolicy().choose_victims([hot, cold], 1)[0] is cold

    def test_proteus_prefers_evicting_csv(self):
        json_entry = make_entry("json", source_format="json", last_access=0)
        csv_entry = make_entry("csv", source_format="csv", last_access=5)
        victims = ProteusLRUPolicy().choose_victims([json_entry, csv_entry], 1)
        assert victims[0] is csv_entry

    def test_vectorwise_and_monetdb_prefer_cheap_items(self):
        cheap = make_entry("cheap", operator_time=0.01, caching_time=0.0)
        costly = make_entry("costly", operator_time=4.0, caching_time=1.0)
        for policy in (VectorwisePolicy(), MonetDBPolicy()):
            assert policy.choose_victims([cheap, costly], 1)[0] is cheap

    def test_offline_farthest_first(self):
        policy = OfflineFarthestFirstPolicy()
        soon = make_entry("soon")
        later = make_entry("later")
        never = make_entry("never")
        policy.set_future_accesses(
            {soon.key.as_string(): [5], later.key.as_string(): [50]}
        )
        policy.advance_to(1)
        victims = policy.choose_victims([soon, later, never], 1)
        assert victims[0] is never
        victims = policy.choose_victims([soon, later], 1)
        assert victims[0] is later

    def test_offline_log_optimal_prefers_large_far_items(self):
        policy = OfflineLogOptimalPolicy()
        small_far = make_entry("small", size_rows=5)
        large_far = make_entry("large", size_rows=500)
        policy.set_future_accesses({})
        victims = policy.choose_victims([small_far, large_far], 1)
        assert victims[0] is large_far

    def test_make_policy(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("recache"), ReCacheGreedyDualPolicy)
        assert make_policy("recache", recompute_benefit=False).recompute_benefit is False
        with pytest.raises(ValueError):
            make_policy("belady")
