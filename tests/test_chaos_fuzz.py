"""Chaos-mode parity fuzzing: seeded fault schedules against the full stack.

Each schedule activates a deterministic :class:`~repro.faults.FaultPlan`
(seeded, so any failure replays exactly) and pushes a small query batch
through an :class:`~repro.engine.server.EngineServer`.  The contract under
chaos — the tentpole's acceptance bar — is that every query ends in exactly
one of two states:

* a **bit-identical result** (vs. a fault-free caching-disabled baseline run
  with the same pipeline settings), or
* a **typed error** (:class:`~repro.core.errors.ReCacheError` subclass),

and never a hang (every ``future.result`` is bounded), never a stranded
future, and never a leaked budget reservation or occupancy byte (checked
after every schedule).

The default run executes ``RECACHE_CHAOS_SCHEDULES`` (220) schedules across
five fault classes — raw-scan faults, cached-layout corruption, admission
budget exhaustion, serving-worker crashes, real worker-*process* kills
against the process pool (``execution_mode=processes``) — plus a mixed
class combining them with deadlines.  When ``RECACHE_CHAOS_REPORT`` names a file, a JSON
summary of schedules, fault mix and outcome counts is written there (the CI
chaos-suite step archives it).
"""

from __future__ import annotations

import json
import os
import random
from concurrent.futures import TimeoutError as FutureTimeoutError

import pytest

from repro import EngineServer, Query, ReCacheConfig
from repro.core.errors import ReCacheError
from repro.engine.expressions import AggregateSpec, FieldRef, RangePredicate
from repro.engine.query import TableRef
from repro.faults import runtime as faults

from tests.conftest import build_engine
from tests.test_batch_execution import _canonical


def _match(served_rows: list[dict], expected: list[dict]) -> bool:
    """Parity modulo projection width.

    The serving tier may return a *wider* projection for a bare select than a
    standalone execution does (group execution unions the fields of the
    queries it serves together) — the values of the requested fields must
    still be bit-identical, so compare after projecting the served rows onto
    the expected field set.
    """
    if not expected:
        return not served_rows
    fields = list(expected[0])
    projected = [{name: row[name] for name in fields} for row in served_rows]
    return _canonical(projected) == _canonical(expected)

CHAOS_SEED = 20260808
CHAOS_SCHEDULES = int(os.environ.get("RECACHE_CHAOS_SCHEDULES", "220"))
RESULT_TIMEOUT = 30.0

#: module-level outcome accumulator, dumped by the session report fixture.
_OUTCOMES: dict = {
    "schedules": 0,
    "ok": 0,
    "offloaded": 0,
    "typed_errors": {},
    "fault_classes": {},
}


# ---------------------------------------------------------------------------
# Schedule generation (pure function of the schedule index)
# ---------------------------------------------------------------------------
def _scan_raw_spec(rng: random.Random) -> str:
    kind = rng.choice(["io_error", "short_read", "latency"])
    if kind == "latency":
        return f"scan.raw:latency:rate=0.2,limit={rng.randint(1, 8)},delay=0.001"
    rate = rng.choice([1.0, 0.5, 0.05])
    limit = rng.randint(1, 3)
    after = rng.choice([0, 0, rng.randint(1, 200)])
    return f"scan.raw:{kind}:rate={rate},limit={limit},after={after}"


def _scan_layout_spec(rng: random.Random) -> str:
    kind = rng.choice(["corrupt", "corrupt", "latency"])
    if kind == "latency":
        return f"scan.layout:latency:rate=0.3,limit={rng.randint(1, 5)},delay=0.001"
    rate = rng.choice([1.0, 0.5])
    return f"scan.layout:corrupt:rate={rate},limit={rng.randint(1, 2)}"


def _budget_spec(rng: random.Random) -> str:
    rate = rng.choice([1.0, 0.5])
    return f"budget.reserve:budget_exhausted:rate={rate}"


def _worker_spec(rng: random.Random) -> str:
    return f"server.worker:worker_crash:rate={rng.choice([1.0, 0.5])},limit={rng.randint(1, 2)}"


FAULT_CLASSES = {
    "scan-raw": lambda rng: _scan_raw_spec(rng),
    "scan-layout": lambda rng: _scan_layout_spec(rng),
    "budget": lambda rng: _budget_spec(rng),
    "worker": lambda rng: _worker_spec(rng),
    # Same spec family as "worker", but served with execution_mode=processes:
    # the plan ships to the pool and the injector fires as a real os._exit in
    # a worker child, not a simulated in-thread crash.
    "proc-worker": lambda rng: _worker_spec(rng),
    "mixed": lambda rng: ";".join(
        rng.sample(
            [_scan_raw_spec(rng), _scan_layout_spec(rng), _budget_spec(rng), _worker_spec(rng)],
            rng.randint(2, 3),
        )
    ),
}


def _chaos_queries(rng: random.Random, with_deadlines: bool) -> list[Query]:
    low = round(rng.uniform(0.0, 80.0), 1)
    width = round(rng.uniform(10.0, 120.0), 1)
    price_low = rng.uniform(0.0, 100000.0)
    queries = [
        Query.select_aggregate(
            "flat",
            RangePredicate("value", low, low + width),
            [AggregateSpec("sum", FieldRef("score")), AggregateSpec("count", FieldRef("id"))],
            label="chaos-flat-agg",
        ),
        Query(
            tables=[TableRef("flat", RangePredicate("value", low, low + width / 2))],
            label="chaos-flat-rows",
        ),
        Query.select_aggregate(
            "orders",
            RangePredicate("o_totalprice", price_low, 1e6),
            [
                AggregateSpec("sum", FieldRef("lineitems.l_quantity")),
                AggregateSpec("count", FieldRef("o_orderkey")),
            ],
            label="chaos-orders-agg",
        ),
    ]
    if with_deadlines and rng.random() < 0.3:
        # A tight-but-feasible deadline: either met (parity) or DeadlineExceeded
        # (typed) — both legal chaos outcomes.
        victim = rng.randrange(len(queries))
        queries[victim] = Query(
            tables=queries[victim].tables,
            aggregates=queries[victim].aggregates,
            label=queries[victim].label,
            deadline=0.05,
        )
    return queries


def _chaos_config(rng: random.Random, processes: bool = False) -> ReCacheConfig:
    # The process-pool class pins the knobs the offload path gates on
    # (eager admission + vectorized execution) so its crash schedules
    # actually reach real worker children instead of degenerating into
    # in-process fallbacks.
    return ReCacheConfig(
        shard_count=rng.choice([1, 2]),
        cache_size_limit=rng.choice([None, 64_000]),
        adaptive_admission=False if processes else rng.random() < 0.3,
        vectorized_execution=True if processes else rng.random() < 0.5,
        scan_retry_limit=2,
        scan_retry_backoff=0.0005,
        max_workers=2,
        execution_mode="processes" if processes else "threads",
        # timing-driven layout switches can silently de-export hot entries;
        # the crash class needs them to stay columnar to reach real workers
        layout_selection=not processes,
    )


# ---------------------------------------------------------------------------
# Fault-free baseline (same pipeline settings, caching disabled)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def baseline(dataset_dir):
    engines = {}
    cache: dict = {}

    def run(query: Query, vectorized: bool):
        key = (query.signature(), vectorized)
        if key not in cache:
            if vectorized not in engines:
                engines[vectorized] = build_engine(
                    dataset_dir,
                    ReCacheConfig(caching_enabled=False, vectorized_execution=vectorized),
                )
            cache[key] = _canonical(engines[vectorized].execute(query).results)
        return cache[key]

    return run


@pytest.fixture(scope="module", autouse=True)
def chaos_report():
    """Dump the outcome summary when RECACHE_CHAOS_REPORT names a file."""
    yield
    path = os.environ.get("RECACHE_CHAOS_REPORT")
    if path:
        with open(path, "w") as handle:
            json.dump(_OUTCOMES, handle, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# The schedule runner
# ---------------------------------------------------------------------------
def _run_schedule(dataset_dir, baseline, fault_class: str, index: int) -> None:
    # Integer-only seed derivation: string hashing is randomized per process
    # and would break replayability across runs.
    class_index = sorted(FAULT_CLASSES).index(fault_class)
    rng = random.Random(CHAOS_SEED * 1_000_003 + class_index * 100_003 + index)
    spec = FAULT_CLASSES[fault_class](rng)
    seed = rng.randrange(1 << 30)
    config = _chaos_config(rng, processes=fault_class == "proc-worker")
    engine = build_engine(dataset_dir, config)
    queries = _chaos_queries(rng, with_deadlines=fault_class == "mixed")
    context = f"schedule {fault_class}#{index} spec={spec!r} seed={seed}"

    # Materialize the fault-free baselines BEFORE activating the plan: the
    # plan is process-global, so a lazy baseline execution inside the chaos
    # window would be fault-injected itself.
    for query in queries:
        baseline(query, config.vectorized_execution)

    try:
        with EngineServer(engine, max_workers=2) as server:
            with faults.activate(spec, seed=seed):
                futures = server.submit_batch(queries)
                for query, future in zip(queries, futures):
                    try:
                        report = future.result(timeout=RESULT_TIMEOUT)
                    except ReCacheError as exc:
                        _OUTCOMES["typed_errors"][type(exc).__name__] = (
                            _OUTCOMES["typed_errors"].get(type(exc).__name__, 0) + 1
                        )
                    except FutureTimeoutError:
                        pytest.fail(f"HANG: {query.label} never resolved under {context}")
                    else:
                        _OUTCOMES["ok"] += 1
                        assert _match(
                            report.results, baseline(query, config.vectorized_execution)
                        ), f"parity violation on {query.label} under {context}"

            # Also run the batch once more fault-free on the same (possibly
            # quarantine-scarred) cache: containment must leave a healthy engine.
            # Deadlines are stripped — only fault pressure may miss them.
            replay = [
                Query(tables=q.tables, joins=q.joins, aggregates=q.aggregates,
                      group_by=q.group_by, label=q.label)
                for q in queries
            ]
            for query, report in zip(replay, server.serve_all(replay, timeout=RESULT_TIMEOUT)):
                assert _match(
                    report.results, baseline(query, config.vectorized_execution)
                ), f"post-fault parity violation on {query.label} under {context}"
                _OUTCOMES["offloaded"] += report.offloaded
    finally:
        # Process-pool schedules spawn real children; reap them (and their
        # shared-memory segments) before the leak assertions below.
        engine.close_workers()

    # No stranded futures / leaked backpressure capacity.
    assert server.queue_depth == 0, f"backpressure capacity leaked under {context}"
    # No leaked budget reservation; occupancy equals resident entry bytes.
    budget = getattr(engine.recache, "budget", None)
    if budget is not None:
        assert budget.reserved == 0, f"leaked budget reservation under {context}"
    resident = sum(entry.nbytes for entry in engine.recache.entries())
    assert engine.recache.total_bytes == resident, (
        f"occupancy {engine.recache.total_bytes} != resident {resident} under {context}"
    )

    _OUTCOMES["schedules"] += 1
    _OUTCOMES["fault_classes"][fault_class] = (
        _OUTCOMES["fault_classes"].get(fault_class, 0) + 1
    )


def _class_budget() -> dict[str, int]:
    """Split the schedule budget across the six fault classes."""
    per = CHAOS_SCHEDULES // len(FAULT_CLASSES)
    counts = {name: per for name in FAULT_CLASSES}
    counts["mixed"] += CHAOS_SCHEDULES - per * len(FAULT_CLASSES)
    return counts


@pytest.mark.parametrize("fault_class", sorted(FAULT_CLASSES))
def test_chaos_schedules(dataset_dir, baseline, fault_class):
    for index in range(_class_budget()[fault_class]):
        _run_schedule(dataset_dir, baseline, fault_class, index)


def test_schedule_budget_meets_acceptance_bar():
    assert sum(_class_budget().values()) == CHAOS_SCHEDULES >= 200


def test_process_pool_class_reached_real_workers():
    """The proc-worker class must exercise actual offloads, not fallbacks.

    Replay passes run fault-free against warmed caches, so if the class ran
    at all, at least one query must have executed inside a worker process —
    otherwise the crash schedules only ever tested the in-thread simulation.
    """
    if _OUTCOMES["fault_classes"].get("proc-worker", 0) == 0:
        pytest.skip("proc-worker schedules did not run in this session")
    assert _OUTCOMES["offloaded"] >= 1
