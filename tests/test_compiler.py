"""Tests for the expression compiler (generated closures match interpretation)."""

from hypothesis import given, strategies as st

from repro.engine.compiler import (
    CompiledAggregate,
    compile_aggregates,
    compile_predicate,
    compile_projection,
    compile_value,
)
from repro.engine.expressions import (
    AggregateSpec,
    And,
    Arithmetic,
    Comparison,
    FieldRef,
    Literal,
    Not,
    Or,
    RangePredicate,
)


def _row_strategy():
    return st.fixed_dictionaries(
        {
            "a": st.one_of(st.none(), st.integers(-100, 100)),
            "b": st.one_of(st.none(), st.floats(-100, 100)),
            "c": st.integers(-5, 5),
        }
    )


class TestCompiledPredicates:
    def test_none_predicate_accepts_everything(self):
        assert compile_predicate(None)({"anything": 1})

    @given(_row_strategy())
    def test_range_predicate_matches_interpreter(self, row):
        expr = RangePredicate("a", -50, 50)
        assert compile_predicate(expr)(row) == bool(expr.evaluate(row))

    @given(_row_strategy(), st.integers(-100, 100), st.integers(-100, 100))
    def test_conjunction_matches_interpreter(self, row, low, high):
        expr = And(
            [
                Comparison(">=", FieldRef("c"), Literal(min(low, high) / 50.0)),
                Or([RangePredicate("a", low, max(low, high)), Not(Comparison("==", FieldRef("c"), Literal(0)))]),
            ]
        )
        assert compile_predicate(expr)(row) == bool(expr.evaluate(row))

    def test_arithmetic_value(self):
        expr = Arithmetic("+", Arithmetic("*", FieldRef("a"), Literal(2)), Literal(1))
        assert compile_value(expr)({"a": 3}) == 7

    def test_projection(self):
        project = compile_projection(["a", "missing"])
        assert project({"a": 1, "b": 2}) == {"a": 1, "missing": None}


class TestCompiledAggregates:
    def test_all_functions(self):
        rows = [{"x": 1.0}, {"x": 3.0}, {"x": None}, {"x": 2.0}]
        specs = [AggregateSpec(func, FieldRef("x")) for func in ("sum", "avg", "min", "max", "count")]
        aggregates = compile_aggregates(specs)
        for row in rows:
            for aggregate in aggregates:
                aggregate.update(row)
        results = {agg.spec.func: agg.result() for agg in aggregates}
        assert results == {"sum": 6.0, "avg": 2.0, "min": 1.0, "max": 3.0, "count": 3}

    def test_empty_input(self):
        aggregate = CompiledAggregate(AggregateSpec("avg", FieldRef("x")))
        assert aggregate.result() is None
        count = CompiledAggregate(AggregateSpec("count", FieldRef("x")))
        assert count.result() == 0

    def test_alias_used_as_output_name(self):
        spec = AggregateSpec("sum", FieldRef("x"), alias="total")
        assert spec.output_name == "total"
