"""Property tests: the factorized batch hash join matches ``hash_join`` exactly.

Random key distributions — null-free numerics, strings, null-heavy columns,
all-duplicate keys, empty sides — must produce bit-identical output (row
order, multiplicity, merged field order, value types) from
:func:`hash_join_batches` and the row-interpreter :func:`hash_join`, across
varying batch boundaries.  The overlap-column guard and the float64 fallback
edges (2**53 integers, genuine NaN key values) are locked down here too.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.engine.batch import RecordBatch, rows_from_batches
from repro.engine.operators import hash_join, hash_join_batches


def _chunks(rows: list[dict], size: int) -> list[RecordBatch]:
    """Batches mirroring the rows' own field order (as engine scans do)."""
    if not rows:
        return []
    fields = list(rows[0])
    return [RecordBatch.from_rows(rows[i : i + size], fields) for i in range(0, len(rows), size)]


def assert_join_parity(
    left_rows: list[dict],
    right_rows: list[dict],
    left_key: str = "k",
    right_key: str = "k",
    batch_sizes: tuple[int, int] = (7, 5),
) -> list[dict]:
    """Assert the batch join reproduces the row join bit for bit."""
    expected = hash_join(left_rows, right_rows, left_key, right_key)
    joined = hash_join_batches(
        _chunks(left_rows, batch_sizes[0]),
        _chunks(right_rows, batch_sizes[1]),
        left_key,
        right_key,
    )
    got = rows_from_batches(joined)
    assert got == expected
    # Same merged-field order and the same value objects' types, not just
    # equality: min/max-style consumers downstream are type-sensitive.
    assert [list(row) for row in got] == [list(row) for row in expected]
    assert [[type(v) for v in row.values()] for row in got] == [
        [type(v) for v in row.values()] for row in expected
    ]
    return expected


# ---------------------------------------------------------------------------
# Random key distributions
# ---------------------------------------------------------------------------
class TestFactorizedProbeDistributions:
    def test_null_free_numeric_keys(self):
        rng = random.Random(11)
        left = [{"k": rng.randint(0, 25), "a": i} for i in range(300)]
        right = [{"k": rng.randint(0, 25), "b": i * 0.5} for i in range(200)]
        rows = assert_join_parity(left, right)
        assert rows, "distribution must actually produce matches"

    def test_float_keys_with_duplicates(self):
        rng = random.Random(12)
        pool = [round(rng.uniform(0, 5), 1) for _ in range(8)]
        left = [{"k": rng.choice(pool), "a": i} for i in range(120)]
        right = [{"k": rng.choice(pool), "b": i} for i in range(140)]
        assert assert_join_parity(left, right)

    def test_string_keys_take_the_dict_probe(self):
        rng = random.Random(13)
        left = [{"k": rng.choice("abcdef"), "a": i} for i in range(90)]
        right = [{"k": rng.choice("abcdefgh"), "b": i} for i in range(110)]
        assert assert_join_parity(left, right)

    def test_null_heavy_keys_are_dropped_on_both_sides(self):
        rng = random.Random(14)
        left = [
            {"k": None if rng.random() < 0.5 else rng.randint(0, 6), "a": i} for i in range(150)
        ]
        right = [
            {"k": None if rng.random() < 0.5 else rng.randint(0, 6), "b": i} for i in range(150)
        ]
        rows = assert_join_parity(left, right)
        assert all(row["k"] is not None for row in rows)

    def test_all_duplicate_single_key_cross_product(self):
        left = [{"k": 1, "a": i} for i in range(25)]
        right = [{"k": 1, "b": i} for i in range(30)]
        rows = assert_join_parity(left, right)
        assert len(rows) == 25 * 30

    def test_empty_build_probe_and_both_sides(self):
        some = [{"k": 1, "a": 0}, {"k": 2, "a": 1}]
        assert assert_join_parity([], [{"k": 1, "b": 0}]) == []
        assert assert_join_parity(some, []) == []
        assert assert_join_parity([], []) == []
        assert hash_join_batches([], [], "k", "k") == []

    def test_all_null_keys_on_one_side(self):
        left = [{"k": None, "a": i} for i in range(10)]
        right = [{"k": 1, "b": 0}]
        assert assert_join_parity(left, right) == []

    def test_distinct_key_names_and_batch_size_one(self):
        rng = random.Random(15)
        left = [{"k1": rng.randint(0, 4), "a": i} for i in range(40)]
        right = [{"k2": rng.randint(0, 4), "b": i} for i in range(45)]
        assert_join_parity(left, right, "k1", "k2", batch_sizes=(1, 1))
        assert_join_parity(left, right, "k1", "k2", batch_sizes=(1000, 1000))


# ---------------------------------------------------------------------------
# Float64 fallback edges
# ---------------------------------------------------------------------------
class TestProbeFallbackEdges:
    def test_mixed_int_float_bool_keys_merge_like_dict_hashing(self):
        left = [{"k": 1, "a": 0}, {"k": 1.0, "a": 1}, {"k": True, "a": 2}, {"k": 2, "a": 3}]
        right = [{"k": 1.0, "b": 0}, {"k": 2, "b": 1}, {"k": 3, "b": 2}]
        rows = assert_join_parity(left, right)
        assert len(rows) == 4  # 1/1.0/True all match 1.0, plus the 2 pair

    def test_huge_integer_keys_do_not_merge_in_float64(self):
        """2**53 and 2**53 + 1 coerce to the same float64; the vectorized
        probe must detect the magnitude and fall back to the dict pass."""
        left = [{"k": 2**53, "a": 0}, {"k": 2**53 + 1, "a": 1}]
        right = [{"k": 2**53, "b": 0}, {"k": 2**53 + 1, "b": 1}]
        rows = assert_join_parity(left, right)
        assert len(rows) == 2

    def test_genuine_nan_key_keeps_dict_identity_semantics(self):
        """A real float('nan') key is indistinguishable from a null in the
        float64 view, so the probe must take the dict pass, where the same
        NaN object matches itself by identity (as in the row interpreter)."""
        nan = float("nan")
        left = [{"k": nan, "a": 0}, {"k": 1.0, "a": 1}]
        right = [{"k": nan, "b": 0}, {"k": float("nan"), "b": 1}, {"k": 1.0, "b": 2}]
        rows = assert_join_parity(left, right)
        # The shared nan object matches; the fresh nan object does not.
        assert len(rows) == 2

    def test_mixed_string_and_numeric_keys(self):
        left = [{"k": 1, "a": 0}, {"k": "1", "a": 1}, {"k": 2.5, "a": 2}]
        right = [{"k": "1", "b": 0}, {"k": 1, "b": 1}, {"k": 2.5, "b": 2}]
        rows = assert_join_parity(left, right)
        assert len(rows) == 3  # "1" matches only "1", 1 only 1, 2.5 only 2.5


# ---------------------------------------------------------------------------
# Output mechanics
# ---------------------------------------------------------------------------
class TestJoinOutputMechanics:
    def test_gathered_numeric_views_stay_aligned(self):
        """Views already built on the inputs are gathered, not rebuilt, and
        must stay aligned with the gathered value columns."""
        left = [{"k": i % 3, "a": float(i)} for i in range(12)]
        right = [{"j": i % 3, "b": float(i) * 2} for i in range(9)]
        left_batches = _chunks(left, 4)
        right_batches = _chunks(right, 3)
        for batch in left_batches + right_batches:
            for name in batch.field_names():
                batch.numeric_view(name)
        (joined,) = hash_join_batches(left_batches, right_batches, "k", "j")
        for name in joined.field_names():
            view = joined.numeric_view(name)
            expected = [row[name] for row in joined.to_rows()]
            assert view is not None
            np.testing.assert_array_equal(view, np.array(expected, dtype=np.float64))

    def test_overlapping_non_key_columns_raise_on_row_path(self):
        left = [{"k": 1, "x": "left", "a": 0}]
        right = [{"k": 1, "x": "right", "b": 0}]
        with pytest.raises(ValueError, match="overlapping non-key columns"):
            hash_join(left, right, "k", "k")

    def test_overlapping_non_key_columns_raise_on_batch_path(self):
        left = _chunks([{"k1": 1, "x": "left"}], 4)
        right = _chunks([{"k2": 1, "x": "right"}], 4)
        with pytest.raises(ValueError, match="overlapping non-key columns"):
            hash_join_batches(left, right, "k1", "k2")

    def test_overlap_guard_skipped_when_a_side_is_empty(self):
        """Parity with the row path: an empty side yields an empty (trivially
        correct) output, never an overlap error — even for schema'd zero-row
        batches that still carry conflicting column names."""
        empty = RecordBatch({"k": [], "x": []}, 0)
        populated = _chunks([{"k": 1, "x": 2, "b": 3}], 4)
        assert hash_join_batches([empty], populated, "k", "k") == []
        assert hash_join_batches(populated, [empty], "k", "k") == []
        assert hash_join([], [{"k": 1, "x": 2}], "k", "k") == []

    def test_same_name_join_key_overlap_is_allowed(self):
        """A join key spelled identically on both sides is the one legal
        shared name: its values agree on every matched row."""
        rows = assert_join_parity(
            [{"k": 1, "a": 0}, {"k": 2, "a": 1}], [{"k": 1, "b": 0}, {"k": 1, "b": 1}]
        )
        assert [row["k"] for row in rows] == [1, 1]

    def test_key_column_reused_as_other_sides_non_key_raises(self):
        """Asymmetric reuse of a key name (left joins on ``k``, right merely
        carries a ``k`` column) would silently overwrite the key — rejected."""
        left = [{"k": 1, "a": 0}]
        right = [{"j": 1, "k": 99, "b": 0}]
        with pytest.raises(ValueError, match="overlapping non-key columns"):
            hash_join(left, right, "k", "j")
        with pytest.raises(ValueError, match="overlapping non-key columns"):
            hash_join_batches(_chunks(left, 2), _chunks(right, 2), "k", "j")
