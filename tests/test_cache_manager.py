"""Tests for the ReCache cache manager (lookup, admission, eviction, switching)."""

import pytest

from repro.core.cache_manager import ReCache
from repro.core.config import ReCacheConfig
from repro.core.cache_entry import LayoutObservation
from repro.engine.expressions import RangePredicate
from repro.engine.types import FLOAT, Field, RecordType
from repro.layouts import build_layout
from repro.workloads.nested import ORDER_LINEITEMS_SCHEMA, synthetic_order_lineitems

FLAT = RecordType([Field("x", FLOAT), Field("y", FLOAT)])


def flat_layout(rows=20):
    data = [{"x": float(i), "y": i * 2.0} for i in range(rows)]
    return build_layout("columnar", FLAT, ["x", "y"], rows=data)


def admit(cache, source, predicate, rows=20, t=1.0, c=0.5):
    cache.begin_query()
    return cache.admit_eager(
        source=source,
        source_format="csv",
        predicate=predicate,
        fields=["x", "y"],
        layout=flat_layout(rows),
        operator_time=t,
        caching_time=c,
    )


class TestConfigValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ReCacheConfig(eviction_policy="belady")
        with pytest.raises(ValueError):
            ReCacheConfig(admission_threshold=0.0)
        with pytest.raises(ValueError):
            ReCacheConfig(cache_size_limit=0)
        with pytest.raises(ValueError):
            ReCacheConfig(default_nested_layout="arrow")

    def test_baseline_factories(self):
        lru = ReCacheConfig.baseline_lru_columnar()
        assert lru.eviction_policy == "lru" and not lru.layout_selection
        assert ReCacheConfig.baseline_parquet_greedy().default_nested_layout == "parquet"
        assert ReCacheConfig.unlimited().cache_size_limit is None


class TestLookupAndAdmission:
    def test_exact_match(self):
        cache = ReCache(ReCacheConfig())
        predicate = RangePredicate("x", 0, 10)
        entry = admit(cache, "t", predicate)
        match = cache.lookup("t", RangePredicate("x", 0, 10), ["x"])
        assert match is not None and match.exact and match.entry is entry
        assert cache.stats.exact_hits == 1

    def test_subsumption_match(self):
        cache = ReCache(ReCacheConfig())
        admit(cache, "t", RangePredicate("x", 0, 100))
        match = cache.lookup("t", RangePredicate("x", 10, 20), ["x"])
        assert match is not None and not match.exact
        assert cache.stats.subsumption_hits == 1

    def test_miss_and_disabled_subsumption(self):
        cache = ReCache(ReCacheConfig(enable_subsumption=False))
        admit(cache, "t", RangePredicate("x", 0, 100))
        assert cache.lookup("t", RangePredicate("x", 10, 20), ["x"]) is None
        assert cache.stats.misses == 1

    def test_caching_disabled(self):
        cache = ReCache(ReCacheConfig(caching_enabled=False))
        assert admit(cache, "t", RangePredicate("x", 0, 1)) is None
        assert cache.lookup("t", RangePredicate("x", 0, 1), ["x"]) is None

    def test_replacement_on_same_key(self):
        cache = ReCache(ReCacheConfig())
        first = admit(cache, "t", RangePredicate("x", 0, 10))
        second = admit(cache, "t", RangePredicate("x", 0, 10))
        assert len(cache) == 1
        assert cache.get_exact("t", RangePredicate("x", 0, 10)) is second
        assert first is not second

    def test_lazy_admission_and_hot_tracking(self):
        cache = ReCache(ReCacheConfig())
        cache.begin_query()
        entry = cache.admit_lazy(
            source="t",
            source_format="json",
            predicate=RangePredicate("x", 0, 5),
            fields=["x"],
            offsets=[1, 5, 9],
            operator_time=2.0,
            caching_time=0.01,
        )
        assert entry.is_lazy and entry.nbytes == 24
        assert cache.has_live_entries("t") and not cache.has_hot_entries("t")
        cache.record_reuse(entry, scan_time=0.1, lookup_time=0.001)
        assert cache.has_hot_entries("t")
        cache.upgrade_lazy(entry, flat_layout(), caching_time=0.2)
        assert not entry.is_lazy and cache.stats.lazy_upgrades == 1


class TestCapacityAndEviction:
    def test_capacity_enforced(self):
        entry_size = flat_layout(50).nbytes
        cache = ReCache(ReCacheConfig(cache_size_limit=entry_size * 3 + 10, eviction_policy="lru"))
        for i in range(6):
            admit(cache, "t", RangePredicate("x", i, i + 0.5), rows=50)
        assert cache.total_bytes <= cache.config.cache_size_limit
        assert cache.stats.evictions >= 3

    def test_oversized_item_not_admitted(self):
        cache = ReCache(ReCacheConfig(cache_size_limit=100))
        assert admit(cache, "t", RangePredicate("x", 0, 1), rows=500) is None
        assert cache.stats.admissions_skipped == 1

    def test_evicted_entries_leave_the_subsumption_index(self):
        entry_size = flat_layout(50).nbytes
        cache = ReCache(ReCacheConfig(cache_size_limit=entry_size + 10, eviction_policy="lru"))
        admit(cache, "t", RangePredicate("x", 0, 100), rows=50)
        admit(cache, "t", RangePredicate("x", 200, 300), rows=50)
        # the first (covering) entry has been evicted, so no subsuming match
        assert cache.lookup("t", RangePredicate("x", 10, 20), ["x"]) is None
        assert cache.stats.evictions == 1


class TestLayoutSwitchIntegration:
    def _nested_cache(self, layout_selection=True):
        cache = ReCache(ReCacheConfig(layout_selection=layout_selection))
        records = synthetic_order_lineitems(30, seed=2)
        fields = ORDER_LINEITEMS_SCHEMA.leaf_paths()
        layout = build_layout("parquet", ORDER_LINEITEMS_SCHEMA, fields, records=records)
        cache.begin_query()
        entry = cache.admit_eager(
            source="orders",
            source_format="json",
            predicate=None,
            fields=fields,
            layout=layout,
            operator_time=1.0,
            caching_time=0.5,
        )
        return cache, entry

    def test_switch_happens_under_nested_heavy_reuse(self):
        cache, entry = self._nested_cache()
        rows = entry.layout.flattened_row_count
        switched = None
        for i in range(5):
            cache.begin_query()
            observation = LayoutObservation(
                query_index=i,
                layout_name=entry.layout_name,
                data_cost=1.0,
                compute_cost=2.0,
                rows_accessed=rows,
                columns_accessed=3,
                accessed_nested=True,
            )
            switched = cache.record_reuse(entry, 3.0, 0.001, observation) or switched
        assert switched == "columnar"
        assert entry.layout_name == "columnar"
        assert cache.stats.layout_switches == 1
        # the observation window moved forward when the switch happened, so it
        # now only holds the observations recorded after it
        assert len(entry.observations) < 5

    def test_no_switch_when_selection_disabled(self):
        cache, entry = self._nested_cache(layout_selection=False)
        rows = entry.layout.flattened_row_count
        for i in range(5):
            cache.begin_query()
            observation = LayoutObservation(
                query_index=i,
                layout_name=entry.layout_name,
                data_cost=1.0,
                compute_cost=2.0,
                rows_accessed=rows,
                columns_accessed=3,
                accessed_nested=True,
            )
            cache.record_reuse(entry, 3.0, 0.001, observation)
        assert entry.layout_name == "parquet"
        assert cache.stats.layout_switches == 0


class TestOutOfLockLayoutSwitch:
    """The conversion runs outside the lock; install re-validates the world."""

    def _reuse_until_switch_decision(self, cache, entry, queries=5):
        rows = entry.layout.flattened_row_count
        results = []
        for i in range(queries):
            cache.begin_query()
            observation = LayoutObservation(
                query_index=i,
                layout_name=entry.layout_name,
                data_cost=1.0,
                compute_cost=2.0,
                rows_accessed=rows,
                columns_accessed=3,
                accessed_nested=True,
            )
            results.append(cache.record_reuse(entry, 3.0, 0.001, observation))
        return results

    def _nested_cache(self):
        cache = ReCache(ReCacheConfig(layout_selection=True))
        records = synthetic_order_lineitems(30, seed=2)
        fields = ORDER_LINEITEMS_SCHEMA.leaf_paths()
        layout = build_layout("parquet", ORDER_LINEITEMS_SCHEMA, fields, records=records)
        cache.begin_query()
        entry = cache.admit_eager(
            source="orders",
            source_format="json",
            predicate=None,
            fields=fields,
            layout=layout,
            operator_time=1.0,
            caching_time=0.5,
        )
        return cache, entry

    def test_eviction_during_conversion_drops_the_switch(self, monkeypatch):
        from repro.core import cache_manager as cm

        cache, entry = self._nested_cache()
        real_convert = cm.convert_layout

        def evict_mid_conversion(layout, target, schema):
            converted = real_convert(layout, target, schema)
            cache.evict_entry(entry)  # another thread evicts while we convert
            return converted

        monkeypatch.setattr(cm, "convert_layout", evict_mid_conversion)
        results = self._reuse_until_switch_decision(cache, entry)
        # The decision fired (convert ran, hence the eviction), but the install
        # re-validated residency and dropped the converted layout.
        assert all(result is None for result in results)
        assert entry.layout_name == "parquet"
        assert cache.stats.layout_switches == 0
        assert cache.total_bytes == 0  # eviction accounting untouched

    def test_concurrent_layout_change_loses_the_race(self, monkeypatch):
        from repro.core import cache_manager as cm

        cache, entry = self._nested_cache()
        real_convert = cm.convert_layout
        occupancy_before = cache.total_bytes

        def swap_mid_conversion(layout, target, schema):
            converted, seconds = real_convert(layout, target, schema)
            # Another thread replaced the entry's layout while we converted:
            # install must notice `entry.layout is not old_layout` and bail.
            other, _ = real_convert(entry.layout, target, schema)
            with cache._lock:
                delta = other.nbytes - entry.nbytes
                entry.replace_layout(other)
                cache._adjust_occupancy(delta)
            return converted, seconds

        monkeypatch.setattr(cm, "convert_layout", swap_mid_conversion)
        results = self._reuse_until_switch_decision(cache, entry)
        assert all(result is None for result in results)
        assert cache.stats.layout_switches == 0
        assert occupancy_before > 0
        # Occupancy reflects exactly the racing replacement, nothing double.
        assert cache.total_bytes == entry.nbytes

    def test_switch_still_succeeds_without_interference(self):
        cache, entry = self._nested_cache()
        results = self._reuse_until_switch_decision(cache, entry)
        assert "columnar" in results
        assert entry.layout_name == "columnar"
        assert cache.stats.layout_switches == 1

    def test_concurrent_switch_of_same_entry_runs_one_conversion(self, monkeypatch):
        from repro.core import cache_manager as cm

        cache, entry = self._nested_cache()
        real_convert = cm.convert_layout
        conversions = []

        def nested_reuse_during_conversion(layout, target, schema):
            conversions.append(target)
            # While this conversion is in flight, a "concurrent" reuse sees the
            # in-progress flag and must skip its own conversion entirely.
            rows = entry.layout.flattened_row_count
            observation = LayoutObservation(
                query_index=99,
                layout_name=entry.layout_name,
                data_cost=1.0,
                compute_cost=2.0,
                rows_accessed=rows,
                columns_accessed=3,
                accessed_nested=True,
            )
            assert cache.record_reuse(entry, 3.0, 0.001, observation) is None
            return real_convert(layout, target, schema)

        monkeypatch.setattr(cm, "convert_layout", nested_reuse_during_conversion)
        results = self._reuse_until_switch_decision(cache, entry)
        assert "columnar" in results
        assert conversions == ["columnar"]  # exactly one conversion ran
        assert cache.stats.layout_switches == 1
