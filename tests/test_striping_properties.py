"""Property tests for Dremel-style column striping.

Seeded random schemas and records (hypothesis-style generators, no external
dependency) check two invariants the Parquet layout's fast paths lean on:

* ``stripe_records`` -> ``assemble_records`` round-trips arbitrary records of
  the nesting shapes the repository supports (atoms, records of atoms, lists
  of atoms, lists of records, with nulls at every level),
* ``prune_schema`` never drops a requested leaf path, and never invents one.

Plus the structural invariant behind
:meth:`~repro.layouts.striping.StripedColumn.flat_values`: a flat column
stripes exactly one entry per record, with ``None`` at exactly the positions
whose definition level is below the maximum.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.types import (
    FLOAT,
    INT,
    STRING,
    Field,
    ListType,
    RecordType,
)
from repro.layouts.assembly import assemble_columns, assemble_records, assemble_rows
from repro.layouts.striping import prune_schema, stripe_records

ATOMS = (INT, FLOAT, STRING)


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------
def random_schema(rng: random.Random) -> RecordType:
    """A random top-level schema over the supported nesting shapes."""
    fields = []
    for index in range(rng.randint(1, 6)):
        name = f"f{index}"
        roll = rng.random()
        if roll < 0.4:
            fields.append(Field(name, rng.choice(ATOMS)))
        elif roll < 0.55:  # record of atoms
            inner = [Field(f"a{j}", rng.choice(ATOMS)) for j in range(rng.randint(1, 3))]
            fields.append(Field(name, RecordType(inner)))
        elif roll < 0.75:  # list of atoms
            fields.append(Field(name, ListType(rng.choice(ATOMS))))
        else:  # list of records
            inner = [Field(f"a{j}", rng.choice(ATOMS)) for j in range(rng.randint(1, 3))]
            fields.append(Field(name, ListType(RecordType(inner))))
    return RecordType(fields)


def _random_atom(rng: random.Random, dtype) -> object:
    if rng.random() < 0.25:
        return None
    if dtype is INT:
        return rng.randint(-1000, 1000)
    if dtype is FLOAT:
        return round(rng.uniform(-100.0, 100.0), 3)
    return rng.choice(["red", "green", "blue", "", "x" * rng.randint(1, 5)])


def random_record(rng: random.Random, schema: RecordType) -> dict:
    """A random record in *canonical* form (what assembly reconstructs).

    Striping cannot distinguish a missing field from an explicit ``None``,
    nor a missing list from an empty one, so the generator always emits every
    field, with ``None`` for missing atoms/records' leaves and ``[]`` for
    empty collections — the canonical shape ``assemble_records`` produces.
    """
    record: dict = {}
    for field in schema.fields:
        dtype = field.dtype
        if isinstance(dtype, ListType):
            count = rng.choice([0, 0, 1, 2, 3, 5])
            if isinstance(dtype.element, RecordType):
                record[field.name] = [
                    {
                        inner.name: _random_atom(rng, inner.dtype)
                        for inner in dtype.element.fields
                    }
                    for _ in range(count)
                ]
            else:
                record[field.name] = [_random_atom(rng, dtype.element) for _ in range(count)]
        elif isinstance(dtype, RecordType):
            record[field.name] = {
                inner.name: _random_atom(rng, inner.dtype) for inner in dtype.fields
            }
        else:
            record[field.name] = _random_atom(rng, dtype)
    return record


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(25))
def test_stripe_assemble_roundtrip(seed):
    rng = random.Random(1000 + seed)
    schema = random_schema(rng)
    records = [random_record(rng, schema) for _ in range(rng.randint(1, 30))]
    columns = stripe_records(records, schema)
    assert list(assemble_records(columns, schema)) == records


@pytest.mark.parametrize("seed", range(25))
def test_prune_schema_keeps_every_requested_path(seed):
    rng = random.Random(2000 + seed)
    schema = random_schema(rng)
    leaves = schema.leaf_paths()
    wanted = rng.sample(leaves, rng.randint(1, len(leaves)))
    pruned = prune_schema(schema, wanted)
    assert set(pruned.leaf_paths()) == set(wanted), (
        f"prune_schema dropped or invented paths for {wanted} on {leaves}"
    )


@pytest.mark.parametrize("seed", range(15))
def test_assemble_columns_matches_assemble_rows(seed):
    """The column-wise assembly (parquet batch fallback) mirrors the row FSM."""
    rng = random.Random(3000 + seed)
    schema = random_schema(rng)
    records = [random_record(rng, schema) for _ in range(rng.randint(1, 20))]
    columns = stripe_records(records, schema)
    leaves = schema.leaf_paths()
    wanted = rng.sample(leaves, rng.randint(1, len(leaves)))
    pruned = prune_schema(schema, wanted)
    expected = list(assemble_rows(columns, schema, wanted))
    assembled, row_count = assemble_columns(columns, pruned, wanted)
    assert row_count == len(expected)
    rebuilt = [
        {field: assembled[field][i] for field in wanted} for i in range(row_count)
    ]
    assert rebuilt == expected


@pytest.mark.parametrize("seed", range(15))
def test_flat_columns_stripe_one_aligned_entry_per_record(seed):
    rng = random.Random(4000 + seed)
    schema = random_schema(rng)
    records = [random_record(rng, schema) for _ in range(rng.randint(1, 20))]
    columns = stripe_records(records, schema)
    for path, column in columns.items():
        if column.is_nested:
            assert column.flat_values(len(records)) is None
            continue
        values = column.flat_values(len(records))
        assert values is not None and len(values) == len(records)
        for index, (value, definition) in enumerate(
            zip(column.values, column.definition_levels)
        ):
            if definition == column.max_definition:
                assert value is not None, (path, index)
            else:
                assert value is None, (path, index)


# ---------------------------------------------------------------------------
# Regression: empty/missing collections behind optional struct wrappers
# ---------------------------------------------------------------------------
# An optional record wrapping a repeated field puts the list node at
# definition depth > 1, which is exactly where an off-by-one in
# ``list_definition_threshold`` (the ``threshold - 2`` empty-collection test in
# ``_assemble_group_elements``) would collapse the distinctions between a
# missing wrapper, a present wrapper with an empty list, and a one-element
# list holding NULL.  These cases pin each shape end to end: stripe ->
# assemble_records structure, and stripe -> assemble_rows/columns parity with
# ``flatten_record``.

WRAPPED_SCHEMA = RecordType(
    [
        Field("key", INT),
        Field(
            "meta",
            RecordType([Field("tags", ListType(STRING)), Field("n", INT)]),
        ),
    ]
)

DEEP_SCHEMA = RecordType(
    [
        Field("key", INT),
        Field(
            "a",
            RecordType(
                [
                    Field(
                        "b",
                        RecordType(
                            [Field("c", ListType(RecordType([Field("x", INT)])))]
                        ),
                    )
                ]
            ),
        ),
    ]
)


@pytest.mark.parametrize(
    "record, expected_tags",
    [
        ({"key": 1}, []),  # wrapper missing entirely
        ({"key": 2, "meta": None}, []),  # wrapper explicitly null
        ({"key": 3, "meta": {"n": 7}}, []),  # wrapper present, list missing
        ({"key": 4, "meta": {"tags": [], "n": 7}}, []),  # list present but empty
        ({"key": 5, "meta": {"tags": [None], "n": 7}}, [None]),  # one NULL element
        ({"key": 6, "meta": {"tags": ["a", None, "b"]}}, ["a", None, "b"]),
    ],
)
def test_wrapped_empty_list_reconstructs_distinctly(record, expected_tags):
    columns = stripe_records([record], WRAPPED_SCHEMA)
    (rebuilt,) = assemble_records(columns, WRAPPED_SCHEMA)
    assert rebuilt["meta"]["tags"] == expected_tags


@pytest.mark.parametrize(
    "record, expected_elements",
    [
        ({"key": 1}, []),  # whole chain missing
        ({"key": 2, "a": {}}, []),  # empty at depth 1
        ({"key": 3, "a": {"b": {}}}, []),  # empty at depth 2
        ({"key": 4, "a": {"b": {"c": []}}}, []),  # empty list at depth 3
        ({"key": 5, "a": {"b": {"c": [None]}}}, [{"x": None}]),
        ({"key": 6, "a": {"b": {"c": [{"x": 9}, {}]}}}, [{"x": 9}, {"x": None}]),
    ],
)
def test_deep_empty_list_reconstructs_distinctly(record, expected_elements):
    columns = stripe_records([record], DEEP_SCHEMA)
    (rebuilt,) = assemble_records(columns, DEEP_SCHEMA)
    assert rebuilt["a"]["b"]["c"] == expected_elements


@pytest.mark.parametrize("schema", [WRAPPED_SCHEMA, DEEP_SCHEMA], ids=["wrapped", "deep"])
def test_wrapped_empty_lists_flatten_parity(schema):
    from repro.engine.types import flatten_record

    if schema is WRAPPED_SCHEMA:
        records = [
            {"key": 1},
            {"key": 2, "meta": None},
            {"key": 3, "meta": {"n": 7}},
            {"key": 4, "meta": {"tags": [], "n": 7}},
            {"key": 5, "meta": {"tags": [None], "n": 8}},
            {"key": 6, "meta": {"tags": ["a", None, "b"], "n": 9}},
        ]
    else:
        records = [
            {"key": 1},
            {"key": 2, "a": {}},
            {"key": 3, "a": {"b": {}}},
            {"key": 4, "a": {"b": {"c": []}}},
            {"key": 5, "a": {"b": {"c": [None]}}},
            {"key": 6, "a": {"b": {"c": [{"x": 9}, {}]}}},
        ]
    expected = [row for record in records for row in flatten_record(record, schema)]
    columns = stripe_records(records, schema)
    leaves = schema.leaf_paths()
    assert list(assemble_rows(columns, schema, leaves)) == expected
    assembled, row_count = assemble_columns(columns, schema, leaves)
    assert row_count == len(expected)
    rebuilt = [{f: assembled[f][i] for f in leaves} for i in range(row_count)]
    assert rebuilt == expected
