"""Tests for the EngineServer serving layer and the multi-client driver."""

from __future__ import annotations

import pytest

from repro import EngineServer, Query, QueryEngine, QueryReport, ReCacheConfig, merge_reports
from repro.engine.expressions import AggregateSpec, FieldRef, RangePredicate
from repro.core.sharded_cache import AtomicCounter
from repro.utils.rng import ZipfianSampler, make_rng
from repro.workloads.runner import ConcurrentWorkloadRunner

from tests.conftest import build_engine


def _flat_query(index: int, low: float, width: float = 30.0) -> Query:
    return Query.select_aggregate(
        "flat",
        RangePredicate("value", low, low + width),
        [AggregateSpec("sum", FieldRef("score")), AggregateSpec("count", FieldRef("id"))],
        label=f"serve-{index}",
    )


def _pool(n: int) -> list[Query]:
    return [_flat_query(i, float((i * 17) % 120)) for i in range(n)]


@pytest.fixture()
def server_engine(dataset_dir):
    config = ReCacheConfig(shard_count=4, max_workers=4, admission_sample_records=50)
    return build_engine(dataset_dir, config)


def test_execute_many_preserves_submission_order(server_engine):
    queries = _pool(10)
    with EngineServer(server_engine) as server:
        reports = server.execute_many(queries, timeout=30.0)
    assert [report.label for report in reports] == [query.label for query in queries]
    assert server_engine.query_count == 10
    # Concurrent results must match a sequential re-execution of the same pool.
    sequential = QueryEngine(ReCacheConfig(caching_enabled=False))
    sequential.catalog = server_engine.catalog
    for query, report in zip(queries, reports):
        assert report.results == sequential.execute(query).results, query.label


def test_server_aggregates_reports(server_engine):
    queries = _pool(6)
    with EngineServer(server_engine) as server:
        aggregate = server.aggregate(queries, label="window", timeout=30.0)
    assert aggregate.label == "window"
    assert aggregate.exact_hits + aggregate.subsumption_hits + aggregate.misses == 6
    assert aggregate.rows_returned == 6  # one aggregate row per query


def test_merge_reports_sums_counters():
    first = QueryReport(rows_returned=2, total_time=0.5, exact_hits=1, misses=0)
    first.admissions["eager"] = 1
    second = QueryReport(rows_returned=3, total_time=0.25, subsumption_hits=1, misses=1)
    second.admissions["lazy"] = 2
    merged = merge_reports([first, second], label="sum")
    assert merged.rows_returned == 5
    assert merged.total_time == pytest.approx(0.75)
    assert merged.cache_hits == 2
    assert merged.misses == 1
    assert merged.admissions == {"eager": 1, "lazy": 2}
    assert merged.results == []


def test_merge_reports_carries_every_report_field():
    """Introspects QueryReport so a new counter cannot silently be dropped.

    ``results`` is intentionally dropped and ``label`` is the aggregate's
    identity; everything else must survive merging — summed, except
    ``queue_depth`` (deepest observed) and ``admissions`` (key-by-key sums,
    including keys the merge code has never heard of).
    """
    import dataclasses

    skipped = {"results", "label", "admissions"}
    first = QueryReport(label="first")
    second = QueryReport(label="second")
    value = 3
    for spec in dataclasses.fields(QueryReport):
        if spec.name in skipped:
            continue
        setattr(first, spec.name, value)
        setattr(second, spec.name, value + 1)
        value += 2
    first.admissions = {"eager": 2, "novel_kind": 5}
    second.admissions = {"eager": 1, "other_novel": 7}

    merged = merge_reports([first, second])
    for spec in dataclasses.fields(QueryReport):
        if spec.name in skipped:
            continue
        expected = (
            max(first.queue_depth, second.queue_depth)
            if spec.name == "queue_depth"
            else getattr(first, spec.name) + getattr(second, spec.name)
        )
        assert getattr(merged, spec.name) == expected, (
            f"merge_reports drops or mis-merges QueryReport.{spec.name}"
        )
    assert merged.admissions == {"eager": 3, "lazy": 0, "novel_kind": 5, "other_novel": 7}
    assert merged.results == []
    assert merged.label == "aggregate"


def test_submit_after_shutdown_raises(server_engine):
    server = EngineServer(server_engine)
    server.shutdown()
    with pytest.raises(RuntimeError):
        server.submit(_flat_query(0, 10.0))


def test_server_rejects_engine_plus_config(server_engine):
    with pytest.raises(ValueError):
        EngineServer(server_engine, config=ReCacheConfig())


def test_concurrent_runner_streams_are_deterministic(dataset_dir):
    """Same seed => same per-client query sequences, independent of timing."""
    labels: list[list[list[str]]] = []
    for _ in range(2):
        engine = build_engine(dataset_dir, ReCacheConfig(shard_count=4))
        with EngineServer(engine, max_workers=4) as server:
            runner = ConcurrentWorkloadRunner(server, clients=3, seed=99)
            result = runner.run(_pool(12), queries_per_client=8, zipf_s=1.2)
        labels.append(
            [[row["label"] for row in client.per_query] for client in result.per_client]
        )
        assert result.total_queries == 24
        assert result.queries_per_second > 0
    assert labels[0] == labels[1]


def test_concurrent_runner_zipf_skews_toward_pool_head(dataset_dir):
    engine = build_engine(dataset_dir, ReCacheConfig(shard_count=2))
    with EngineServer(engine, max_workers=2) as server:
        runner = ConcurrentWorkloadRunner(server, clients=2, seed=5)
        result = runner.run(_pool(10), queries_per_client=40, zipf_s=1.5)
    counts: dict[str, int] = {}
    for client in result.per_client:
        for row in client.per_query:
            counts[row["label"]] = counts.get(row["label"], 0) + 1
    head = counts.get("serve-0", 0)
    tail = counts.get("serve-9", 0)
    assert head > tail  # rank 0 is the hot query


def test_zipfian_sampler_distribution():
    rng = make_rng(3)
    sampler = ZipfianSampler(20, s=1.2)
    draws = [sampler.sample(rng) for _ in range(3000)]
    assert min(draws) >= 0 and max(draws) < 20
    frequency = [draws.count(rank) for rank in range(20)]
    assert frequency[0] > frequency[10] > 0
    uniform = ZipfianSampler(4, s=0.0)
    uniform_draws = [uniform.sample(rng) for _ in range(4000)]
    for rank in range(4):
        assert 800 < uniform_draws.count(rank) < 1200


def test_atomic_counter_under_contention():
    import threading

    counter = AtomicCounter()

    def bump():
        for _ in range(2000):
            counter.add(1)
        for _ in range(1000):
            counter.add(-1)

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 8 * 1000
