"""Cache-core regression tests and multi-threaded stress tests.

Covers the three correctness fixes of the concurrency PR (positional-map
completeness, the guarded admission build, the byte-budget re-check after
eviction) plus thread-safety invariants of :class:`ShardedReCache` under a
mixed hit/miss/evicting workload.
"""

from __future__ import annotations

import threading

import pytest

from repro import Query, QueryEngine, ReCache, ReCacheConfig, ShardedReCache
from repro.core.eviction import EvictionPolicy
from repro.core.sharded_cache import shard_limits
from repro.engine.expressions import AggregateSpec, FieldRef, RangePredicate
from repro.engine.server import EngineServer
from repro.engine.types import FLOAT, INT, Field, RecordType
from repro.formats import write_csv
from repro.formats.csv_plugin import CSVPlugin
from repro.layouts import build_layout

from tests.conftest import build_engine

SMALL_SCHEMA = RecordType([Field("id", INT), Field("value", FLOAT)])


def _write_small_csv(tmp_path, rows=100):
    path = tmp_path / "small.csv"
    write_csv(path, SMALL_SCHEMA, [{"id": i, "value": float(i)} for i in range(rows)])
    return path


# ---------------------------------------------------------------------------
# Regression: PositionalMap completeness
# ---------------------------------------------------------------------------
def test_abandoned_scan_does_not_mark_positional_map_complete(tmp_path):
    plugin = CSVPlugin(_write_small_csv(tmp_path), SMALL_SCHEMA)
    scan = plugin.scan()
    for _ in range(5):  # pull a handful of records, then abandon the generator
        next(scan)
    scan.close()
    assert not plugin.positional_map.complete
    # A partial map must not report a partial record count as the file total.
    assert plugin.record_count() == 100
    assert plugin.positional_map.complete


def test_completed_scan_publishes_complete_map(tmp_path):
    plugin = CSVPlugin(_write_small_csv(tmp_path), SMALL_SCHEMA)
    assert not plugin.positional_map.complete
    rows = list(plugin.scan())
    assert len(rows) == 100
    assert plugin.positional_map.complete
    assert plugin.positional_map.record_count == 100


def test_concurrent_first_scans_build_one_consistent_map(tmp_path):
    plugin = CSVPlugin(_write_small_csv(tmp_path), SMALL_SCHEMA)
    errors: list[Exception] = []

    def scan_all():
        try:
            assert len(list(plugin.scan())) == 100
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=scan_all) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert plugin.positional_map.complete
    assert plugin.positional_map.record_count == 100
    # Offsets must be the single coherent map of one full scan, not an
    # interleaving of several partial builders.
    assert plugin.positional_map.record_offsets == sorted(set(plugin.positional_map.record_offsets))


def test_blank_lines_do_not_shift_lazy_record_ordinals(tmp_path):
    """Map ordinals must match yielded-record ordinals even across blank lines."""
    path = tmp_path / "gaps.csv"
    lines = []
    for i in range(20):
        lines.append(f"{i}|{float(i)}")
        if i == 9:
            lines.append("")  # interior blank line
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    plugin = CSVPlugin(path, SMALL_SCHEMA)
    scanned = list(plugin.scan())
    assert len(scanned) == 20
    assert plugin.positional_map.record_count == 20
    # Records after the blank line must resolve to themselves, not be off by one.
    fetched = list(plugin.read_records(range(20)))
    assert fetched == scanned

    # End-to-end: a lazy cache stores yielded ordinals; reusing it re-reads
    # records through the map and must return the same rows as the raw scan.
    engine = QueryEngine(ReCacheConfig(always_lazy=True, upgrade_lazy_on_reuse=False))
    engine.register_csv("gaps", path, SMALL_SCHEMA)
    query = Query.select_aggregate(
        "gaps",
        RangePredicate("value", 5.0, 15.0),
        [AggregateSpec("sum", FieldRef("value"))],
        label="gaps-q",
    )
    first = engine.execute(query)
    second = engine.execute(query)  # served from the lazy cache
    assert second.cache_hits == 1
    expected = sum(float(i) for i in range(5, 16))
    assert second.results == first.results == [{"sum($value)": expected}]


# ---------------------------------------------------------------------------
# Regression: guarded admission build
# ---------------------------------------------------------------------------
def test_failed_layout_build_skips_admission_cleanly(tmp_path, monkeypatch):
    config = ReCacheConfig(adaptive_admission=False)  # straight to the eager path
    engine = QueryEngine(config)
    engine.register_csv("small", _write_small_csv(tmp_path), SMALL_SCHEMA)

    def broken_build(*args, **kwargs):
        raise ValueError("degenerate result")

    monkeypatch.setattr("repro.engine.executor.build_layout", broken_build)
    query = Query.select_aggregate(
        "small",
        RangePredicate("value", 10.0, 20.0),
        [AggregateSpec("sum", FieldRef("value"))],
        label="broken-admit",
    )
    report = engine.execute(query)  # must not raise
    assert report.rows_returned == 1
    assert engine.cache_stats.admissions_skipped == 1
    assert engine.cache_stats.admissions_eager == 0
    assert len(engine.recache.entries()) == 0


# ---------------------------------------------------------------------------
# Regression: byte budget re-checked after eviction
# ---------------------------------------------------------------------------
class _StubbornPolicy(EvictionPolicy):
    """A broken policy that never frees anything (simulates under-eviction)."""

    name = "stubborn"

    def choose_victims(self, entries, bytes_to_free):
        return []


def _flat_layout(row_count: int):
    rows = [{"id": i, "value": float(i)} for i in range(row_count)]
    return build_layout("columnar", SMALL_SCHEMA, ["id", "value"], rows=rows)


def test_admission_rejected_when_eviction_frees_too_little():
    first = _flat_layout(40)
    limit = first.nbytes + 10
    cache = ReCache(ReCacheConfig(cache_size_limit=limit))
    cache.policy = _StubbornPolicy()

    admitted = cache.admit_eager("s", "csv", RangePredicate("value", 0.0, 1.0), ["id", "value"],
                                 first, operator_time=0.1, caching_time=0.01)
    assert admitted is not None

    second = _flat_layout(40)
    rejected = cache.admit_eager("s", "csv", RangePredicate("value", 2.0, 3.0), ["id", "value"],
                                 second, operator_time=0.1, caching_time=0.01)
    assert rejected is None
    assert cache.stats.admissions_skipped == 1
    assert cache.total_bytes <= limit
    assert cache.total_bytes == sum(entry.nbytes for entry in cache.entries())


def test_lazy_upgrade_declined_when_budget_cannot_absorb_it():
    small = _flat_layout(5)
    cache = ReCache(ReCacheConfig(cache_size_limit=small.nbytes + 100))
    cache.policy = _StubbornPolicy()
    entry = cache.admit_lazy("s", "csv", RangePredicate("value", 0.0, 1.0), ["id", "value"],
                             offsets=list(range(5)), operator_time=0.1, caching_time=0.01)
    assert entry is not None
    huge = _flat_layout(500)
    assert huge.nbytes > cache.config.cache_size_limit
    assert cache.upgrade_lazy(entry, huge, caching_time=0.01) is False
    assert entry.is_lazy
    assert cache.total_bytes <= cache.config.cache_size_limit


# ---------------------------------------------------------------------------
# Sharding: placement, budget split, single-shard equivalence
# ---------------------------------------------------------------------------
def test_shard_limits_split_budget_exactly():
    assert shard_limits(None, 4) == [None, None, None, None]
    limits = shard_limits(1003, 4)
    assert sum(limits) == 1003
    assert max(limits) - min(limits) <= 1


def test_sharded_routes_entries_to_home_shards():
    cache = ShardedReCache(ReCacheConfig(), shard_count=4)
    for i in range(12):
        layout = _flat_layout(3)
        cache.admit_eager("s", "csv", RangePredicate("value", float(i), float(i + 1)),
                          ["id", "value"], layout, operator_time=0.1, caching_time=0.01)
    assert len(cache) == 12
    assert sum(len(shard) for shard in cache.shards) == 12
    for entry in cache.entries():
        assert cache.shard_for(entry.key).get_exact(entry.source, entry.predicate) is entry
    assert cache.total_bytes == sum(e.nbytes for e in cache.entries())


def test_single_shard_sharded_cache_matches_plain_recache(dataset_dir):
    """The same sequential query sequence must produce identical decisions."""
    def deterministic_config():
        return ReCacheConfig(
            cache_size_limit=64 * 1024,
            eviction_policy="lru",
            adaptive_admission=False,
            layout_selection=False,
            admission_sample_records=50,
        )

    plain = build_engine(dataset_dir, deterministic_config())
    sharded_config = deterministic_config()
    sharded = QueryEngine(sharded_config, recache=ShardedReCache(sharded_config, shard_count=1))
    sharded.catalog = plain.catalog  # same files, same parsed sources

    queries = []
    for i in range(30):
        low = float((i * 13) % 80)
        queries.append(
            Query.select_aggregate(
                "flat",
                RangePredicate("value", low, low + 25.0),
                [AggregateSpec("sum", FieldRef("score"))],
                label=f"q{i}",
            )
        )

    for query in queries:
        report_a = plain.execute(query)
        report_b = sharded.execute(query)
        assert report_a.exact_hits == report_b.exact_hits, query.label
        assert report_a.subsumption_hits == report_b.subsumption_hits, query.label
        assert report_a.misses == report_b.misses, query.label
        assert report_a.results == report_b.results, query.label

    stats_a, stats_b = plain.cache_stats, sharded.cache_stats
    for field_name in ("lookups", "exact_hits", "subsumption_hits", "misses",
                       "admissions_eager", "admissions_lazy", "admissions_skipped",
                       "evictions", "evicted_bytes", "layout_switches", "lazy_upgrades"):
        assert getattr(stats_a, field_name) == getattr(stats_b, field_name), field_name
    assert {e.key.as_string() for e in plain.recache.entries()} == {
        e.key.as_string() for e in sharded.recache.entries()
    }
    assert plain.recache.total_bytes == sharded.recache.total_bytes


# ---------------------------------------------------------------------------
# Stress: mixed hit/miss/evicting traffic from many threads
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("shard_count", [1, 4, 8])
def test_sharded_stress_under_mixed_concurrent_traffic(dataset_dir, shard_count):
    config = ReCacheConfig(
        shard_count=shard_count,
        cache_size_limit=48 * 1024,
        admission_sample_records=50,
    )
    engine = build_engine(dataset_dir, config)
    recache = engine.recache
    limit = config.cache_size_limit

    hot = [
        Query.select_aggregate(
            "flat",
            RangePredicate("value", float(i * 10), float(i * 10 + 40)),
            [AggregateSpec("avg", FieldRef("score"))],
            label=f"hot{i}",
        )
        for i in range(4)
    ]

    def cold(client: int, step: int) -> Query:
        low = float((client * 97 + step * 31) % 150)
        return Query.select_aggregate(
            "flat",
            RangePredicate("value", low, low + 7.0),
            [AggregateSpec("max", FieldRef("value"))],
            label=f"cold-{client}-{step}",
        )

    budget_violations: list[int] = []
    errors: list[Exception] = []

    with EngineServer(engine, max_workers=8) as server:

        def client(index: int) -> None:
            try:
                for step in range(25):
                    query = hot[step % len(hot)] if step % 2 == 0 else cold(index, step)
                    server.execute(query)
                    occupancy = recache.total_bytes
                    if occupancy > limit:
                        budget_violations.append(occupancy)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert not errors, errors[:1]
    assert not budget_violations, f"byte budget exceeded: {max(budget_violations)} > {limit}"

    stats = recache.stats
    for field_name in ("lookups", "exact_hits", "subsumption_hits", "misses",
                       "admissions_eager", "admissions_lazy", "admissions_skipped",
                       "evictions", "evicted_bytes", "layout_switches", "lazy_upgrades"):
        assert getattr(stats, field_name) >= 0, field_name
    assert stats.lookups == stats.hits + stats.misses
    assert stats.lookups == 8 * 25

    # No lost or phantom entries: the directory, the byte accounting and the
    # subsumption indexes must agree.
    entries = recache.entries()
    assert len(recache) == len(entries)
    assert recache.total_bytes == sum(entry.nbytes for entry in entries)
    assert recache.total_bytes <= limit
    for entry in entries:
        assert recache.get_exact(entry.source, entry.predicate) is entry
