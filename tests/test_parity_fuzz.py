"""Differential parity fuzzing: batched pipeline vs row interpreter.

Seeded random queries — range/comparison/arithmetic predicates (strings,
division, null-heavy columns included), varying projections, equi-joins and
grouped aggregates — run against engines pinned to each of the three cache
layouts, once with ``vectorized_execution`` on and once with it off, asserting
identical results, per-query report counters and end-state cache counters.
Every seeded query additionally runs with ``result_format="columnar"`` on a
third identically-configured engine, asserting that ``to_rows()`` reproduces
the row output bit for bit, and a join-heavy class stresses the factorized
hash-join probe (numeric and string keys, null keys, rows-heavy plain-select
joins) the same three-way way.

A nested-heavy class drives the nested-predicate vectorizer specifically:
every seeded predicate references a striped leaf path (closed ranges,
exists-style whole-domain ranges, equality and validity-masked ``!=``), on
all three layouts.

The default (CI) run executes a fixed-seed subset of ``PARITY_FUZZ_QUERIES``
queries per layout (100 x 3 = 300 total for the main class, above the
>= 200-query acceptance bar) plus ``PARITY_FUZZ_JOIN_QUERIES`` join-heavy
queries per flat layout and ``PARITY_FUZZ_NESTED_QUERIES`` nested-heavy
queries per layout (100 x 3 = 300); set the ``RECACHE_PARITY_FUZZ_QUERIES``
/ ``RECACHE_PARITY_FUZZ_JOIN_QUERIES`` /
``RECACHE_PARITY_FUZZ_NESTED_QUERIES`` environment variables to fuzz harder
in a nightly/full run (only those runs should raise the counts — CI stays
at the defaults).
"""

from __future__ import annotations

import os
import random

import pytest

from repro import ColumnarResult, Query, QueryEngine, ReCacheConfig
from repro.engine.expressions import (
    AggregateSpec,
    And,
    Arithmetic,
    Comparison,
    FieldRef,
    Literal,
    Not,
    Or,
    RangePredicate,
)
from repro.engine.query import JoinSpec, TableRef
from repro.engine.types import FLOAT, INT, STRING, Field, RecordType
from repro.formats import write_csv, write_json_lines
from repro.workloads.nested import synthetic_order_lineitems
from repro.workloads.tpch import ORDER_LINEITEMS_SCHEMA
from tests.test_batch_execution import _cache_counters, _canonical, _report_counters

PARITY_FUZZ_QUERIES = int(os.environ.get("RECACHE_PARITY_FUZZ_QUERIES", "100"))
PARITY_FUZZ_JOIN_QUERIES = int(
    os.environ.get("RECACHE_PARITY_FUZZ_JOIN_QUERIES", str(max(10, PARITY_FUZZ_QUERIES // 2)))
)
PARITY_FUZZ_NESTED_QUERIES = int(
    os.environ.get("RECACHE_PARITY_FUZZ_NESTED_QUERIES", str(PARITY_FUZZ_QUERIES))
)
FUZZ_SEED = 20260729

EVENTS_SCHEMA = RecordType(
    [
        Field("id", INT),
        Field("value", FLOAT),
        Field("score", FLOAT),  # null-heavy
        Field("ratio", FLOAT),  # never zero nor null: safe division operand
        Field("bucket", INT),
        Field("name", STRING),  # occasionally null
    ]
)
DIMS_SCHEMA = RecordType(
    [Field("key", INT), Field("label", STRING), Field("weight", FLOAT)]
)

EVENT_RANGES = {"id": (0.0, 400.0), "value": (-50.0, 50.0), "score": (0.0, 10.0),
                "ratio": (0.5, 2.0), "bucket": (0.0, 8.0)}
ORDER_RANGES = {
    "o_orderkey": (1.0, 120.0),
    "o_custkey": (1.0, 2000.0),
    "o_totalprice": (900.0, 500000.0),
    "o_orderdate": (8000.0, 10600.0),
    "o_shippriority": (0.0, 1.0),
    "lineitems.l_quantity": (1.0, 50.0),
    "lineitems.l_extendedprice": (900.0, 105000.0),
    "lineitems.l_suppkey": (1.0, 1000.0),
}
NAMES = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


def _event_rows(count: int, rng: random.Random) -> list[dict]:
    rows = []
    for i in range(count):
        rows.append(
            {
                "id": i,
                "value": round(rng.uniform(-50.0, 50.0), 3),
                "score": None if rng.random() < 0.4 else round(rng.uniform(0.0, 10.0), 2),
                "ratio": round(rng.uniform(0.5, 2.0), 3),
                "bucket": rng.randint(0, 8),
                "name": None if rng.random() < 0.15 else rng.choice(NAMES),
            }
        )
    return rows


def _dim_rows(rng: random.Random) -> list[dict]:
    return [
        {"key": key, "label": rng.choice(NAMES), "weight": round(rng.uniform(0.0, 5.0), 3)}
        for key in range(9)
        for _ in range(rng.randint(1, 3))
    ]


@pytest.fixture(scope="module")
def fuzz_dataset_dir(tmp_path_factory):
    rng = random.Random(FUZZ_SEED)
    directory = tmp_path_factory.mktemp("parity-fuzz")
    write_csv(directory / "events.csv", EVENTS_SCHEMA, _event_rows(400, rng))
    write_csv(directory / "dims.csv", DIMS_SCHEMA, _dim_rows(rng))
    write_json_lines(directory / "orders.json", synthetic_order_lineitems(120, seed=FUZZ_SEED))
    return directory


LAYOUT_CONFIGS = {
    "row": {"default_flat_layout": "row", "default_nested_layout": "columnar"},
    "columnar": {"default_flat_layout": "columnar", "default_nested_layout": "columnar"},
    "parquet": {"default_flat_layout": "columnar", "default_nested_layout": "parquet"},
}


def _build_engine(directory, vectorized: bool, layout_overrides: dict) -> QueryEngine:
    config = ReCacheConfig(
        vectorized_execution=vectorized,
        adaptive_admission=False,  # deterministic eager admission
        layout_selection=False,  # keep the pinned layout throughout
        admission_sample_records=40,
        **layout_overrides,
    )
    engine = QueryEngine(config)
    engine.register_csv("events", directory / "events.csv", EVENTS_SCHEMA)
    engine.register_csv("dims", directory / "dims.csv", DIMS_SCHEMA)
    engine.register_json("orders", directory / "orders.json", ORDER_LINEITEMS_SCHEMA)
    return engine


# ---------------------------------------------------------------------------
# Random query generation
# ---------------------------------------------------------------------------
def _random_range(rng: random.Random, field: str, ranges: dict) -> RangePredicate:
    low, high = ranges[field]
    a, b = rng.uniform(low, high), rng.uniform(low, high)
    if a > b:
        a, b = b, a
    return RangePredicate(field, round(a, 3), round(b, 3))


def _random_leaf(rng: random.Random, ranges: dict, string_fields: list[str]):
    kind = rng.random()
    numeric = rng.choice(sorted(ranges))
    low, high = ranges[numeric]
    if kind < 0.45:
        return _random_range(rng, numeric, ranges)
    if kind < 0.65:
        op = rng.choice(["<", "<=", ">", ">=", "=="])
        return Comparison(op, FieldRef(numeric), Literal(round(rng.uniform(low, high), 2)))
    if kind < 0.8 and string_fields:
        field = rng.choice(string_fields)
        op = rng.choice(["==", "<", ">", "<="])
        return Comparison(op, FieldRef(field), Literal(rng.choice(NAMES)))
    if kind < 0.9:
        # Division: always takes the compiled per-row fallback in the batched
        # pipeline (NumPy would silently change ZeroDivisionError semantics).
        divisor = Literal(rng.choice([2.0, 3.0, 7.5])) if rng.random() < 0.5 else FieldRef("ratio")
        if "ratio" not in ranges and not isinstance(divisor, Literal):
            divisor = Literal(3.0)
        expr = Arithmetic("/", FieldRef(numeric), divisor)
        return Comparison(rng.choice(["<", ">="]), expr, Literal(round(rng.uniform(low, high) / 2, 2)))
    other = rng.choice(sorted(ranges))
    expr = Arithmetic(rng.choice(["+", "-", "*"]), FieldRef(numeric), FieldRef(other))
    return Comparison(rng.choice(["<", ">"]), expr, Literal(round(rng.uniform(low * 2, high * 2), 2)))


def _random_predicate(rng: random.Random, ranges: dict, string_fields: list[str]):
    roll = rng.random()
    if roll < 0.35:
        return _random_leaf(rng, ranges, string_fields)
    if roll < 0.6:
        return And([_random_leaf(rng, ranges, string_fields) for _ in range(2)])
    if roll < 0.8:
        return Or([_random_leaf(rng, ranges, string_fields) for _ in range(2)])
    if roll < 0.9:
        return Not(_random_leaf(rng, ranges, string_fields))
    return And([_random_range(rng, rng.choice(sorted(ranges)), ranges),
                Or([_random_leaf(rng, ranges, string_fields) for _ in range(2)])])


def _random_aggregates(rng: random.Random, numeric_fields: list[str], string_fields: list[str]):
    aggregates = []
    for _ in range(rng.randint(1, 3)):
        roll = rng.random()
        if roll < 0.15 and string_fields:
            aggregates.append(
                AggregateSpec(rng.choice(["min", "max", "count"]), FieldRef(rng.choice(string_fields)))
            )
        else:
            func = rng.choice(["sum", "avg", "count", "min", "max"])
            aggregates.append(AggregateSpec(func, FieldRef(rng.choice(numeric_fields))))
    return aggregates


def _random_query(rng: random.Random, index: int) -> Query:
    roll = rng.random()
    if roll < 0.45:  # flat CSV (null-heavy + strings + division)
        predicate = _random_predicate(rng, EVENT_RANGES, ["name"])
        numeric = sorted(EVENT_RANGES)
        if rng.random() < 0.2:  # plain select-project, no aggregation
            return Query(tables=[TableRef("events", predicate)], label=f"fuzz-select-{index}")
        group_by = []
        if rng.random() < 0.45:
            group_by = rng.sample(["bucket", "name"], rng.randint(1, 2))
        return Query(
            tables=[TableRef("events", predicate)],
            aggregates=_random_aggregates(rng, numeric, ["name"]),
            group_by=group_by,
            label=f"fuzz-events-{index}",
        )
    if roll < 0.75:  # nested JSON: mixes flat-only and nested-touching queries
        flat_only = rng.random() < 0.5
        ranges = {k: v for k, v in ORDER_RANGES.items() if flat_only is False or "." not in k}
        predicate = _random_predicate(rng, ranges, [])
        numeric = sorted(ranges)
        group_by = [rng.choice(["o_shippriority", "o_orderdate"])] if rng.random() < 0.4 else []
        return Query(
            tables=[TableRef("orders", predicate)],
            aggregates=_random_aggregates(rng, numeric, []),
            group_by=group_by,
            label=f"fuzz-orders-{index}",
        )
    # equi-join events.bucket = dims.key with per-table predicates
    left = _random_predicate(rng, EVENT_RANGES, ["name"]) if rng.random() < 0.8 else None
    right = _random_range(rng, "weight", {"weight": (0.0, 5.0)}) if rng.random() < 0.6 else None
    aggregates = _random_aggregates(rng, ["value", "id", "weight"], ["label"])
    group_by = ["bucket"] if rng.random() < 0.3 else []
    return Query(
        tables=[TableRef("events", left), TableRef("dims", right)],
        joins=[JoinSpec("events", "bucket", "dims", "key")],
        aggregates=aggregates,
        group_by=group_by,
        label=f"fuzz-join-{index}",
    )


NESTED_ORDER_FIELDS = sorted(k for k in ORDER_RANGES if "." in k)
FLAT_ORDER_FIELDS = sorted(k for k in ORDER_RANGES if "." not in k)


def _random_nested_leaf(rng: random.Random):
    """A predicate leaf over a nested (striped) path of the orders table."""
    field = rng.choice(NESTED_ORDER_FIELDS)
    low, high = ORDER_RANGES[field]
    roll = rng.random()
    if roll < 0.35:  # closed range — the striped range-filter fast path
        return _random_range(rng, field, ORDER_RANGES)
    if roll < 0.5:
        # Exists-style: a range covering the whole domain, true exactly for
        # records with at least one non-NULL entry on the path.
        return RangePredicate(field, low - 1.0, high + 1.0)
    if roll < 0.7:
        op = rng.choice(["<", "<=", ">", ">="])
        return Comparison(op, FieldRef(field), Literal(round(rng.uniform(low, high), 2)))
    # Integer-valued literals so equality (and its validity-masked negation)
    # actually hits entries instead of always missing on float dust.
    literal = Literal(float(int(rng.uniform(low, high))))
    return Comparison(rng.choice(["==", "!="]), FieldRef(field), literal)


def _random_nested_query(rng: random.Random, index: int) -> Query:
    """A nested-heavy orders query: every predicate touches a striped path.

    Stresses the nested-predicate vectorizer end to end — entry-granular
    masks over striped value/definition arrays, the ``reduceat`` entry->record
    reduction, validity-masked ``!=``, and the mixed nested+flat conjunctions
    that must agree with the per-row interpreter on every layout.
    """
    roll = rng.random()
    if roll < 0.4:
        predicate = _random_nested_leaf(rng)
    elif roll < 0.6:  # nested AND nested-or-flat
        other = (
            _random_nested_leaf(rng)
            if rng.random() < 0.5
            else _random_range(rng, rng.choice(FLAT_ORDER_FIELDS), ORDER_RANGES)
        )
        predicate = And([_random_nested_leaf(rng), other])
    elif roll < 0.8:
        other = (
            _random_nested_leaf(rng)
            if rng.random() < 0.5
            else _random_range(rng, rng.choice(FLAT_ORDER_FIELDS), ORDER_RANGES)
        )
        predicate = Or([_random_nested_leaf(rng), other])
    else:
        predicate = Not(_random_nested_leaf(rng))
    if rng.random() < 0.25:  # plain select-project over flattened rows
        return Query(tables=[TableRef("orders", predicate)], label=f"fuzz-nested-select-{index}")
    numeric = NESTED_ORDER_FIELDS + FLAT_ORDER_FIELDS
    group_by = [rng.choice(["o_shippriority", "o_orderdate"])] if rng.random() < 0.35 else []
    return Query(
        tables=[TableRef("orders", predicate)],
        aggregates=_random_aggregates(rng, numeric, []),
        group_by=group_by,
        label=f"fuzz-nested-{index}",
    )


def _random_join_query(rng: random.Random, index: int) -> Query:
    """A join-heavy query: every query joins ``events`` with ``dims``.

    Exercises both probe paths of the factorized hash join — the numeric
    ``bucket = key`` equi-join (searchsorted probe) and the nullable string
    ``name = label`` equi-join (dict-pass probe) — plus rows-heavy plain
    select-project joins where the whole merged row set reaches the pipeline
    exit (the columnar-result sweet spot).
    """
    left = _random_predicate(rng, EVENT_RANGES, ["name"]) if rng.random() < 0.8 else None
    right = _random_range(rng, "weight", {"weight": (0.0, 5.0)}) if rng.random() < 0.5 else None
    if rng.random() < 0.3:
        # String keys: ~15% of events have a null name, every label is set.
        join = JoinSpec("events", "name", "dims", "label")
    else:
        join = JoinSpec("events", "bucket", "dims", "key")
    tables = [TableRef("events", left), TableRef("dims", right)]
    if rng.random() < 0.4:  # plain select-project join, no aggregation
        return Query(tables=tables, joins=[join], label=f"fuzz-join-select-{index}")
    aggregates = _random_aggregates(rng, ["value", "id", "weight"], ["label", "name"])
    group_by = []
    if rng.random() < 0.35:
        group_by = [rng.choice(["bucket", "label"])]
    return Query(
        tables=tables,
        joins=[join],
        aggregates=aggregates,
        group_by=group_by,
        label=f"fuzz-join-heavy-{index}",
    )


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------
def _layout_seed_offset(layout: str) -> int:
    """A deterministic per-layout seed offset (``hash()`` is randomized)."""
    return sorted(LAYOUT_CONFIGS).index(layout) + 1


def _run_three_way_parity(fuzz_dataset_dir, layout, make_query, count, seed_offset=0):
    """The shared three-engine differential loop.

    ``batched`` vs ``interpreted`` is the classic pipeline parity check;
    ``columnar`` is a third identically-configured batched engine whose every
    query runs with ``result_format="columnar"`` and must reproduce the
    batched row output bit for bit via ``to_rows()`` while reporting the same
    counters — proving the exit format changes the representation only.
    """
    rng = random.Random(FUZZ_SEED + _layout_seed_offset(layout) + seed_offset)
    batched = _build_engine(fuzz_dataset_dir, True, LAYOUT_CONFIGS[layout])
    interpreted = _build_engine(fuzz_dataset_dir, False, LAYOUT_CONFIGS[layout])
    columnar = _build_engine(fuzz_dataset_dir, True, LAYOUT_CONFIGS[layout])
    for index in range(count):
        query = make_query(rng, index)
        batched_report = batched.execute(query)
        interpreted_report = interpreted.execute(query)
        columnar_report = columnar.execute(query, result_format="columnar")
        assert _canonical(batched_report.results) == _canonical(interpreted_report.results), (
            f"[{layout}] result mismatch on query #{index} ({query.label}): "
            f"{query.signature()}"
        )
        assert _report_counters(batched_report) == _report_counters(interpreted_report), (
            f"[{layout}] report mismatch on query #{index} ({query.label})"
        )
        assert isinstance(columnar_report.results, ColumnarResult), query.label
        assert columnar_report.results.to_rows() == batched_report.results, (
            f"[{layout}] columnar-result mismatch on query #{index} ({query.label}): "
            f"{query.signature()}"
        )
        assert _report_counters(columnar_report) == _report_counters(batched_report), (
            f"[{layout}] columnar report mismatch on query #{index} ({query.label})"
        )
    assert _cache_counters(batched) == _cache_counters(interpreted)
    assert _cache_counters(columnar) == _cache_counters(batched)


@pytest.mark.parametrize("layout", sorted(LAYOUT_CONFIGS))
def test_parity_fuzz(fuzz_dataset_dir, layout):
    """Batched, interpreted and columnar-result execution agree on a seeded
    random workload."""
    _run_three_way_parity(fuzz_dataset_dir, layout, _random_query, PARITY_FUZZ_QUERIES)


@pytest.mark.parametrize("layout", ["columnar", "row"])
def test_parity_fuzz_join_heavy(fuzz_dataset_dir, layout):
    """The factorized hash-join probe agrees with the interpreted join (and
    its columnar exit with the rows exit) on a join-only seeded workload.

    Joins here run between the two flat CSV sources, so the flat layouts are
    the interesting axis (the nested default never participates).
    """
    _run_three_way_parity(
        fuzz_dataset_dir,
        layout,
        _random_join_query,
        PARITY_FUZZ_JOIN_QUERIES,
        seed_offset=101,
    )


@pytest.mark.parametrize("layout", sorted(LAYOUT_CONFIGS))
def test_parity_fuzz_nested_heavy(fuzz_dataset_dir, layout):
    """The nested-predicate vectorizer agrees with the per-row interpreter
    (and its columnar exit with the rows exit) on a nested-only workload.

    Every seeded predicate references a striped leaf path, so every layout
    exercises its nested plan: the parquet striped-view fast path and
    entry-granular range filter, the columnar flattened scan, and the row
    layout's bridge — ``PARITY_FUZZ_NESTED_QUERIES`` queries per layout.
    """
    _run_three_way_parity(
        fuzz_dataset_dir,
        layout,
        _random_nested_query,
        PARITY_FUZZ_NESTED_QUERIES,
        seed_offset=202,
    )


def test_nested_fuzz_workload_exercises_the_vectorizer_paths():
    """The nested-heavy seed hits every vectorizer shape it exists for."""
    rng = random.Random(FUZZ_SEED + _layout_seed_offset("parquet") + 202)
    queries = [_random_nested_query(rng, i) for i in range(PARITY_FUZZ_NESTED_QUERIES)]

    def leaves(predicate):
        stack, out = [predicate], []
        while stack:
            node = stack.pop()
            children = list(getattr(node, "children", ()))
            child = getattr(node, "child", None)
            if child is not None:
                children.append(child)
            if children:
                stack.extend(children)
            else:
                out.append(node)
        return out

    all_leaves = [
        leaf
        for query in queries
        for table in query.tables
        if table.predicate is not None
        for leaf in leaves(table.predicate)
    ]
    assert all(
        any("." in f for f in query.tables[0].predicate.referenced_fields())
        for query in queries
    ), "a nested-heavy query without a nested path"
    closed = [
        leaf
        for leaf in all_leaves
        if isinstance(leaf, RangePredicate) and "." in leaf.field
    ]
    assert closed, "no nested range predicate"
    assert any(
        leaf.low <= ORDER_RANGES[leaf.field][0] and leaf.high >= ORDER_RANGES[leaf.field][1]
        for leaf in closed
    ), "no exists-style whole-domain range"
    ops = {
        leaf.op
        for leaf in all_leaves
        if isinstance(leaf, Comparison)
        and any("." in f for f in leaf.referenced_fields())
    }
    assert "==" in ops, "no nested equality"
    assert "!=" in ops, "no nested inequality (validity-masked vectorization)"
    assert any(
        isinstance(query.tables[0].predicate, And)
        and any("." not in f for f in query.tables[0].predicate.referenced_fields())
        for query in queries
    ), "no mixed nested+flat conjunction"
    assert any(not query.aggregates for query in queries), "no plain nested select"
    assert any(query.group_by for query in queries), "no grouped nested aggregate"


def test_fuzz_workload_exercises_the_interesting_shapes(fuzz_dataset_dir):
    """The fixed seed actually generates the shapes the harness exists for."""
    rng = random.Random(FUZZ_SEED + _layout_seed_offset("parquet"))
    queries = [_random_query(rng, index) for index in range(PARITY_FUZZ_QUERIES)]

    def predicates():
        for query in queries:
            for table in query.tables:
                if table.predicate is not None:
                    yield query, table.predicate

    def walk(expr):
        yield expr
        for attr in ("children",):
            for child in getattr(expr, attr, ()):
                yield from walk(child)
        for attr in ("child", "left", "right"):
            child = getattr(expr, attr, None)
            if child is not None and not isinstance(child, str):
                yield from walk(child)

    nodes = [node for _, predicate in predicates() for node in walk(predicate)]
    assert any(isinstance(n, Arithmetic) and n.op == "/" for n in nodes), "no division predicate"
    assert any(
        isinstance(n, Comparison)
        and any(isinstance(side, Literal) and isinstance(side.value, str) for side in (n.left, n.right))
        for n in nodes
    ), "no string comparison"
    assert any(isinstance(n, FieldRef) and n.path == "score" for n in nodes), "no null-heavy column"
    assert any(query.group_by for query in queries), "no grouped aggregates"
    assert any(query.joins for query in queries), "no joins"
    assert any(not query.aggregates for query in queries), "no plain select-project queries"
    assert any("." in field for query in queries for field in _query_fields(query)), (
        "no nested-attribute query"
    )


def test_join_fuzz_workload_exercises_both_probe_paths():
    """The join-heavy seed hits the searchsorted AND dict probe paths."""
    rng = random.Random(FUZZ_SEED + _layout_seed_offset("columnar") + 101)
    queries = [_random_join_query(rng, index) for index in range(PARITY_FUZZ_JOIN_QUERIES)]
    key_pairs = {(q.joins[0].left_key, q.joins[0].right_key) for q in queries}
    assert ("bucket", "key") in key_pairs, "no numeric-key join (vectorized probe)"
    assert ("name", "label") in key_pairs, "no string-key join (dict probe, null keys)"
    assert any(not query.aggregates for query in queries), "no rows-heavy select join"
    assert any(query.group_by for query in queries), "no grouped join aggregate"
    assert any(query.tables[0].predicate is None for query in queries), "no full-scan side"


def _query_fields(query: Query) -> set[str]:
    fields: set[str] = set(query.group_by)
    for table in query.tables:
        if table.predicate is not None:
            fields |= table.predicate.referenced_fields()
    for aggregate in query.aggregates:
        fields |= aggregate.expr.referenced_fields()
    return fields
