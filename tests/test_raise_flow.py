"""Call-graph and raise-flow edge cases: recursion, methods, dispatch, opacity.

Each test writes a miniature project into ``tmp_path``, parses it through
the same :class:`Module`/:func:`collect_classes` pipeline the linter uses,
and checks the graph/analysis behaviour directly — the corpus self-test in
``test_recheck_lint.py`` covers the end-to-end exact-line behaviour.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import hotpath, raises
from repro.analysis.callgraph import build_call_graph, parse_may_raise
from repro.analysis.common import Module, collect_classes


def project(tmp_path: Path, **files: str):
    modules = []
    for name, source in files.items():
        path = tmp_path / f"{name}.py"
        path.write_text(textwrap.dedent(source))
        modules.append(Module.parse(path))
    classes = collect_classes(modules)
    return modules, classes, build_call_graph(modules, classes)


# Indented to match the test-body literals so the combined source dedents
# to a flush module (a mismatch would nest the code inside the last class).
TAXONOMY = """
        class ReCacheError(Exception):
            pass

        class TransientScanError(ReCacheError):
            pass
"""


def escapes_by_display(modules, classes, graph):
    taxonomy = raises.error_taxonomy(classes)
    escapes = raises.compute_escapes(graph, taxonomy)
    return {graph.functions[fid].display: set(names) for fid, names in escapes.items()}


def test_recursive_call_chain_converges(tmp_path):
    modules, classes, graph = project(
        tmp_path,
        rec=TAXONOMY
        + """
        def ping(n):
            if n <= 0:
                raise TransientScanError("bottom")
            return pong(n - 1)

        def pong(n):
            return ping(n - 1)

        def entry(n):
            return ping(n)
        """,
    )
    escapes = escapes_by_display(modules, classes, graph)
    # The mutual recursion reaches a fixed point and propagates to the root.
    assert escapes["ping"] == {"TransientScanError"}
    assert escapes["pong"] == {"TransientScanError"}
    assert escapes["entry"] == {"TransientScanError"}


def test_method_resolution_through_base_chain(tmp_path):
    modules, classes, graph = project(
        tmp_path,
        meth=TAXONOMY
        + """
        class Base:
            def scan(self):
                raise TransientScanError("base impl")

        class Child(Base):
            def run(self):
                return self.scan()

        def drive(child):
            return Child().run()
        """,
    )
    (base_scan,) = graph.by_display("Base.scan")
    (child_run,) = graph.by_display("Child.run")
    # self.scan() on Child resolves through the inherited Base.scan.
    assert graph.resolve_method("Child", "scan") == base_scan
    assert base_scan in graph.edges[child_run]
    escapes = escapes_by_display(modules, classes, graph)
    assert escapes["Child.run"] == {"TransientScanError"}
    assert escapes["drive"] == {"TransientScanError"}


def test_dynamic_call_annotation_adds_dispatch_edges(tmp_path):
    modules, classes, graph = project(
        tmp_path,
        disp=TAXONOMY
        + """
        def handler_a(entry):
            raise TransientScanError("a")

        def handler_b(entry):
            return entry

        def dispatch(table, entry):
            fn = table[entry.kind]
            return fn(entry)  # dynamic-call: handler_a, handler_b
        """,
    )
    (dispatch,) = graph.by_display("dispatch")
    targets = {graph.functions[fid].display for fid in graph.edges[dispatch]}
    assert targets == {"handler_a", "handler_b"}
    escapes = escapes_by_display(modules, classes, graph)
    assert escapes["dispatch"] == {"TransientScanError"}
    # The annotated site is not an opaque hole: no warning for it.
    assert graph.warnings == []


def test_unresolvable_call_degrades_to_warning_not_silence(tmp_path):
    modules, classes, graph = project(
        tmp_path,
        opaque=TAXONOMY
        + """
        def run(callback, entry):
            return callback(entry)
        """,
    )
    assert len(graph.warnings) == 1
    assert "callback() is statically opaque" in graph.warnings[0]
    # Opaque calls contribute nothing to the escape sets (no false negative
    # hidden silently — the warning is the audit trail)...
    escapes = escapes_by_display(modules, classes, graph)
    assert escapes["run"] == set()
    # ...and never produce a violation by themselves.
    assert raises.check(modules, classes, graph) == []


def test_unknown_dynamic_call_target_warns(tmp_path):
    modules, classes, graph = project(
        tmp_path,
        typo="""
        def run(callback, entry):
            return callback(entry)  # dynamic-call: no_such_function
        """,
    )
    assert any("matches no project function" in w for w in graph.warnings)


def test_may_raise_seeds_escape_sets(tmp_path):
    assert parse_may_raise("# may-raise: A, B") == frozenset({"A", "B"})
    assert parse_may_raise("# plain comment") == frozenset()
    modules, classes, graph = project(
        tmp_path,
        seeded=TAXONOMY
        + """
        def poll(client):
            return client.fetch()  # may-raise: TransientScanError
        """,
    )
    escapes = escapes_by_display(modules, classes, graph)
    assert escapes["poll"] == {"TransientScanError"}


def test_module_contract_violation_and_handler_narrowing(tmp_path):
    modules, classes, graph = project(
        tmp_path,
        contract=TAXONOMY
        + """
        RECHECK_RAISE_CONTRACTS = {"leaky": [], "contained": []}

        def scan_entry(entry):
            raise TransientScanError("bad read")

        def leaky(entry):
            return scan_entry(entry)

        def contained(entry):
            try:
                return scan_entry(entry)
            except TransientScanError:
                return None
        """,
    )
    violations = raises.check(modules, classes, graph)
    assert [(v.rule, v.line) for v in violations] == [("raise-flow", 13)]
    assert "leaky may raise TransientScanError" in violations[0].message


def test_caller_settles_splits_leak_ownership(tmp_path):
    modules, classes, graph = project(
        tmp_path,
        budget=TAXONOMY
        + """
        class Pool:
            def _settle_reservation(self):
                self._reservation = 0

            def probe(self, entry):
                raise TransientScanError("probe")

            def reserve(self, entry):  # caller-settles: reservation
                self._reservation = entry.nbytes

            def good_caller(self, entry):
                self.reserve(entry)
                try:
                    self.probe(entry)
                finally:
                    self._settle_reservation()

            def bad_caller(self, entry):
                self.reserve(entry)
                self.probe(entry)
                self._settle_reservation()
        """,
    )
    violations = raises.check(modules, classes, graph)
    leaks = [v for v in violations if v.rule == "reservation-leak"]
    # Only bad_caller leaks: reserve() itself is exempt (split ownership),
    # and good_caller settles on the exception edge.
    assert len(leaks) == 1
    assert "Pool.bad_caller" in leaks[0].message
    assert "call to Pool.probe() may raise" in leaks[0].message


def test_hotpath_reachability_prunes_fallback_subtrees(tmp_path):
    modules, classes, graph = project(
        tmp_path,
        hot="""
        RECHECK_HOTPATH_ROOTS = ["root"]

        def root(batches):
            return audited(batches) + helper(batches)

        def audited(batches):  # rowwise-fallback: audited exit
            return only_via_audited(batches)

        def only_via_audited(batches):
            return sum(len(b.to_rows()) for b in batches)

        def helper(batches):
            return len(batches)

        def unreachable(batches):
            return [b.to_rows() for b in batches]
        """,
    )
    origin = hotpath.reachable_functions(graph, modules)
    displays = {graph.functions[fid].display for fid in origin}
    # The pruned audited() hides itself and its exclusive callee; the
    # unreachable row-walker never enters the walk at all.
    assert displays == {"root", "helper"}
    assert hotpath.check(modules, classes, graph) == []
