"""Unit tests for the nested data model (schemas, paths, flattening)."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    Field,
    ListType,
    RecordType,
    atom_from_code,
    flatten_record,
)

NESTED = RecordType(
    [
        Field("a", INT),
        Field("b", FLOAT),
        Field("sub", RecordType([Field("x", INT), Field("y", STRING)])),
        Field("items", ListType(RecordType([Field("q", INT), Field("p", FLOAT)]))),
        Field("tags", ListType(INT)),
    ]
)


class TestSchemaPaths:
    def test_leaf_paths_in_schema_order(self):
        assert NESTED.leaf_paths() == ["a", "b", "sub.x", "sub.y", "items.q", "items.p", "tags"]

    def test_path_type_resolution(self):
        assert NESTED.path_type("items.p") == FLOAT
        assert NESTED.path_type("sub.y") == STRING
        assert NESTED.path_type("a") == INT

    def test_unknown_path_raises(self):
        with pytest.raises(KeyError):
            NESTED.path_type("missing.field")

    def test_nested_path_detection(self):
        assert NESTED.is_nested_path("items.q")
        assert NESTED.is_nested_path("tags")
        assert not NESTED.is_nested_path("sub.x")
        assert not NESTED.is_nested_path("a")

    def test_nested_and_non_nested_partitions(self):
        assert set(NESTED.nested_paths()) == {"items.q", "items.p", "tags"}
        assert set(NESTED.non_nested_paths()) == {"a", "b", "sub.x", "sub.y"}

    def test_flattened_schema_is_flat(self):
        flat = NESTED.flattened()
        assert flat.is_flat()
        assert flat.field_names() == NESTED.leaf_paths()

    def test_list_fields(self):
        assert NESTED.list_fields() == ["items", "tags"]

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError):
            RecordType([Field("a", INT), Field("a", FLOAT)])

    def test_atom_from_code(self):
        assert atom_from_code("i") is INT
        assert atom_from_code("b") is BOOL
        with pytest.raises(ValueError):
            atom_from_code("z")

    def test_type_equality_via_signature(self):
        other = RecordType([Field("a", INT), Field("b", FLOAT)])
        same = RecordType([Field("a", INT), Field("b", FLOAT)])
        assert other == same
        assert hash(other) == hash(same)
        assert other != NESTED


class TestFlattenRecord:
    def test_paper_example(self):
        # The flattening example of Section 4: {"a":1,"b":4,"c":[4,6,9]}
        schema = RecordType([Field("a", INT), Field("b", INT), Field("c", ListType(INT))])
        rows = flatten_record({"a": 1, "b": 4, "c": [4, 6, 9]}, schema)
        assert rows == [
            {"a": 1, "b": 4, "c": 4},
            {"a": 1, "b": 4, "c": 6},
            {"a": 1, "b": 4, "c": 9},
        ]

    def test_empty_list_contributes_single_row(self):
        record = {"a": 1, "b": 2.0, "sub": {"x": 3, "y": "s"}, "items": [], "tags": []}
        rows = flatten_record(record, NESTED)
        assert len(rows) == 1
        assert rows[0]["items.q"] is None
        assert rows[0]["tags"] is None
        assert rows[0]["sub.x"] == 3

    def test_cross_product_of_independent_lists(self):
        record = {
            "a": 1,
            "b": 2.0,
            "sub": {"x": 1, "y": "s"},
            "items": [{"q": 1, "p": 0.5}, {"q": 2, "p": 1.5}],
            "tags": [7, 8, 9],
        }
        rows = flatten_record(record, NESTED)
        assert len(rows) == 6
        assert {(r["items.q"], r["tags"]) for r in rows} == {
            (q, t) for q in (1, 2) for t in (7, 8, 9)
        }
        assert all(row["a"] == 1 for row in rows)

    def test_missing_fields_become_none(self):
        rows = flatten_record({"a": 5}, NESTED)
        assert rows[0]["b"] is None
        assert rows[0]["sub.y"] is None

    @given(
        st.lists(
            st.fixed_dictionaries({"q": st.integers(), "p": st.floats(allow_nan=False)}),
            max_size=5,
        ),
        st.integers(),
    )
    def test_row_count_matches_list_length(self, items, a):
        record = {"a": a, "b": 1.0, "sub": {"x": 0, "y": ""}, "items": items, "tags": [1]}
        rows = flatten_record(record, NESTED)
        assert len(rows) == max(1, len(items))
        assert all(row["a"] == a for row in rows)
