"""Unit tests for the runtime lock-order watchdog (tsan-lite)."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.lock_watchdog import (
    LockOrderError,
    LockWatchdog,
    label_locks,
    watch,
)


def test_inversion_is_recorded_with_both_sites():
    low = watch(threading.Lock(), label="low", rank=1)
    high = watch(threading.Lock(), label="high", rank=2)
    with LockWatchdog() as watchdog:
        with high:
            with low:
                pass
    assert len(watchdog.violations) == 1
    message = watchdog.violations[0]
    assert "low (rank 1" in message and "high (rank 2" in message
    assert "test_lock_watchdog.py" in message  # both acquisition sites named
    with pytest.raises(LockOrderError):
        watchdog.assert_clean()


def test_correct_order_and_reacquisition_are_clean():
    low = watch(threading.Lock(), label="low", rank=1)
    high = watch(threading.Lock(), label="high", rank=2)
    with LockWatchdog() as watchdog:
        for _ in range(3):
            with low:
                with high:
                    pass
    watchdog.assert_clean()


def test_rlock_reentrancy_is_not_an_inversion():
    lock = watch(threading.RLock(), label="reentrant", rank=5)
    with LockWatchdog() as watchdog:
        with lock:
            with lock:  # same object: reentrant, not equal-rank nesting
                pass
    watchdog.assert_clean()


def test_equal_rank_pair_is_flagged():
    """The shard-lock deadlock shape: two rank-20 locks held together."""
    shard_a = watch(threading.Lock(), label="shard0._lock", rank=20)
    shard_b = watch(threading.Lock(), label="shard1._lock", rank=20)
    with LockWatchdog() as watchdog:
        with shard_a:
            with shard_b:
                pass
    assert len(watchdog.violations) == 1


def test_unlabeled_locks_are_tracked_but_unconstrained():
    ranked = watch(threading.Lock(), label="ranked", rank=10)
    unlabeled = watch(threading.Lock())
    with LockWatchdog() as watchdog:
        with ranked:
            with unlabeled:
                pass
        with unlabeled:
            with ranked:
                pass
    watchdog.assert_clean()


def test_factory_wraps_repro_locks_and_label_locks_assigns_ranks():
    with LockWatchdog():
        from repro.core.cache_manager import ReCache
        from repro.core.config import ReCacheConfig

        cache = ReCache(ReCacheConfig())
        assert label_locks(cache) == 1
        assert cache._lock.label == "ReCache._lock"
        assert cache._lock.rank == 20
        # Locks created from test code keep the real primitive.
        local = threading.Lock()
        assert not hasattr(local, "rank")
    # After uninstall the factories are restored: new locks are real.
    assert not isinstance(threading.Lock(), type(cache._lock))


def test_condition_wait_keeps_the_held_stack_consistent():
    """The EngineServer pattern: a Condition sharing a watched lifecycle lock.

    ``wait(timeout)`` releases and reacquires through the wrapper's
    acquire/release; afterwards the held stack must be balanced, so a
    higher-rank acquisition is still clean and a lower-rank one still fires.
    """
    lifecycle = watch(threading.Lock(), label="lifecycle", rank=0)
    condition = threading.Condition(lifecycle)
    leaf = watch(threading.Lock(), label="leaf", rank=30)
    with LockWatchdog() as watchdog:
        with condition:
            condition.wait(timeout=0.01)
            condition.notify_all()
            with leaf:
                pass
    watchdog.assert_clean()
    with LockWatchdog() as watchdog:
        with leaf:
            with condition:  # rank 0 under rank 30: inversion
                pass
    assert len(watchdog.violations) == 1


def test_violations_recorded_in_worker_threads_surface_at_assert():
    low = watch(threading.Lock(), label="low", rank=1)
    high = watch(threading.Lock(), label="high", rank=2)

    def invert():
        with high:
            with low:
                pass

    with LockWatchdog() as watchdog:
        worker = threading.Thread(target=invert, name="inverter")
        worker.start()
        worker.join()
    assert len(watchdog.violations) == 1
    assert "inverter" in watchdog.violations[0]
