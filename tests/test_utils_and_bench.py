"""Tests for the utility helpers, reporting and the bench harness plumbing."""

import time

import pytest

from repro.bench.related_work import TABLE1_REQUIREMENTS, table1_related_work
from repro.bench.reporting import (
    cdf_points,
    closeness_to_optimal,
    format_series,
    format_table,
    fraction_below,
    percent_reduction,
)
from repro.engine.calibration import (
    estimate_data_access_time,
    override_per_value_seconds,
    per_value_access_seconds,
    split_scan_cost,
)
from repro.utils import format_bytes, format_seconds, make_rng
from repro.utils.rng import spawn
from repro.utils.timing import SampledTimer, Stopwatch, TimingBreakdown


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.002)
        first = watch.elapsed
        with watch:
            time.sleep(0.002)
        assert watch.elapsed > first
        watch.reset()
        assert watch.elapsed == 0.0
        watch.add(1.5)
        assert watch.elapsed == pytest.approx(1.5)

    def test_sampled_timer_estimates_total(self):
        timer = SampledTimer(sample_rate=0.5, rng=make_rng(1))
        for _ in range(200):
            timer.maybe_start()
            timer.maybe_stop()
        assert timer.observed_count == 200
        assert 0 < timer.sampled_count < 200
        assert timer.estimated_total >= 0.0
        with pytest.raises(ValueError):
            SampledTimer(sample_rate=0.0)

    def test_timing_breakdown_merge(self):
        a = TimingBreakdown(operator_time=1.0, caching_time=0.5, total_time=2.0)
        b = TimingBreakdown(operator_time=0.5, extras={"x": 1.0})
        a.merge(b)
        assert a.operator_time == 1.5 and a.extras["x"] == 1.0
        assert "operator_time" in a.as_dict()


class TestUtils:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(1536) == "1.50 KiB"
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_format_seconds(self):
        assert format_seconds(0.0000005).endswith("us")
        assert format_seconds(0.05).endswith("ms")
        assert format_seconds(5).endswith("s")
        assert "m" in format_seconds(200)

    def test_rng_helpers(self):
        assert make_rng(5).random() == make_rng(5).random()
        parent = make_rng(5)
        assert spawn(parent, "a").random() != spawn(make_rng(5), "b").random()


class TestCalibration:
    def test_split_scan_cost_with_override(self):
        override_per_value_seconds(1e-6)
        try:
            assert estimate_data_access_time(1000) == pytest.approx(1e-3)
            data, compute = split_scan_cost(0.005, 1000)
            assert data == pytest.approx(1e-3) and compute == pytest.approx(4e-3)
            # the data cost never exceeds the measured total
            data, compute = split_scan_cost(0.0005, 1000)
            assert data == pytest.approx(0.0005) and compute == 0.0
        finally:
            override_per_value_seconds(None)

    def test_calibration_is_positive_and_cached(self):
        first = per_value_access_seconds()
        assert first > 0
        assert per_value_access_seconds() == first


class TestReporting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": None}], title="T")
        assert "T" in text and "a" in text and "10" in text and "-" in text
        assert format_table([]) == "(no rows)"

    def test_series_and_cdf(self):
        assert "0.5" in format_series("x", [0.5, 1.5], every=1)
        points = cdf_points([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        assert points["p50"] in (5, 6) and points["p99"] == 10
        assert fraction_below([1, 2, 3, 4], 2) == 0.5

    def test_reduction_and_closeness(self):
        assert percent_reduction(10, 5) == 50.0
        assert percent_reduction(0, 5) == 0.0
        assert closeness_to_optimal(6, 10, 5) == pytest.approx(80.0)
        assert closeness_to_optimal(10, 5, 5) == 0.0


class TestTable1:
    def test_rows_match_paper(self):
        rows = table1_related_work()
        assert len(rows) == 6
        recache = rows[-1]
        assert recache["research_area"].startswith("Reactive Cache")
        assert all(recache[req] for req in TABLE1_REQUIREMENTS)
        # No other research area satisfies all three requirements.
        assert all(
            not all(row[req] for req in TABLE1_REQUIREMENTS) for row in rows[:-1]
        )


class TestExperimentDrivers:
    """Tiny-scale invocations proving the figure drivers run end to end."""

    def test_figure5_and_6_shapes(self):
        from repro.bench.experiments import figure5_scan_vs_cardinality, figure6_write_latency

        scan_rows = figure5_scan_vs_cardinality(cardinalities=(0, 4), num_records=60)
        assert len(scan_rows) == 2
        assert scan_rows[1]["parquet_scan_s"] > 0
        build_rows = figure6_write_latency(cardinalities=(4,), num_records=60)
        assert build_rows[0]["columnar_build_s"] > 0

    def test_figure7_returns_error_distribution(self):
        from repro.bench.experiments import figure7_cost_model_error

        result = figure7_cost_model_error(num_orders=60, num_queries=10)
        assert len(result["errors"]) == 20
        assert 0.0 <= result["fraction_within_30pct"] <= 1.0

    def test_figure9_runs_with_real_selector(self):
        from repro.bench.experiments import figure9_auto_layout

        result = figure9_auto_layout(pattern="halves", num_queries=24, num_orders=80)
        assert set(result["totals"]) == {"parquet", "columnar", "recache"}
        assert result["optimal_total"] <= min(result["totals"]["parquet"], result["totals"]["columnar"])
        with pytest.raises(ValueError):
            figure9_auto_layout(pattern="unknown")
