"""Tests for the R-tree used by the subsumption index."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtree import Rect, RTree


class TestRect:
    def test_validation(self):
        with pytest.raises(ValueError):
            Rect((1.0,), (0.0,))
        with pytest.raises(ValueError):
            Rect((), ())
        with pytest.raises(ValueError):
            Rect((0.0,), (1.0, 2.0))

    def test_contains_and_intersects(self):
        outer = Rect.from_bounds([(0, 10), (0, 10)])
        inner = Rect.from_bounds([(2, 3), (4, 5)])
        disjoint = Rect.from_bounds([(20, 30), (20, 30)])
        assert outer.contains(inner) and not inner.contains(outer)
        assert outer.intersects(inner) and not outer.intersects(disjoint)

    def test_union_and_enlargement(self):
        a = Rect.from_interval(0, 1)
        b = Rect.from_interval(5, 6)
        union = a.union(b)
        assert (union.lows[0], union.highs[0]) == (0, 6)
        assert a.enlargement(b) == pytest.approx(5.0)
        assert a.enlargement(Rect.from_interval(0.2, 0.8)) == 0.0


def _brute_force_containing(items, query):
    return [value for rect, value in items if rect.contains(query)]


class TestRTree:
    def test_insert_and_search(self):
        tree = RTree(max_entries=4)
        for i in range(50):
            tree.insert(Rect.from_interval(i, i + 10), i)
        assert len(tree) == 50
        hits = tree.search_containing(Rect.from_interval(22, 24))
        assert sorted(hits) == list(range(14, 23))
        assert tree.height() > 1

    def test_intersection_search(self):
        tree = RTree(max_entries=4)
        tree.insert(Rect.from_interval(0, 5), "a")
        tree.insert(Rect.from_interval(10, 15), "b")
        assert tree.search_intersecting(Rect.from_interval(4, 11)) == ["a", "b"]
        assert tree.search_intersecting(Rect.from_interval(6, 9)) == []

    def test_delete(self):
        tree = RTree(max_entries=4)
        rects = [(Rect.from_interval(i, i + 2), i) for i in range(30)]
        for rect, value in rects:
            tree.insert(rect, value)
        for rect, value in rects[:15]:
            assert tree.delete(rect, value)
        assert len(tree) == 15
        assert not tree.delete(Rect.from_interval(1000, 1001), "missing")
        remaining = {value for _, value in tree.items()}
        assert remaining == set(range(15, 30))

    def test_min_max_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.floats(-100, 100), st.floats(0, 20)), min_size=1, max_size=60),
        st.tuples(st.floats(-100, 100), st.floats(0, 5)),
    )
    def test_containment_matches_brute_force(self, intervals, probe):
        tree = RTree(max_entries=5)
        items = []
        for index, (low, width) in enumerate(intervals):
            rect = Rect.from_interval(low, low + width)
            tree.insert(rect, index)
            items.append((rect, index))
        query = Rect.from_interval(probe[0], probe[0] + probe[1])
        assert sorted(tree.search_containing(query)) == sorted(_brute_force_containing(items, query))

    def test_randomized_two_dimensional_queries(self):
        rng = random.Random(11)
        tree = RTree(max_entries=6)
        items = []
        for index in range(200):
            low_x, low_y = rng.uniform(0, 100), rng.uniform(0, 100)
            rect = Rect.from_bounds([(low_x, low_x + rng.uniform(0, 20)), (low_y, low_y + rng.uniform(0, 20))])
            tree.insert(rect, index)
            items.append((rect, index))
        for _ in range(25):
            x, y = rng.uniform(0, 110), rng.uniform(0, 110)
            query = Rect.from_bounds([(x, x + 1), (y, y + 1)])
            assert sorted(tree.search_containing(query)) == sorted(_brute_force_containing(items, query))
