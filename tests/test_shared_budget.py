"""Tests for the shared-budget protocol: borrowing, cross-shard eviction.

Covers the fragmentation fix: with the static per-shard split, an item larger
than ``cache_size_limit / shard_count`` could never be admitted even into a
mostly-empty cache; the shared budget admits it by borrowing global headroom,
and a cross-shard eviction round (global benefit metric) frees space when no
single shard can.
"""

from __future__ import annotations

import threading

from hypothesis import given, strategies as st

from repro.core.cache_manager import ReCache
from repro.core.config import ReCacheConfig
from repro.core.sharded_cache import SharedBudget, ShardedReCache, shard_limits
from repro.engine.expressions import RangePredicate
from repro.engine.types import FLOAT, INT, Field, RecordType
from repro.layouts import build_layout

SCHEMA = RecordType([Field("id", INT), Field("value", FLOAT)])


def _layout(rows: int):
    data = [{"id": i, "value": float(i)} for i in range(rows)]
    return build_layout("columnar", SCHEMA, ["id", "value"], rows=data)


def _admit(cache, index: int, layout, operator_time: float = 0.5) -> object:
    return cache.admit_eager(
        "s",
        "csv",
        RangePredicate("value", float(index), float(index) + 0.5),
        ["id", "value"],
        layout,
        operator_time=operator_time,
        caching_time=0.01,
    )


# ---------------------------------------------------------------------------
# shard_limits rounding (property-style, satellite)
# ---------------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=1, max_value=64))
def test_shard_limits_always_sum_to_global_limit(limit, shard_count):
    limits = shard_limits(limit, shard_count)
    assert len(limits) == shard_count
    assert sum(limits) == limit  # remainder distributed, never truncated
    assert max(limits) - min(limits) <= 1
    assert all(share >= 0 for share in limits)


def test_shard_limits_none_means_unlimited_everywhere():
    assert shard_limits(None, 5) == [None] * 5


# ---------------------------------------------------------------------------
# SharedBudget reservations
# ---------------------------------------------------------------------------
def test_shared_budget_reserve_commit_release_cycle():
    budget = SharedBudget(limit=100)
    assert budget.headroom() == 100
    assert budget.try_reserve(60)
    assert budget.headroom() == 40
    assert not budget.try_reserve(50)  # would exceed with the reservation held
    budget.add(60)  # install
    budget.release(60)
    assert budget.value == 60
    assert budget.headroom() == 40
    assert budget.deficit_for(50) == 10
    assert budget.deficit_for(40) == 0


def test_shared_budget_unlimited_never_blocks():
    budget = SharedBudget(limit=None)
    assert budget.headroom() is None
    assert budget.deficit_for(10**12) == 0
    assert budget.try_reserve(10**12)


# ---------------------------------------------------------------------------
# Borrowing: over-share admissions into a mostly-empty cache
# ---------------------------------------------------------------------------
def test_entry_larger_than_shard_share_is_admitted_by_borrowing():
    big = _layout(300)
    limit = int(big.nbytes * 1.5)
    cache = ShardedReCache(ReCacheConfig(cache_size_limit=limit), shard_count=4)
    share = shard_limits(limit, 4)[0]
    assert big.nbytes > share, "scenario requires an over-share item"
    assert big.nbytes <= limit

    entry = _admit(cache, 0, big)
    assert entry is not None, "over-share item must be admitted via borrowing"
    assert cache.total_bytes == big.nbytes <= limit
    assert cache.stats.extras.get("borrowed_admissions", 0) >= 1
    assert cache.stats.admissions_skipped == 0


def test_borrowed_bytes_counts_only_each_admissions_increment():
    """``borrowed_bytes`` must total the shard's overage, not recount it."""
    budget = SharedBudget(limit=1000)
    shard = ReCache(ReCacheConfig(cache_size_limit=100), shared_budget=budget)
    for i in range(3):  # lazy entries have exact sizes: 8 bytes per offset
        entry = shard.admit_lazy(
            "s", "csv", RangePredicate("value", float(i), float(i) + 0.5),
            ["id", "value"], offsets=list(range(10)),
            operator_time=0.1, caching_time=0.01,
        )
        assert entry is not None
    # Occupancy 240 vs share 100: 60 borrowed by the second admission (which
    # crossed the share), 80 by the third — never the standing overage again.
    extras = shard.stats.extras
    assert extras["borrowed_admissions"] == 2
    assert extras["borrowed_bytes"] == 140 == shard.total_bytes - 100


def test_entry_larger_than_global_limit_is_still_rejected():
    big = _layout(300)
    cache = ShardedReCache(
        ReCacheConfig(cache_size_limit=big.nbytes - 1), shard_count=4
    )
    assert _admit(cache, 0, big) is None
    assert cache.total_bytes == 0
    assert cache.stats.admissions_skipped == 1


def test_single_shard_pooled_budget_keeps_local_semantics():
    """shard_count=1: the pooled protocol must reject exactly like plain ReCache."""
    layout = _layout(40)
    limit = layout.nbytes + 10
    pooled = ShardedReCache(ReCacheConfig(cache_size_limit=limit), shard_count=1)
    plain = ReCache(ReCacheConfig(cache_size_limit=limit))
    for cache in (pooled, plain):
        assert _admit(cache, 0, _layout(40)) is not None
        assert _admit(cache, 1, _layout(40), operator_time=5.0) is not None  # evicts first
        assert len(cache.entries()) == 1
        assert cache.total_bytes <= limit


# ---------------------------------------------------------------------------
# Cross-shard eviction round
# ---------------------------------------------------------------------------
def test_cross_shard_round_evicts_lowest_global_benefit_victims():
    small = _layout(30)
    limit = small.nbytes * 6
    cache = ShardedReCache(ReCacheConfig(cache_size_limit=limit), shard_count=4)

    # Fill the cache: half low-benefit (cheap to rebuild), half high-benefit.
    for i in range(3):
        assert _admit(cache, i, _layout(30), operator_time=0.001) is not None
    for i in range(3, 6):
        assert _admit(cache, i, _layout(30), operator_time=50.0) is not None
    assert cache.total_bytes == limit

    # A big admission that no single shard could absorb: needs a cross-shard
    # round that frees space across shards, lowest global benefit first.
    big = _layout(100)
    assert big.nbytes <= limit
    entry = _admit(cache, 99, big, operator_time=1.0)
    assert entry is not None
    assert cache.total_bytes <= limit
    extras = cache.stats.extras
    assert extras.get("cross_shard_rounds", 0) >= 1
    assert extras.get("cross_shard_evicted_bytes", 0) > 0

    survivors = {e.predicate.low for e in cache.entries() if e is not entry}
    # Every surviving small entry must be high-benefit: the cheap-to-rebuild
    # ones are the globally ranked victims.
    assert survivors <= {3.0, 4.0, 5.0}


def test_upgrade_balancing_never_evicts_the_entry_being_upgraded():
    """The cross-shard round must exclude the lazy entry its upgrade serves.

    The entry is deliberately the lowest-benefit item in the cache: without
    the exclusion, the balancing round for its own upgrade would rank it as
    the first victim, evicting it and discarding the built eager layout.
    """
    predicate = RangePredicate("value", 1000.0, 1000.5)
    offsets = list(range(50))
    eager = _layout(120)
    filler = _layout(40)
    limit = 8 * len(offsets) + filler.nbytes * 4 + eager.nbytes // 2
    cache = ShardedReCache(ReCacheConfig(cache_size_limit=limit), shard_count=4)

    entry = cache.admit_lazy(
        "s", "csv", predicate, ["id", "value"], offsets,
        operator_time=0.0001, caching_time=0.0001,  # lowest benefit in the cache
    )
    assert entry is not None
    for i in range(4):
        assert _admit(cache, i, _layout(40), operator_time=20.0) is not None

    # The upgrade's growth cannot fit without eviction somewhere.
    assert cache.budget.deficit_for(eager.nbytes - entry.nbytes) > 0
    upgraded = cache.upgrade_lazy(entry, eager, caching_time=0.01)
    assert cache.get_exact("s", predicate) is entry, "entry evicted by its own upgrade"
    if upgraded:
        assert not entry.is_lazy
    assert cache.total_bytes <= limit
    assert cache.total_bytes == sum(e.nbytes for e in cache.entries())


def test_pooled_layout_switch_never_flushes_shard_for_an_uncoverable_deficit():
    """A growing switch whose global deficit exceeds the shard's other
    residents must keep the old layout WITHOUT evicting anything: flushing
    the shard could not have made the reservation succeed anyway."""
    budget = SharedBudget(limit=4000)
    shard = ReCache(ReCacheConfig(cache_size_limit=2000), shared_budget=budget)
    budget.add(3000)  # occupancy held by other shards of the pool

    entry = _admit(shard, 0, _layout(20))  # 320B
    other = _admit(shard, 1, _layout(20))
    assert entry is not None and other is not None

    grown = _layout(120)  # switch growth far beyond the 360B global headroom
    with shard._lock:
        installed = shard._install_switched_layout(
            entry, entry.layout, grown, conversion_time=0.01, target="columnar"
        )
    assert installed is None, "switch must be declined"
    assert shard.get_exact("s", other.predicate) is other, "resident flushed for nothing"
    assert len(shard.entries()) == 2
    assert budget.reserved == 0


def test_full_cache_admissions_prefer_local_eviction():
    """When the home shard can cover the deficit itself, no global round runs."""
    small = _layout(30)
    cache = ShardedReCache(
        ReCacheConfig(cache_size_limit=small.nbytes), shard_count=4
    )
    # Re-admit under the SAME predicate: same home shard, which alone holds
    # enough evictable bytes, so the cheap local path must handle it.
    assert _admit(cache, 0, _layout(30)) is not None
    assert _admit(cache, 0, _layout(30)) is not None
    assert cache.stats.extras.get("cross_shard_rounds", 0) == 0


def test_global_budget_invariant_under_concurrent_admissions():
    small = _layout(25)
    limit = small.nbytes * 5
    cache = ShardedReCache(ReCacheConfig(cache_size_limit=limit), shard_count=4)
    errors: list[Exception] = []

    def client(worker: int) -> None:
        try:
            for step in range(25):
                index = worker * 1000 + step
                rows = 25 + (index % 3) * 10
                _admit(cache, index, _layout(rows), operator_time=0.1 + step * 0.01)
                assert cache.total_bytes <= limit, "global budget violated"
        except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(w,)) for w in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert cache.total_bytes <= limit
    assert cache.total_bytes == sum(e.nbytes for e in cache.entries())
    assert cache.budget.reserved == 0, "no reservation may leak"
