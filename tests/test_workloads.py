"""Tests for the dataset generators and query workload generators."""

import pytest

from repro.engine.expressions import RangePredicate
from repro.engine.types import flatten_record
from repro.workloads import (
    AttributeSchedule,
    SYMANTEC_CSV_SCHEMA,
    SYMANTEC_FIELD_RANGES,
    SYMANTEC_JSON_SCHEMA,
    TPCH_FIELD_RANGES,
    TPCH_SCHEMAS,
    TPCHGenerator,
    YELP_FIELD_RANGES,
    YELP_SCHEMAS,
    cardinality_sweep_records,
    spa_workload,
    spj_tpch_workload,
    symantec_mixed_workload,
    synthetic_order_lineitems,
    yelp_spa_workload,
)
from repro.workloads.nested import CARDINALITY_SWEEP_SCHEMA, ORDER_LINEITEMS_SCHEMA
from repro.workloads.symantec import spam_json_records
from repro.workloads.yelp import business_records, user_records


class TestTPCHGenerator:
    def test_cardinalities_scale(self):
        generator = TPCHGenerator(scale_factor=0.001)
        assert generator.cardinality("lineitem") == 6000
        assert generator.cardinality("customer") == 150
        with pytest.raises(KeyError):
            generator.cardinality("region")

    def test_rows_match_schema_and_ranges(self):
        generator = TPCHGenerator(scale_factor=0.0002, seed=1)
        for table, schema in TPCH_SCHEMAS.items():
            rows = list(generator.rows(table))
            assert len(rows) == generator.cardinality(table)
            names = set(schema.field_names())
            assert set(rows[0]) == names
            for field, (low, high) in TPCH_FIELD_RANGES[table].items():
                values = [row[field] for row in rows[:200]]
                assert all(low <= value <= high for value in values)

    def test_determinism(self):
        a = list(TPCHGenerator(scale_factor=0.0002, seed=9).orders_rows())
        b = list(TPCHGenerator(scale_factor=0.0002, seed=9).orders_rows())
        assert a == b

    def test_order_lineitems_join_consistency(self):
        generator = TPCHGenerator(scale_factor=0.0002, seed=1)
        records = list(generator.order_lineitems_records())
        total_lineitems = sum(len(record["lineitems"]) for record in records)
        assert total_lineitems == generator.cardinality("lineitem")
        for record in records[:20]:
            flatten_record(record, ORDER_LINEITEMS_SCHEMA)  # must not raise


class TestSyntheticDatasets:
    def test_order_lineitems_shape(self):
        records = synthetic_order_lineitems(50, average_lineitems=3, seed=1)
        assert len(records) == 50
        assert set(records[0]) == set(ORDER_LINEITEMS_SCHEMA.field_names())

    def test_cardinality_sweep(self):
        records = cardinality_sweep_records(20, cardinality=5)
        assert all(len(record["items"]) == 5 for record in records)
        assert set(records[0]) == set(CARDINALITY_SWEEP_SCHEMA.field_names())
        with pytest.raises(ValueError):
            cardinality_sweep_records(0, 1)

    def test_symantec_records_have_optional_and_nested_fields(self):
        records = spam_json_records(300, seed=1)
        with_subject = [r for r in records if "subject_length" in r]
        assert 0 < len(with_subject) < len(records)
        assert all("urls" in record and "origin" in record for record in records)
        for record in records[:50]:
            flatten_record(record, SYMANTEC_JSON_SCHEMA)
        assert set(SYMANTEC_CSV_SCHEMA.field_names()) == {
            "email_id", "class_id", "confidence", "summary_length", "cluster",
        }

    def test_yelp_records_have_large_collections(self):
        businesses = business_records(100, seed=2)
        users = user_records(100, seed=2)
        assert any(len(b["checkins"]) > 10 for b in businesses)
        assert any(len(u["friends"]) > 20 for u in users)
        for name, schema in YELP_SCHEMAS.items():
            assert name in YELP_FIELD_RANGES and schema.leaf_paths()


class TestAttributeSchedules:
    def test_halves(self):
        schedule = AttributeSchedule.halves(10)
        assert schedule.pool_for(0) == "all" and schedule.pool_for(9) == "non_nested"

    def test_alternating(self):
        schedule = AttributeSchedule.alternating(period=3)
        assert [schedule.pool_for(i) for i in range(7)] == [
            "all", "all", "all", "non_nested", "non_nested", "non_nested", "all",
        ]

    def test_random_mix_is_deterministic(self):
        a = AttributeSchedule.random_mix(0.5, seed=3)
        b = AttributeSchedule.random_mix(0.5, seed=3)
        assert [a.pool_for(i) for i in range(20)] == [b.pool_for(i) for i in range(20)]

    def test_invalid_pool_rejected(self):
        with pytest.raises(ValueError):
            AttributeSchedule(lambda i: "weird").pool_for(0)


class TestQueryWorkloads:
    def test_spa_workload_respects_schedule(self):
        queries = spa_workload(
            "orderLineitems",
            ORDER_LINEITEMS_SCHEMA,
            TPCH_FIELD_RANGES["orderLineitems"],
            num_queries=40,
            schedule=AttributeSchedule.halves(40),
            seed=1,
        )
        assert len(queries) == 40
        for query in queries[20:]:
            fields = set()
            for agg in query.aggregates:
                fields |= agg.referenced_fields()
            fields |= query.tables[0].predicate.referenced_fields()
            assert not any(ORDER_LINEITEMS_SCHEMA.is_nested_path(f) for f in fields)

    def test_spa_workload_determinism(self):
        kwargs = {
            "source": "orderLineitems",
            "schema": ORDER_LINEITEMS_SCHEMA,
            "field_ranges": TPCH_FIELD_RANGES["orderLineitems"],
            "num_queries": 10,
            "seed": 4,
        }
        a = [q.signature() for q in spa_workload(**kwargs)]
        b = [q.signature() for q in spa_workload(**kwargs)]
        assert a == b

    def test_spj_workload_joins_are_connected(self):
        queries = spj_tpch_workload(num_queries=30, seed=7)
        for query in queries:
            sources = set(query.sources())
            if len(sources) > 1:
                joined = {query.joins[0].left_source}
                for join in query.joins:
                    assert join.left_source in joined or join.right_source in joined
                    joined |= {join.left_source, join.right_source}
                assert joined == sources
            for table in query.tables:
                assert isinstance(table.predicate, RangePredicate)

    def test_spj_workload_source_renaming(self):
        queries = spj_tpch_workload(num_queries=20, seed=7, source_names={"lineitem": "lineitem_json"})
        renamed = [q for q in queries if "lineitem_json" in q.sources()]
        assert renamed and all("lineitem" not in q.sources() for q in renamed)

    def test_symantec_workload_fractions(self):
        queries = symantec_mixed_workload(200, nested_fraction=0.0, json_fraction=1.0, join_fraction=0.0, seed=3)
        assert all(q.sources() == ["spam_json"] for q in queries)
        for query in queries:
            fields = query.tables[0].predicate.referenced_fields()
            assert not any(SYMANTEC_JSON_SCHEMA.is_nested_path(f) for f in fields)
        with_joins = symantec_mixed_workload(100, join_fraction=1.0, seed=3)
        assert all(len(q.tables) == 2 for q in with_joins)

    def test_yelp_workload_sources(self):
        queries = yelp_spa_workload(60, nested_fraction=0.5, seed=5)
        assert {q.sources()[0] for q in queries} <= {"business", "user", "review"}
        ranges = SYMANTEC_FIELD_RANGES["spam_json"]
        assert ranges["spam_score"] == (0.0, 1.0)
