"""Tests for the async batched submission API and its serving-tier counters.

Covers: ``submit_batch``/``serve_all`` ordering and result parity, duplicate
coalescing, source/predicate-overlap grouping, backpressure blocking, the
``queue_wait_time``/``queue_depth`` counters, the generic ``merge_reports``
aggregation, the submit/shutdown race, and the batched multi-client driver.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import pytest

from repro import (
    AggregateSpec,
    ColumnarResult,
    EngineServer,
    FieldRef,
    Query,
    QueryEngine,
    QueryReport,
    RangePredicate,
    ReCacheConfig,
    merge_reports,
)
from repro.engine.server import _Submission, _coalesce, group_batch
from repro.workloads.runner import ConcurrentWorkloadRunner

from tests.conftest import build_engine


def _flat_query(index: int, low: float, width: float = 30.0) -> Query:
    return Query.select_aggregate(
        "flat",
        RangePredicate("value", low, low + width),
        [AggregateSpec("sum", FieldRef("score")), AggregateSpec("count", FieldRef("id"))],
        label=f"batch-{index}",
    )


@pytest.fixture()
def server_engine(dataset_dir):
    config = ReCacheConfig(shard_count=4, max_workers=4, admission_sample_records=50)
    return build_engine(dataset_dir, config)


# ---------------------------------------------------------------------------
# submit_batch: ordering, parity, coalescing
# ---------------------------------------------------------------------------
def test_serve_all_preserves_order_and_matches_sequential_results(server_engine):
    queries = [_flat_query(i, float((i * 17) % 120)) for i in range(10)]
    with EngineServer(server_engine) as server:
        reports = server.serve_all(queries)
    assert [report.label for report in reports] == [query.label for query in queries]
    sequential = QueryEngine(ReCacheConfig(caching_enabled=False))
    sequential.catalog = server_engine.catalog
    for query, report in zip(queries, reports):
        assert report.results == sequential.execute(query).results, query.label


def test_submit_batch_coalesces_identical_queries(server_engine):
    hot = _flat_query(0, 10.0)
    queries = [hot, _flat_query(1, 50.0), hot, hot, _flat_query(2, 80.0)]
    with EngineServer(server_engine) as server:
        reports = server.serve_all(queries)
        assert server.coalesced_served == 2
    # Only the three distinct queries reached the engine.
    assert server_engine.query_count == 3
    assert [r.coalesced for r in reports] == [0, 0, 1, 1, 0]
    # Coalesced duplicates still deliver the shared result rows...
    assert reports[2].results == reports[0].results
    assert reports[2].rows_returned == reports[0].rows_returned
    # ...but carry no execution counters of their own.
    assert reports[2].exact_hits + reports[2].subsumption_hits + reports[2].misses == 0


def test_submit_batch_mixed_result_formats_per_query(server_engine):
    """One batch can mix ``rows`` and ``columnar`` requests per query.

    Duplicates coalesce into one execution even across formats (the format
    is not part of the query signature), every future resolves with its own
    requested representation, and each coalesced report is an independent
    object carrying no execution counters of its own.
    """
    hot = _flat_query(0, 10.0)
    queries = [hot, _flat_query(1, 50.0), hot, hot]
    with EngineServer(server_engine) as server:
        futures = server.submit_batch(
            queries, result_format=["rows", "columnar", "columnar", None]
        )
        reports = [future.result(timeout=30) for future in futures]
    # One execution served all three `hot` submissions (asserted after
    # shutdown so the worker's settle accounting has definitely run).
    assert server.coalesced_served == 2
    assert server_engine.query_count == 2
    assert [report.coalesced for report in reports] == [0, 0, 1, 1]
    # Each future got exactly the representation it asked for.
    assert isinstance(reports[0].results, list)
    assert isinstance(reports[1].results, ColumnarResult)
    assert isinstance(reports[2].results, ColumnarResult)
    assert isinstance(reports[3].results, list)  # None -> engine default "rows"
    # The coalesced columnar copy is the primary's row output, converted.
    assert reports[2].results.to_rows() == reports[0].results
    assert reports[3].results == reports[0].results
    assert reports[2].rows_returned == reports[0].rows_returned
    # Reports stay independent objects with no execution counters of their own.
    assert reports[2] is not reports[0] and reports[3] is not reports[0]
    for coalesced in (reports[2], reports[3]):
        assert coalesced.exact_hits + coalesced.subsumption_hits + coalesced.misses == 0


def test_query_level_result_format_is_honored_by_the_server(server_engine):
    """A query carrying ``result_format="columnar"`` needs no per-call knob."""
    query = Query(
        tables=[_flat_query(0, 10.0).tables[0]],
        aggregates=[AggregateSpec("count", FieldRef("id"))],
        label="columnar-by-query",
        result_format="columnar",
    )
    with EngineServer(server_engine) as server:
        report = server.execute(query)
        assert isinstance(report.results, ColumnarResult)
        # An explicit submission-time override still wins over the query's.
        rows_report = server.submit(query, result_format="rows").result(timeout=30)
        assert isinstance(rows_report.results, list)
        assert rows_report.results == report.results.to_rows()


def test_submit_batch_rejects_misaligned_result_formats(server_engine):
    with EngineServer(server_engine) as server:
        with pytest.raises(ValueError, match="result_format length"):
            server.submit_batch([_flat_query(0, 10.0)], result_format=["rows", "rows"])
        with pytest.raises(ValueError, match="unknown result format"):
            server.submit(_flat_query(0, 10.0), result_format="arrow")


def test_submit_batch_empty_is_a_noop(server_engine):
    with EngineServer(server_engine) as server:
        assert server.submit_batch([]) == []
        assert server.queue_depth == 0


def test_coalesced_duplicates_get_their_own_response_delivery(server_engine):
    delivered: list[str] = []
    hot = _flat_query(0, 10.0)

    def hook(report: QueryReport) -> None:
        delivered.append(report.label)

    with EngineServer(server_engine, response_hook=hook) as server:
        server.serve_all([hot, hot, hot])
    assert delivered == ["batch-0"] * 3


def test_queue_counters_populated_and_merged(server_engine):
    queries = [_flat_query(i, float(i * 5)) for i in range(6)]
    with EngineServer(server_engine) as server:
        reports = server.serve_all(queries)
        assert server.peak_queue_depth >= len(queries)
    assert all(report.queue_wait_time >= 0.0 for report in reports)
    merged = merge_reports(reports, label="window")
    assert merged.queue_wait_time == pytest.approx(
        sum(r.queue_wait_time for r in reports)
    )
    assert merged.queue_depth == max(r.queue_depth for r in reports)


def test_coalesced_wait_accrues_separately_from_queue_wait(server_engine):
    """Coalesced duplicates must not inflate ``queue_wait_time``.

    Each duplicate used to report a full queue-to-resolve interval as queue
    wait, so a batch of N identical queries summed to N× the real wait — a
    3.59s aggregate against a 0.05s wall in the batched bench.  Duplicate
    waits now land in ``coalesced_wait_time``; ``queue_wait_time`` counts
    only submissions that actually occupied the queue.
    """
    hot = _flat_query(0, 10.0)
    started = time.perf_counter()
    with EngineServer(server_engine) as server:
        reports = server.serve_all([hot] * 8)
    wall = time.perf_counter() - started
    duplicates = [r for r in reports if r.coalesced]
    primaries = [r for r in reports if not r.coalesced]
    assert len(duplicates) == 7
    assert all(r.queue_wait_time == 0.0 for r in duplicates)
    assert all(0.0 <= r.coalesced_wait_time <= wall for r in duplicates)
    assert all(r.coalesced_wait_time == 0.0 for r in primaries)
    merged = merge_reports(reports)
    # The aggregate queue wait can no longer exceed the real wall window.
    assert merged.queue_wait_time <= wall + 1e-6
    assert merged.coalesced_wait_time == pytest.approx(
        sum(r.coalesced_wait_time for r in duplicates)
    )


# ---------------------------------------------------------------------------
# merge_reports: every admission key survives (satellite)
# ---------------------------------------------------------------------------
def test_merge_reports_carries_all_admission_keys():
    first = QueryReport(exact_hits=1)
    first.admissions["eager"] = 2
    first.admissions["speculative"] = 3  # a key merge must NOT drop
    second = QueryReport(misses=1)
    second.admissions["lazy"] = 1
    second.admissions["speculative"] = 4
    second.queue_wait_time = 0.5
    second.queue_depth = 7
    second.coalesced = 2
    merged = merge_reports([first, second])
    assert merged.admissions == {"eager": 2, "lazy": 1, "speculative": 7}
    assert merged.queue_wait_time == pytest.approx(0.5)
    assert merged.queue_depth == 7
    assert merged.coalesced == 2


# ---------------------------------------------------------------------------
# Grouping: data source + predicate overlap, widest first
# ---------------------------------------------------------------------------
def _submissions(queries: list[Query]) -> list[_Submission]:
    return [_Submission(query, Future(), 0.0, 0) for query in queries]


def test_group_batch_clusters_overlapping_ranges_widest_first():
    wide = _flat_query(0, 10.0, width=80.0)  # 10..90
    narrow_a = _flat_query(1, 20.0, width=10.0)  # 20..30, inside wide
    narrow_b = _flat_query(2, 70.0, width=10.0)  # 70..80, inside wide
    disjoint = _flat_query(3, 200.0, width=5.0)  # 200..205, separate cluster
    executions = _coalesce(_submissions([narrow_a, wide, disjoint, narrow_b]))
    groups = group_batch(executions)
    assert len(groups) == 2
    overlap_group = next(g for g in groups if len(g) == 3)
    # Widest first: the subsuming query warms the cache for the narrow ones.
    assert overlap_group[0].query.label == "batch-0"
    assert {e.query.label for e in overlap_group[1:]} == {"batch-1", "batch-2"}
    lone_group = next(g for g in groups if len(g) == 1)
    assert lone_group[0].query.label == "batch-3"


def test_execute_group_widest_first_actually_warms_cache_for_narrow_members(dataset_dir):
    """The grouping promise, checked end to end on the engine itself.

    ``group_batch`` puts the widest predicate first; running the group through
    :meth:`QueryEngine.execute_group` must then turn every narrower member
    into a cache hit off the head query's admission — previously this was
    only exercised indirectly through ``submit_batch``.
    """
    config = ReCacheConfig(adaptive_admission=False, layout_selection=False)
    wide = _flat_query(0, 10.0, width=80.0)  # 10..90
    narrow_a = _flat_query(1, 20.0, width=10.0)  # inside wide
    narrow_b = _flat_query(2, 70.0, width=10.0)  # inside wide
    (group,) = group_batch(_coalesce(_submissions([narrow_a, narrow_b, wide])))
    ordered = [execution.query for execution in group]
    assert ordered[0].label == "batch-0", "group must lead with the widest query"

    engine = build_engine(dataset_dir, config)
    reports = engine.execute_group(ordered)
    assert reports[0].misses == 1 and reports[0].cache_hits == 0
    for report in reports[1:]:
        assert report.misses == 0, f"{report.label} re-scanned the raw file"
        assert report.cache_hits == 1, f"{report.label} was not served from cache"

    # Counterfactual: the submission order (narrowest first) admits per-narrow
    # caches that cannot serve the wide query, so it pays extra raw scans —
    # the widest-first reordering is what removes them.
    unordered_engine = build_engine(dataset_dir, config)
    unordered_reports = unordered_engine.execute_group([narrow_a, narrow_b, wide])
    assert sum(report.misses for report in unordered_reports) > 1
    assert sum(r.misses for r in reports) < sum(r.misses for r in unordered_reports)


def test_group_batch_separates_different_sources():
    flat = _flat_query(0, 10.0)
    orders = Query.select_aggregate(
        "orders", None, [AggregateSpec("count", FieldRef("order_id"))], label="orders-q"
    )
    groups = group_batch(_coalesce(_submissions([flat, orders])))
    assert len(groups) == 2


def test_raising_response_hook_resolves_futures_and_frees_capacity(server_engine):
    """A delivery-hook failure must neither hang clients nor leak queue slots."""

    def failing_hook(report: QueryReport) -> None:
        raise ValueError("delivery failed")

    server = EngineServer(server_engine, max_workers=2, response_hook=failing_hook)
    try:
        hot = _flat_query(0, 10.0)
        futures = server.submit_batch([hot, hot, _flat_query(1, 50.0)])
        for future in futures:
            with pytest.raises(ValueError):
                future.result(timeout=10)
        deadline = time.perf_counter() + 10
        while server.queue_depth and time.perf_counter() < deadline:
            time.sleep(0.001)
        assert server.queue_depth == 0, "pending count leaked"
        # The server stays usable once delivery works again.
        server.response_hook = None
        assert server.execute(_flat_query(2, 80.0)).label == "batch-2"
    finally:
        server.shutdown()


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------
def test_backpressure_blocks_submit_until_queue_drains(server_engine):
    release = threading.Event()
    original_execute = server_engine.execute

    def slow_execute(query, **kwargs):
        release.wait(timeout=10)
        return original_execute(query, **kwargs)

    server_engine.execute = slow_execute
    server = EngineServer(server_engine, max_workers=1, max_pending=1)
    try:
        first = server.submit(_flat_query(0, 10.0))  # occupies the queue
        blocked_result: list[QueryReport] = []

        def blocked_submit() -> None:
            blocked_result.append(server.execute(_flat_query(1, 50.0)))

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        time.sleep(0.05)
        assert thread.is_alive(), "second submit must block at max_pending=1"
        assert not blocked_result
        release.set()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert first.result(timeout=10).label == "batch-0"
        assert blocked_result[0].label == "batch-1"
        assert blocked_result[0].queue_wait_time > 0.0
    finally:
        release.set()
        server.shutdown()


# ---------------------------------------------------------------------------
# Submit/shutdown race (satellite): deterministic interleaving
# ---------------------------------------------------------------------------
def test_submit_shutdown_race_is_consistent(server_engine):
    """A submit racing shutdown either executes fully or raises — never hangs.

    The worker is parked on an event so the interleaving is deterministic:
    shutdown(wait=True) is started while a query is in flight, the main
    thread waits until the closed flag is set, verifies that new submissions
    are rejected, then releases the worker and checks the in-flight future
    still resolves.
    """
    release = threading.Event()
    started = threading.Event()
    original_execute = server_engine.execute

    def parked_execute(query, **kwargs):
        started.set()
        release.wait(timeout=10)
        return original_execute(query, **kwargs)

    server_engine.execute = parked_execute
    server = EngineServer(server_engine, max_workers=1)
    in_flight = server.submit(_flat_query(0, 10.0))
    assert started.wait(timeout=10)

    shutdown_thread = threading.Thread(target=server.shutdown)  # wait=True
    shutdown_thread.start()
    deadline = time.perf_counter() + 10
    while not server._closed and time.perf_counter() < deadline:
        time.sleep(0.001)
    assert server._closed

    with pytest.raises(RuntimeError):
        server.submit(_flat_query(1, 50.0))

    release.set()
    shutdown_thread.join(timeout=10)
    assert not shutdown_thread.is_alive()
    assert in_flight.result(timeout=10).label == "batch-0"
    assert server.queue_depth == 0


def test_shutdown_wakes_submitter_blocked_on_backpressure(server_engine):
    release = threading.Event()
    started = threading.Event()
    original_execute = server_engine.execute

    def parked_execute(query, **kwargs):
        started.set()
        release.wait(timeout=10)
        return original_execute(query, **kwargs)

    server_engine.execute = parked_execute
    server = EngineServer(server_engine, max_workers=1, max_pending=1)
    server.submit(_flat_query(0, 10.0))
    assert started.wait(timeout=10)
    outcome: list[BaseException] = []

    def blocked_submit() -> None:
        try:
            server.submit(_flat_query(1, 50.0))
        except RuntimeError as exc:
            outcome.append(exc)

    thread = threading.Thread(target=blocked_submit)
    thread.start()
    time.sleep(0.05)
    assert thread.is_alive(), "submit must be blocked on backpressure"
    shutdown_thread = threading.Thread(target=server.shutdown)
    shutdown_thread.start()
    thread.join(timeout=10)
    assert not thread.is_alive(), "shutdown must wake the blocked submitter"
    assert len(outcome) == 1  # it observed the closed server and raised
    release.set()
    shutdown_thread.join(timeout=10)


# ---------------------------------------------------------------------------
# Batched multi-client driver
# ---------------------------------------------------------------------------
def test_run_batched_draws_the_same_streams_as_run(dataset_dir):
    pool = [_flat_query(i, float((i * 17) % 120)) for i in range(12)]
    sequences: list[list[list[str]]] = []
    for batched in (False, True):
        engine = build_engine(dataset_dir, ReCacheConfig(shard_count=4))
        with EngineServer(engine, max_workers=4) as server:
            runner = ConcurrentWorkloadRunner(server, clients=3, seed=99)
            if batched:
                result = runner.run_batched(pool, queries_per_client=8, batch_size=4, zipf_s=1.2)
            else:
                result = runner.run(pool, queries_per_client=8, zipf_s=1.2)
        assert result.total_queries == 24
        sequences.append(
            [[row["label"] for row in client.per_query] for client in result.per_client]
        )
    assert sequences[0] == sequences[1], "both modes must draw identical query streams"


def test_run_batched_coalesces_hot_draws(dataset_dir):
    engine = build_engine(dataset_dir, ReCacheConfig(shard_count=2))
    pool = [_flat_query(i, float((i * 17) % 120)) for i in range(6)]
    with EngineServer(engine, max_workers=2) as server:
        runner = ConcurrentWorkloadRunner(server, clients=2, seed=5)
        result = runner.run_batched(pool, queries_per_client=30, batch_size=10, zipf_s=1.5)
    assert result.total_queries == 60
    assert result.aggregate.coalesced > 0, "zipfian batches must contain duplicates"
    assert engine.query_count == 60 - result.aggregate.coalesced
    summary = result.summary()
    assert summary["coalesced"] == result.aggregate.coalesced
