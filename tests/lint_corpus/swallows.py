"""Seeded ``no-swallow`` violation for the self-test.

No locks, no futures: the file exercises only the exception-outcome rule,
so the other rule families stay quiet on it.
"""

# recheck-lint: check-no-swallow

from __future__ import annotations


class MiniExecutor:
    """The shape of the real executor's containment, reduced to handlers."""

    def __init__(self, recache, log) -> None:
        self.recache = recache
        self.log = log

    def good_reraise_wrapped(self, entry):
        try:
            return entry.layout.scan()
        except OSError as exc:
            raise RuntimeError(f"scan of {entry} failed") from exc

    def good_containment_sink(self, entry):
        try:
            return entry.layout.scan()
        except Exception:
            self.recache.quarantine(entry)
            return []

    def good_deliberate_allow(self, entry):
        try:
            return entry.nbytes
        except AttributeError:  # recheck-lint: allow(no-swallow) — size probe
            return 0

    def bad_swallow(self, entry):
        try:
            return entry.layout.scan()
        except Exception:  # PLANTED: no-swallow
            self.log.append("scan failed")
            return []
