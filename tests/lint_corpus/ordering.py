"""Seeded ``lock-order`` and ``heavy-work`` violations for the self-test.

Uses the module-level ``RECHECK_LOCK_RANKS`` extension table so the corpus
declares its own partial order without touching the core's rank table.
"""

from __future__ import annotations

import threading
import time

RECHECK_LOCK_RANKS = {
    "Coordinator._outer_lock": 10,
    "Coordinator._inner_lock": 20,
}


class Coordinator:
    """Two ranked locks: ``_outer_lock`` (10) before ``_inner_lock`` (20)."""

    GUARDED_BY = {"_state": "_outer_lock"}

    def __init__(self) -> None:
        self._outer_lock = threading.Lock()
        self._inner_lock = threading.Lock()
        self._state = 0

    def good_nesting(self) -> None:
        with self._outer_lock:
            self._state += 1
            with self._inner_lock:
                pass

    def bad_nesting(self) -> None:
        with self._inner_lock:
            with self._outer_lock:  # PLANTED: lock-order
                self._state += 1

    def heavy_under_lock(self) -> None:
        with self._outer_lock:
            self._state += 1
            time.sleep(0)  # PLANTED: heavy-work
