"""Seeded ``future-resolution`` violation for the self-test."""

# recheck-lint: check-futures

from __future__ import annotations

from concurrent.futures import Future


class MiniServer:
    """The shape of the real serving layer, reduced to its future plumbing."""

    def __init__(self, pool, engine) -> None:
        self.pool = pool
        self.engine = engine

    def good_submit(self, query) -> Future:
        future = Future()
        try:
            self.pool.submit(self._run, query, future)
        except BaseException as exc:
            future.set_exception(exc)
            raise
        return future

    def bad_submit(self, query) -> Future:
        future = Future()
        self.pool.submit(self._run, query, future)  # PLANTED: future-resolution
        return future

    def _run(self, query, future) -> None:
        try:
            future.set_result(self.engine.execute(query))
        except BaseException as exc:
            future.set_exception(exc)
