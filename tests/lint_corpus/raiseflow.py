"""Seeded ``raise-flow`` and ``reservation-leak`` violations for the self-test.

A self-contained mini error taxonomy (deriving from a local ``ReCacheError``
root, exactly how the analyzer discovers the real one) plus a module-local
``RECHECK_RAISE_CONTRACTS`` table.  The bad variants plant one deliberately
escaping ``TransientScanError`` behind a contracted entry point and one
reservation leaked across an exception edge; the good variants show every
containment idiom the rules understand — handler narrowing, re-raise of an
allowed error, ``# dynamic-call:``/``# may-raise:`` annotations, try/finally
settling and the ``# caller-settles:`` split-ownership protocol.
"""

from __future__ import annotations

RECHECK_RAISE_CONTRACTS = {
    "MiniSubmit.submit": ["QueryRejected"],
    "MiniSubmit.submit_contained": ["QueryRejected"],
    "serve_entry": ["DeadlineExceeded"],
    "run_dispatch": ["TransientScanError"],
    "poll_external": ["DeadlineExceeded"],
}


class ReCacheError(Exception):
    """Local taxonomy root (name-matched, module-independent)."""


class TransientScanError(ReCacheError):
    pass


class QueryRejected(ReCacheError):
    pass


class DeadlineExceeded(ReCacheError):
    pass


def scan_once(entry):
    """The raise source the interprocedural propagation must see."""
    if entry.corrupt:
        raise TransientScanError("backing scan failed")
    return entry.payload


class MiniSubmit:
    """The shape of the real server's admission boundary, reduced."""

    def submit(self, query):  # PLANTED: raise-flow
        if query is None:
            raise QueryRejected("no query")
        return scan_once(query)

    def submit_contained(self, query):
        if query is None:
            raise QueryRejected("no query")
        try:
            return scan_once(query)
        except TransientScanError:
            return None


def serve_entry(entry):
    """Narrow the scan fault, re-raise only the contracted error."""
    try:
        return scan_once(entry)
    except TransientScanError:
        raise DeadlineExceeded("degraded retry budget exhausted")


def run_dispatch(handler, entry):
    """Dispatch-table call made visible to the graph by annotation."""
    return handler(entry)  # dynamic-call: scan_once


def poll_external(client):
    """Statically opaque external call, declared at the site."""
    return client.fetch()  # may-raise: DeadlineExceeded


class MiniBudget:
    """The shape of the pooled-admission reservation protocol, reduced."""

    def __init__(self):
        self._reservation = 0

    def _settle_reservation(self):
        self._reservation = 0

    def _policy_hook(self, entry):
        if entry.rejected:
            raise TransientScanError("policy probe failed")

    def bad_leaks_on_exception_edge(self, entry):
        self._reservation = entry.nbytes
        self._policy_hook(entry)  # PLANTED: reservation-leak
        self._settle_reservation()

    def good_settles_on_exception_edge(self, entry):
        self._reservation = entry.nbytes
        try:
            self._policy_hook(entry)
        finally:
            self._settle_reservation()

    def good_hands_off(self, entry):  # caller-settles: reservation
        self._reservation = entry.nbytes
        return entry.nbytes

    def bad_caller_leaks(self, entry):
        self.good_hands_off(entry)
        self._policy_hook(entry)  # PLANTED: reservation-leak
        self._settle_reservation()

    def good_caller_settles(self, entry):
        self.good_hands_off(entry)
        try:
            self._policy_hook(entry)
        finally:
            self._settle_reservation()
