"""Seeded ``dtype-view`` violations for the self-test."""

from __future__ import annotations


class MiniColumn:
    """A column whose accessor promises a materialized flat view."""

    def __init__(self, values, nested: bool) -> None:
        self.values = values
        self.nested = nested

    def flat_values(self):  # returns: flat-view
        if self.nested:
            return None
        return self.values

    def copied_values(self):  # returns: flat-view
        return [float(value) for value in self.values]  # PLANTED: dtype-view

    def roundtrip_array(self, array):  # returns: flat-view
        return array.tolist()  # PLANTED: dtype-view
