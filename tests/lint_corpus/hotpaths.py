"""Seeded ``hotpath`` violations for the self-test.

``RECHECK_HOTPATH_ROOTS`` marks a local vectorized root; every planted
pattern sits in a function reachable from it through the call graph.  The
good variants show the two suppression levels (a ``# rowwise-fallback:``
``def`` that prunes a whole audited subtree, a line-level bless) plus the
negatives the rule must not fire on: chunk-granular loops and row-wise code
that is simply unreachable from any root.
"""

from __future__ import annotations

RECHECK_HOTPATH_ROOTS = ["corpus_batch_root"]


def corpus_batch_root(batches, values, idx):
    total = bad_materializes_rows(batches)
    total += bad_transposes_and_rebuilds(batches)
    total += bad_gathers_elements(values, idx)
    total += bad_walks_striped_levels(batches)
    total += good_audited_row_exit(batches)
    total += good_blessed_roundtrip(values)
    total += good_chunked_rebatch(values, 64)
    total += good_single_level_lookup(batches)
    return total


def bad_materializes_rows(batches):
    total = 0
    for batch in batches:
        rows = batch.to_rows()  # PLANTED: hotpath
        total += len(rows)
    rows = rows_from_batches(batches)  # PLANTED: hotpath
    return total + len(rows)


def bad_transposes_and_rebuilds(batches):
    total = 0
    for batch in batches:
        columns = [batch.column(name) for name in batch.field_names()]
        for row in zip(*columns):  # PLANTED: hotpath
            record = {"first": row[0]}  # PLANTED: hotpath
            total += len(record)
    return total


def bad_gathers_elements(values, idx):
    data = values.tolist()  # PLANTED: hotpath
    picked = [data[i] for i in idx]  # PLANTED: hotpath
    return len(picked)


def bad_walks_striped_levels(columns):
    total = 0
    for record_index in range(4):
        for column in columns:
            start, end = column.record_entries(record_index)  # PLANTED: hotpath
            total += end - start
    return total


def good_single_level_lookup(columns):
    """One level lookup outside any loop: record-granular, not row-granular."""
    first = next(iter(columns))
    start, end = first.record_entries(0)
    return end - start


def good_audited_row_exit(batches):  # rowwise-fallback: audited parity exit for the row-format result API
    total = 0
    for batch in batches:
        for row in batch.to_rows():
            total += len(row)
    return total


def good_blessed_roundtrip(values):
    data = values.tolist()  # rowwise-fallback: one-time cold materialization, off the per-batch loop
    return len(data)


def good_chunked_rebatch(values, size):
    chunks = []
    for start in range(0, len(values), size):
        chunks.append({"chunk": values[start : start + size]})
    return len(chunks)


def unreachable_row_walk(batches):
    """Row-wise on purpose and off the hot path: must stay unflagged."""
    out = []
    for batch in batches:
        for row in batch.to_rows():
            out.append({"row": row})
    return out
