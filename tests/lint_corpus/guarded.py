"""Seeded ``guarded-by`` violations for the recheck-lint self-test.

Every line carrying a ``# PLANTED: <rule>`` comment must be flagged by the
analyzer — and nothing else in this file may be.  The clean methods exercise
the blessing mechanisms (with-block, ``caller-holds``, ``unguarded-read``)
so the self-test also proves the analyzer stays silent where it should.
"""

from __future__ import annotations

import threading


class GuardedCounter:
    """Declares guarded fields via the ``GUARDED_BY`` class attribute."""

    GUARDED_BY = {"_count": "_lock", "_log": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._log: list[int] = []

    def good_increment(self) -> int:
        with self._lock:
            self._count += 1
            self._log.append(self._count)
            return self._count

    def documented_internal(self) -> int:  # caller-holds: self._lock
        return self._count

    def monitoring_read(self) -> int:
        return self._count  # unguarded-read: GIL-atomic int; monitoring only

    def bad_increment(self) -> None:
        self._count += 1  # PLANTED: guarded-by

    def bad_read(self) -> int:
        return len(self._log)  # PLANTED: guarded-by


class CommentGuarded:
    """Declares a guarded field via a ``# guarded-by:`` __init__ comment."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: list[str] = []  # guarded-by: self._lock

    def good_add(self, item: str) -> None:
        with self._lock:
            self._items.append(item)

    def bad_clear(self) -> None:
        self._items = []  # PLANTED: guarded-by
