"""Seeded ``shm-lifecycle`` violation for the self-test.

No locks, no futures, no exception handling of interest: the file
exercises only the segment-creation/unlink pairing rule, so the other
rule families stay quiet on it.
"""

# recheck-lint: check-shm-lifecycle

from __future__ import annotations

from multiprocessing import shared_memory


def _discard_segment(shm):
    shm.close()
    shm.unlink()


def good_failure_branch_unlinks(name, payload):
    shm = shared_memory.SharedMemory(name=name, create=True, size=len(payload))
    try:
        shm.buf[: len(payload)] = payload
    except BaseException:
        _discard_segment(shm)
        raise
    return shm


def good_direct_unlink(name):
    shm = shared_memory.SharedMemory(name=name, create=True, size=8)
    shm.close()
    shm.unlink()


def good_attach_only(name):
    # Attaching does not create the name; the creator owns the unlink.
    return shared_memory.SharedMemory(name=name)


def good_deliberate_allow(name):
    # A caller-owned segment: the registry that asked for it unlinks it.
    return shared_memory.SharedMemory(name=name, create=True, size=8)  # recheck-lint: allow(shm-lifecycle) — caller owns


def bad_leaked_segment(name, payload):
    shm = shared_memory.SharedMemory(name=name, create=True, size=len(payload))  # PLANTED: shm-lifecycle
    shm.buf[: len(payload)] = payload
    return shm.name
