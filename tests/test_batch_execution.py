"""Batched vectorized execution: parity with the row interpreter, batch
compiler semantics, RecordBatch mechanics, and the sampled size estimator."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    AggregateSpec,
    And,
    Comparison,
    FieldRef,
    JoinSpec,
    Literal,
    Not,
    Or,
    Query,
    QueryEngine,
    RangePredicate,
    ReCacheConfig,
    RecordBatch,
    TableRef,
)
from repro.engine.batch import concat_batches
from repro.engine.compiler import compile_batch_predicate, compile_predicate
from repro.engine.expressions import Arithmetic
from repro.formats import write_csv, write_json_lines
from repro.layouts import build_layout
from repro.layouts.base import EXACT_SIZE_THRESHOLD, estimate_sequence_bytes, estimate_value_bytes
from repro.workloads.nested import synthetic_order_lineitems
from repro.workloads.tpch import ORDER_LINEITEMS_SCHEMA
from tests.conftest import FLAT_SCHEMA, build_engine


# ---------------------------------------------------------------------------
# Parity harness
# ---------------------------------------------------------------------------
def _canonical(rows: list[dict]) -> list[dict]:
    """Rows in a comparable form (aggregate outputs may reorder groups)."""
    return sorted(rows, key=lambda row: tuple(str(item) for item in sorted(row.items())))


def _report_counters(report) -> dict:
    return {
        "rows_returned": report.rows_returned,
        "exact_hits": report.exact_hits,
        "subsumption_hits": report.subsumption_hits,
        "misses": report.misses,
        "lazy_upgrades": report.lazy_upgrades,
        "admissions": dict(report.admissions),
    }


def _cache_counters(engine: QueryEngine) -> dict:
    stats = engine.cache_stats
    return {
        "exact_hits": stats.exact_hits,
        "subsumption_hits": stats.subsumption_hits,
        "misses": stats.misses,
        "admissions_eager": stats.admissions_eager,
        "admissions_lazy": stats.admissions_lazy,
        "evictions": stats.evictions,
        "lazy_upgrades": stats.lazy_upgrades,
        "entries": len(engine.recache.entries()),
    }


def assert_parity(make_engine, queries: list[Query]) -> None:
    """Run ``queries`` on two fresh engines — one batched, one interpreted —
    and assert identical results, per-query counters and cache behaviour."""
    batched_engine = make_engine(vectorized_execution=True)
    interpreted_engine = make_engine(vectorized_execution=False)
    for index, query in enumerate(queries):
        batched = batched_engine.execute(query)
        interpreted = interpreted_engine.execute(query)
        assert _canonical(batched.results) == _canonical(interpreted.results), (
            f"result mismatch on query #{index} ({query.label or query.signature()})"
        )
        assert _report_counters(batched) == _report_counters(interpreted), (
            f"report mismatch on query #{index}"
        )
    assert _cache_counters(batched_engine) == _cache_counters(interpreted_engine)


def _spa(source, field, low, high, aggs, label=""):
    return Query.select_aggregate(
        source,
        RangePredicate(field, low, high),
        [AggregateSpec(func, FieldRef(path)) for func, path in aggs],
        label=label,
    )


FLAT_NESTED_WORKLOAD = [
    _spa("flat", "id", 50, 150, [("sum", "value"), ("count", "id")], "cold-flat"),
    _spa("flat", "id", 50, 150, [("sum", "value"), ("count", "id")], "exact-hit"),
    _spa("flat", "id", 80, 120, [("avg", "score"), ("min", "value")], "subsumed"),
    _spa("orders", "o_totalprice", 0, 1e6, [("sum", "lineitems.l_quantity")], "cold-nested"),
    _spa("orders", "o_totalprice", 0, 1e6, [("sum", "lineitems.l_quantity")], "nested-hit"),
    _spa("orders", "o_totalprice", 0, 1e6, [("count", "o_orderkey")], "record-level"),
    Query(
        tables=[
            TableRef("flat", RangePredicate("id", 0, 300)),
            TableRef("orders", RangePredicate("o_totalprice", 0, 1e6)),
        ],
        joins=[JoinSpec("flat", "id", "orders", "o_orderkey")],
        aggregates=[AggregateSpec("count", FieldRef("id")), AggregateSpec("sum", FieldRef("value"))],
        label="join",
    ),
    Query(
        tables=[TableRef("flat", RangePredicate("id", 0, 400))],
        aggregates=[AggregateSpec("sum", FieldRef("value")), AggregateSpec("count", FieldRef("id"))],
        group_by=["group"],
        label="group-by",
    ),
    # Bare scan: no predicate, no aggregates — required_fields() is empty and
    # the CSV path must read all fields in both pipelines.
    Query(tables=[TableRef("flat")], label="bare-scan"),
]


class TestExecutionParity:
    @pytest.fixture()
    def make_engine(self, dataset_dir):
        def build(**overrides):
            overrides.setdefault("admission_sample_records", 50)
            overrides.setdefault("adaptive_admission", False)
            overrides.setdefault("layout_selection", False)
            return build_engine(dataset_dir, ReCacheConfig(**overrides))

        return build

    def test_eager_workload_parity(self, make_engine):
        assert_parity(make_engine, FLAT_NESTED_WORKLOAD)

    def test_always_lazy_parity(self, make_engine):
        def lazy_engine(**overrides):
            overrides["always_lazy"] = True
            return make_engine(**overrides)

        assert_parity(lazy_engine, FLAT_NESTED_WORKLOAD)

    def test_lazy_upgrade_parity(self, make_engine):
        def upgrade_engine(**overrides):
            # Lazy admission on the first query, upgraded to eager on reuse.
            overrides["adaptive_admission"] = True
            overrides["admission_threshold"] = 1e-9
            return make_engine(**overrides)

        queries = [
            _spa("flat", "id", 50, 150, [("sum", "value")], "cold"),
            _spa("flat", "id", 50, 150, [("sum", "value")], "upgrading-hit"),
            _spa("flat", "id", 50, 150, [("sum", "value")], "eager-hit"),
        ]
        assert_parity(upgrade_engine, queries)

    def test_eviction_parity(self, make_engine):
        def bounded_engine(**overrides):
            overrides["cache_size_limit"] = 6_000
            return make_engine(**overrides)

        queries = [
            _spa("flat", "id", 0, 100, [("sum", "value")], "a"),
            _spa("flat", "id", 100, 200, [("sum", "value")], "b"),
            _spa("flat", "id", 200, 300, [("sum", "value")], "c"),
            _spa("flat", "id", 0, 100, [("sum", "value")], "a-again"),
        ]
        assert_parity(bounded_engine, queries)

    def test_row_layout_parity(self, make_engine):
        def row_engine(**overrides):
            overrides["default_flat_layout"] = "row"
            return make_engine(**overrides)

        queries = FLAT_NESTED_WORKLOAD[:3]
        assert_parity(row_engine, queries)

    def test_columnar_nested_layout_parity(self, make_engine):
        def columnar_engine(**overrides):
            overrides["default_nested_layout"] = "columnar"
            return make_engine(**overrides)

        assert_parity(columnar_engine, FLAT_NESTED_WORKLOAD[3:6])

    def test_batch_size_one_degenerate_case(self, make_engine):
        def tiny_batches(**overrides):
            overrides["batch_size"] = 1
            return make_engine(**overrides)

        assert_parity(tiny_batches, FLAT_NESTED_WORKLOAD)

    def test_caching_disabled_parity(self, make_engine):
        def no_cache(**overrides):
            overrides["caching_enabled"] = False
            return make_engine(**overrides)

        assert_parity(no_cache, FLAT_NESTED_WORKLOAD)

    def test_per_query_vectorized_override(self, make_engine):
        engine = make_engine(vectorized_execution=True)
        query = FLAT_NESTED_WORKLOAD[0]
        batched = engine.execute(query, vectorized=True)
        interpreted = engine.execute(query, vectorized=False)
        assert batched.results == interpreted.results
        assert interpreted.exact_hits == 1


class TestEdgeCaseParity:
    """Empty files, blank lines and degenerate nested records, both formats."""

    @pytest.fixture()
    def edge_dir(self, tmp_path):
        write_csv(tmp_path / "empty.csv", FLAT_SCHEMA, [])
        (tmp_path / "blank.csv").write_text(
            "1|0.5|0|1.0\n\n2|1.5|1|2.0\n\n\n3|2.5|2|3.0\n", encoding="utf-8"
        )
        write_json_lines(tmp_path / "empty.json", [])
        records = synthetic_order_lineitems(5, seed=11)
        # One record with an empty nested collection and one with nulls.
        records[2]["lineitems"] = []
        records[3]["o_totalprice"] = None
        lines = "\n".join(json.dumps(record, separators=(",", ":")) for record in records)
        # A trailing blank line exercises the positional-map blank-line handling.
        (tmp_path / "edge.json").write_text(lines + "\n\n", encoding="utf-8")
        return tmp_path

    def _engines(self, edge_dir, **overrides):
        overrides.setdefault("adaptive_admission", False)
        overrides.setdefault("layout_selection", False)
        engines = []
        for vectorized in (True, False):
            engine = QueryEngine(ReCacheConfig(vectorized_execution=vectorized, **overrides))
            engine.register_csv("empty_csv", edge_dir / "empty.csv", FLAT_SCHEMA)
            engine.register_csv("blank_csv", edge_dir / "blank.csv", FLAT_SCHEMA)
            engine.register_json("empty_json", edge_dir / "empty.json", ORDER_LINEITEMS_SCHEMA)
            engine.register_json("edge_json", edge_dir / "edge.json", ORDER_LINEITEMS_SCHEMA)
            engines.append(engine)
        return engines

    def test_edge_sources_parity(self, edge_dir):
        batched, interpreted = self._engines(edge_dir)
        queries = [
            _spa("empty_csv", "id", 0, 10, [("count", "id")], "empty-csv"),
            _spa("blank_csv", "id", 0, 10, [("sum", "value"), ("count", "id")], "blank-csv"),
            _spa("blank_csv", "id", 0, 10, [("sum", "value")], "blank-csv-hit"),
            _spa("empty_json", "o_totalprice", 0, 1e9, [("count", "o_orderkey")], "empty-json"),
            _spa("edge_json", "o_totalprice", 0, 1e9, [("count", "o_orderkey")], "edge-records"),
            _spa("edge_json", "o_totalprice", 0, 1e9, [("sum", "lineitems.l_quantity")], "edge-nested"),
            _spa("edge_json", "o_totalprice", 0, 1e9, [("sum", "lineitems.l_quantity")], "edge-hit"),
        ]
        for query in queries:
            left = batched.execute(query)
            right = interpreted.execute(query)
            assert _canonical(left.results) == _canonical(right.results), query.label
            assert _report_counters(left) == _report_counters(right), query.label
        assert _cache_counters(batched) == _cache_counters(interpreted)

    def test_batch_size_one_edge_sources(self, edge_dir):
        batched, interpreted = self._engines(edge_dir, batch_size=1)
        query = _spa("edge_json", "o_totalprice", 0, 1e9, [("sum", "lineitems.l_quantity")])
        assert batched.execute(query).results == interpreted.execute(query).results


# ---------------------------------------------------------------------------
# Batch predicate compiler
# ---------------------------------------------------------------------------
def _mask_matches_rows(expr, rows: list[dict]) -> None:
    batch = RecordBatch.from_rows(rows, sorted({key for row in rows for key in row}))
    mask = compile_batch_predicate(expr)(batch)
    row_predicate = compile_predicate(expr)
    expected = np.array([bool(row_predicate(row)) for row in rows], dtype=bool)
    assert mask.dtype == np.bool_
    np.testing.assert_array_equal(mask, expected, err_msg=expr.signature())


class TestBatchPredicates:
    ROWS = [
        {"a": 1, "b": 10.0, "s": "x"},
        {"a": 2, "b": None, "s": "y"},
        {"a": None, "b": 3.5, "s": None},
        {"a": 4, "b": -1.0, "s": "x"},
        {"a": 5, "b": 0.0, "s": "z"},
    ]

    @pytest.mark.parametrize(
        "expr",
        [
            RangePredicate("a", 2, 4),
            RangePredicate("a", 2, 4, low_inclusive=False),
            RangePredicate("a", 2, 4, high_inclusive=False),
            Comparison("<", FieldRef("a"), Literal(3)),
            Comparison(">=", FieldRef("b"), Literal(0.0)),
            Comparison("==", FieldRef("a"), Literal(2)),
            Comparison("!=", FieldRef("a"), Literal(2)),
            Comparison("<", FieldRef("a"), FieldRef("b")),
            And([RangePredicate("a", 1, 5), Comparison(">", FieldRef("b"), Literal(0))]),
            Or([Comparison("==", FieldRef("a"), Literal(1)), RangePredicate("b", 3, 4)]),
            Not(RangePredicate("a", 2, 4)),
            Not(Comparison("!=", FieldRef("a"), Literal(2))),
        ],
    )
    def test_vectorized_masks_match_interpreter(self, expr):
        _mask_matches_rows(expr, self.ROWS)

    @pytest.mark.parametrize(
        "expr",
        [
            Comparison("==", FieldRef("s"), Literal("x")),  # string literal
            Comparison("!=", FieldRef("s"), Literal("x")),
            And([RangePredicate("a", 1, 5), Comparison("==", FieldRef("s"), Literal("y"))]),
        ],
    )
    def test_fallback_masks_match_interpreter(self, expr):
        _mask_matches_rows(expr, self.ROWS)

    @pytest.mark.parametrize(
        "expr",
        [
            # Arithmetic over nullable fields: None propagates to a False
            # comparison in both pipelines (never a TypeError).
            Comparison(">", Arithmetic("+", FieldRef("a"), Literal(1)), Literal(3)),
            Comparison("!=", Arithmetic("*", FieldRef("a"), FieldRef("b")), Literal(4.0)),
            Comparison("<=", Literal(0.0), Arithmetic("-", FieldRef("b"), FieldRef("a"))),
        ],
    )
    def test_arithmetic_null_semantics_match(self, expr):
        _mask_matches_rows(expr, self.ROWS)

    def test_missing_column_reads_as_null(self):
        _mask_matches_rows(RangePredicate("missing", 0, 1), self.ROWS)
        _mask_matches_rows(Not(RangePredicate("missing", 0, 1)), self.ROWS)

    def test_digit_strings_are_not_coerced_to_numbers(self):
        # NumPy would parse '12' as 12.0; the interpreter raises TypeError on
        # str-vs-int comparison, so the batch must fall back (and raise too).
        batch = RecordBatch.from_rows([{"zip": "12"}, {"zip": "7"}], ["zip"])
        assert batch.numeric_view("zip") is None
        with pytest.raises(TypeError):
            compile_batch_predicate(Comparison(">", FieldRef("zip"), Literal(10)))(batch)

    def test_none_predicate_accepts_everything(self):
        batch = RecordBatch.from_rows(self.ROWS, ["a", "b", "s"])
        assert compile_batch_predicate(None)(batch).all()

    def test_closure_cache_is_order_faithful(self):
        # And children sort identically in the *signature*, so these two
        # predicates would collide on a signature-keyed cache — but their
        # short-circuit order differs: only `ordered` guards the division.
        division = Comparison(">", Arithmetic("/", Literal(1.0), FieldRef("a")), Literal(0.5))
        positive = Comparison(">", FieldRef("a"), Literal(0))
        unordered = And([division, positive])
        ordered = And([positive, division])
        assert unordered.signature() == ordered.signature()
        unguarded = compile_predicate(unordered)
        guarded = compile_predicate(ordered)
        assert guarded({"a": 0}) is False  # guard short-circuits the division
        with pytest.raises(ZeroDivisionError):
            unguarded({"a": 0})


# ---------------------------------------------------------------------------
# RecordBatch mechanics
# ---------------------------------------------------------------------------
class TestNumpyGroupBy:
    """The NumPy-backed grouped aggregation mirrors aggregate_rows exactly."""

    def _specs(self):
        from repro.engine.expressions import AggregateSpec

        return [
            AggregateSpec("sum", FieldRef("v")),
            AggregateSpec("avg", FieldRef("v")),
            AggregateSpec("count", FieldRef("v")),
            AggregateSpec("min", FieldRef("v")),
            AggregateSpec("max", FieldRef("v")),
        ]

    def _assert_parity(self, rows, group_by):
        from repro.engine.compiler import compile_aggregates
        from repro.engine.operators import aggregate_batches, aggregate_rows

        expected = aggregate_rows(rows, compile_aggregates(self._specs()), group_by)
        batches = [RecordBatch.from_rows(rows[i : i + 3]) for i in range(0, len(rows), 3)]
        got = aggregate_batches(batches, compile_aggregates(self._specs()), group_by)
        assert got == expected
        for got_row, expected_row in zip(got, expected):
            assert list(got_row) == list(expected_row)  # first-occurrence order
            assert [type(value) for value in got_row.values()] == [
                type(value) for value in expected_row.values()
            ]
        return got

    def test_numeric_keys_with_nulls_and_mixed_types(self):
        rows = [
            {"g": 1, "v": 1.5},
            {"g": 1.0, "v": 2.5},  # merges with int 1 (dict and float hashing agree)
            {"g": True, "v": 4.0},  # ... and so does True
            {"g": None, "v": 3.0},  # null key forces the dict factorize path
            {"g": 2, "v": None},  # null value: dropped from every aggregate
        ]
        self._assert_parity(rows, ["g"])

    def test_string_and_multi_key_grouping(self):
        rows = [
            {"g": "a", "h": 1, "v": 1.0},
            {"g": "b", "h": 1, "v": 2.0},
            {"g": "a", "h": 2, "v": 4.0},
            {"g": "a", "h": 1, "v": 8.0},
            {"g": None, "h": 1, "v": 16.0},
        ]
        self._assert_parity(rows, ["g"])
        self._assert_parity(rows, ["g", "h"])

    def test_huge_integer_keys_do_not_merge_in_float64(self):
        """Regression: 2**53 and 2**53 + 1 coerce to the same float64; the
        factorize fast path must detect the magnitude and fall back to the
        dict pass instead of silently merging distinct groups."""
        rows = [{"g": 2**53, "v": 1.0}, {"g": 2**53 + 1, "v": 10.0}]
        results = self._assert_parity(rows, ["g"])
        assert len(results) == 2

    def test_empty_input_yields_no_groups(self):
        from repro.engine.compiler import compile_aggregates
        from repro.engine.operators import aggregate_batches

        assert aggregate_batches([], compile_aggregates(self._specs()), ["g"]) == []


class TestColumnarResult:
    """The columnar exit container: row parity, column access, wrapping."""

    def _result(self):
        from repro import ColumnarResult

        batches = [
            RecordBatch.from_rows([{"a": 1, "b": 0.5}, {"a": 2, "b": None}], ["a", "b"]),
            RecordBatch.from_rows([{"a": 3, "b": 2.5}], ["a", "b"]),
        ]
        return ColumnarResult(batches)

    def test_to_rows_matches_rows_from_batches_bit_for_bit(self):
        result = self._result()
        assert result.to_rows() == [
            {"a": 1, "b": 0.5},
            {"a": 2, "b": None},
            {"a": 3, "b": 2.5},
        ]
        assert list(result.iter_rows()) == result.to_rows()
        assert len(result) == result.row_count == 3

    def test_column_access_spans_batches(self):
        result = self._result()
        assert result.field_names() == ["a", "b"]
        assert result.column("a") == [1, 2, 3]
        assert result.column("missing") == [None, None, None]
        numeric = result.numeric_column("b")
        assert numeric is not None and numeric.shape == (3,)
        assert np.isnan(numeric[1]) and numeric[2] == 2.5

    def test_numeric_column_is_read_only_and_never_aliases_writably(self):
        """A single-batch result can alias a cache layout's internal array;
        the exposed view must reject in-place writes (silent cache corruption
        otherwise)."""
        from repro import ColumnarResult

        batch = RecordBatch.from_rows([{"b": 1.0}, {"b": 2.0}], ["b"])
        backing = batch.numeric_view("b")
        result = ColumnarResult([batch])
        view = result.numeric_column("b")
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 99.0
        assert backing[0] == 1.0 and backing.flags.writeable  # pipeline view untouched
        multi = self._result().numeric_column("b")
        assert not multi.flags.writeable

    def test_non_numeric_column_has_no_view(self):
        from repro import ColumnarResult

        result = ColumnarResult([RecordBatch.from_rows([{"s": "x"}], ["s"])])
        assert result.numeric_column("s") is None
        assert ColumnarResult([]).numeric_column("s") is None

    def test_from_rows_roundtrip_and_empty(self):
        from repro import ColumnarResult

        rows = [{"a": 1, "b": "x"}, {"a": None, "b": "y"}]
        assert ColumnarResult.from_rows(rows).to_rows() == rows
        empty = ColumnarResult.from_rows([])
        assert empty.to_rows() == [] and len(empty) == 0 and not empty.batches

    def test_empty_batches_are_dropped_but_batches_are_shared(self):
        from repro import ColumnarResult

        batch = RecordBatch.from_rows([{"a": 1}], ["a"])
        result = ColumnarResult([RecordBatch({}, 0), batch])
        assert result.batches == [batch]
        assert result.batches[0] is batch


class TestRecordBatch:
    def test_take_project_and_rows_roundtrip(self):
        rows = [{"a": i, "b": i * 0.5} for i in range(10)]
        batch = RecordBatch.from_rows(rows, ["a", "b"])
        taken = batch.take([1, 3, 5])
        assert taken.to_rows() == [rows[1], rows[3], rows[5]]
        projected = batch.project(["b", "missing"])
        assert projected.to_rows()[0] == {"b": 0.0, "missing": None}

    def test_slice_records_with_grouping(self):
        batch = RecordBatch(
            {"v": [1, 2, 3, 4, 5, 6]},
            record_row_counts=[2, 1, 3],
            records=["r0", "r1", "r2"],
            record_bytes=[20, 10, 30],
        )
        head = batch.slice_records(0, 2)
        tail = batch.slice_records(2, 3)
        assert head.column("v") == [1, 2, 3] and head.records == ["r0", "r1"]
        assert tail.column("v") == [4, 5, 6] and tail.record_bytes == [30]
        assert head.record_count == 2 and tail.record_count == 1

    def test_record_level_mask_helpers(self):
        batch = RecordBatch({"v": [0, 1, 1, 0, 1]}, record_row_counts=[2, 2, 1])
        mask = np.array([False, True, True, False, True])
        assert batch.records_with_true(mask).tolist() == [0, 1, 2]
        assert batch.first_true_per_record(mask).tolist() == [1, 2, 4]

    def test_concat_preserves_order_and_union_fields(self):
        left = RecordBatch({"a": [1, 2]})
        right = RecordBatch({"a": [3], "b": ["x"]})
        merged = concat_batches([left, right])
        assert merged.column("a") == [1, 2, 3]
        assert merged.column("b") == [None, None, "x"]

    def test_concat_propagates_fully_built_numeric_views(self):
        left = RecordBatch({"a": [1, 2], "b": [1.0, 2.0]})
        right = RecordBatch({"a": [3], "b": [3.0]})
        for batch in (left, right):
            batch.numeric_view("a")
        merged = concat_batches([left, right])
        assert merged._numeric["a"].tolist() == [1.0, 2.0, 3.0]
        # A column not converted on every input stays lazy (never built here).
        assert "b" not in merged._numeric

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            RecordBatch({"a": [1, 2], "b": [1]})


# ---------------------------------------------------------------------------
# Layout batch scans
# ---------------------------------------------------------------------------
class TestLayoutBatchScans:
    @pytest.mark.parametrize("layout_name", ["row", "columnar"])
    def test_flat_layout_batches_match_scan(self, layout_name):
        rows = [{"a": i, "b": float(i) / 3} for i in range(57)]
        schema = FLAT_SCHEMA  # schema content unused by flat layouts
        layout = build_layout(layout_name, schema, ["a", "b"], rows=rows)
        scanned = list(layout.scan(fields=["b", "a"]))
        batched = []
        for batch in layout.scan_batches(fields=["b", "a"], batch_size=10):
            batched.extend(batch.to_rows())
        assert batched == scanned

    def test_columnar_dedupe_batches_match_scan(self):
        rows = [{"a": i // 2, "b": i} for i in range(20)]
        layout = build_layout(
            "columnar", FLAT_SCHEMA, ["a", "b"], rows=rows, record_row_counts=[2] * 10
        )
        scanned = list(layout.scan(fields=["a"], dedupe_records=True))
        batched = []
        for batch in layout.scan_batches(fields=["a"], batch_size=3, dedupe_records=True):
            batched.extend(batch.to_rows())
        assert batched == scanned

    def test_layout_numeric_arrays_reject_digit_strings(self):
        rows = [{"a": i, "z": str(i)} for i in range(10)]
        layout = build_layout("columnar", FLAT_SCHEMA, ["a", "z"], rows=rows)
        assert layout.numeric_array("a") is not None
        assert layout.numeric_array("z") is None
        assert not layout.supports_range_filter(["z"])

    def test_columnar_range_filtered_batch_matches_iterator(self):
        rows = [{"a": i, "b": float(i % 7)} for i in range(40)]
        layout = build_layout("columnar", FLAT_SCHEMA, ["a", "b"], rows=rows)
        ranges = {"b": (2.0, 5.0)}
        expected = list(layout.scan_range_filtered(ranges, fields=["a", "b"]))
        batch = layout.range_filtered_batch(ranges, fields=["a", "b"])
        assert batch.to_rows() == expected
        # The gathered numeric views stay aligned with the gathered columns.
        view = batch.numeric_view("b")
        assert view is not None and view.tolist() == [row["b"] for row in expected]


# ---------------------------------------------------------------------------
# Sampled size estimation
# ---------------------------------------------------------------------------
class TestSampledSizeEstimation:
    def test_small_columns_are_exact(self):
        values = ["x" * (i % 11) for i in range(EXACT_SIZE_THRESHOLD)]
        assert estimate_sequence_bytes(values) == sum(estimate_value_bytes(v) for v in values)

    def test_large_columns_within_a_few_percent(self):
        values = [i * 1.0 if i % 3 else "word-%d" % i for i in range(50_000)]
        exact = sum(estimate_value_bytes(v) for v in values)
        sampled = estimate_sequence_bytes(values)
        assert abs(sampled - exact) / exact < 0.05

    def test_uniform_values_are_estimated_exactly(self):
        values = [1.5] * 10_000
        assert estimate_sequence_bytes(values) == 8 * 10_000
