"""End-to-end tests: planning, execution, caching behaviour and consistency."""

import pytest

from repro import (
    AggregateSpec,
    FieldRef,
    JoinSpec,
    Query,
    QueryEngine,
    RangePredicate,
    ReCacheConfig,
    TableRef,
)
from repro.engine.algebra import AggregateNode, CacheScanNode, MaterializeNode
from repro.engine.optimizer import required_fields
from repro.workloads.runner import WorkloadRunner
from tests.conftest import build_engine


def flat_query(low=50, high=150, agg_field="value", label=""):
    return Query.select_aggregate(
        "flat",
        RangePredicate("id", low, high),
        [AggregateSpec("sum", FieldRef(agg_field)), AggregateSpec("count", FieldRef("id"))],
        label=label,
    )


def nested_query(low=0, high=1e6, field="lineitems.l_quantity"):
    return Query.select_aggregate(
        "orders",
        RangePredicate("o_totalprice", low, high),
        [AggregateSpec("sum", FieldRef(field)), AggregateSpec("count", FieldRef("o_orderkey"))],
    )


def join_query():
    return Query(
        tables=[
            TableRef("flat", RangePredicate("id", 0, 300)),
            TableRef("orders", RangePredicate("o_totalprice", 0, 1e6)),
        ],
        joins=[JoinSpec("flat", "id", "orders", "o_orderkey")],
        aggregates=[AggregateSpec("count", FieldRef("id")), AggregateSpec("sum", FieldRef("value"))],
    )


class TestQuerySpecs:
    def test_validation(self):
        with pytest.raises(ValueError):
            Query(tables=[])
        with pytest.raises(ValueError):
            Query(tables=[TableRef("a"), TableRef("a")])
        with pytest.raises(ValueError):
            Query(tables=[TableRef("a")], joins=[JoinSpec("a", "x", "b", "y")])

    def test_required_fields(self, engine):
        fields = required_fields(join_query(), engine.catalog, "flat")
        assert fields == ["id", "value"]
        nested_fields = required_fields(nested_query(), engine.catalog, "orders")
        assert "lineitems.l_quantity" in nested_fields and "o_totalprice" in nested_fields

    def test_unknown_field_rejected(self, engine):
        bad = Query.select_aggregate("flat", RangePredicate("nope", 0, 1), [AggregateSpec("count", FieldRef("id"))])
        with pytest.raises(KeyError):
            engine.execute(bad)


class TestPlanning:
    def test_plan_materializes_on_miss_and_reuses_on_hit(self, engine):
        info = engine.plan(flat_query())
        assert isinstance(info.plan, AggregateNode)
        assert isinstance(info.table_plans["flat"], MaterializeNode)
        engine.execute(flat_query())
        info_after = engine.plan(flat_query())
        assert isinstance(info_after.table_plans["flat"], CacheScanNode)
        assert info_after.exact_hits == 1

    def test_explain_renders_tree(self, engine):
        text = engine.explain(join_query())
        assert "HashJoin" in text and "Materialize" in text and "Aggregate" in text


class TestExecutionConsistency:
    def test_repeated_query_same_result_and_cache_hit(self, engine):
        first = engine.execute(flat_query())
        second = engine.execute(flat_query())
        assert first.results == second.results
        assert second.exact_hits == 1 and second.misses == 0
        assert first.rows_returned == 1

    def test_subsumption_gives_same_result_as_cold_engine(self, engine, dataset_dir):
        engine.execute(flat_query(0, 400))
        warm = engine.execute(flat_query(100, 200, label="narrow"))
        cold = build_engine(dataset_dir, ReCacheConfig(caching_enabled=False)).execute(
            flat_query(100, 200)
        )
        assert warm.subsumption_hits == 1
        assert warm.results == cold.results

    def test_nested_query_consistency_across_configs(self, dataset_dir):
        configs = {
            "none": ReCacheConfig(caching_enabled=False),
            "parquet": ReCacheConfig(adaptive_admission=False, default_nested_layout="parquet"),
            "columnar": ReCacheConfig(
                adaptive_admission=False, default_nested_layout="columnar", layout_selection=False
            ),
            "lazy": ReCacheConfig(always_lazy=True, upgrade_lazy_on_reuse=False),
        }
        queries = [
            nested_query(),
            nested_query(field="o_totalprice"),
            nested_query(low=100000, high=400000),
            join_query(),
        ]
        baselines = None
        for config in configs.values():
            engine = build_engine(dataset_dir, config)
            results = []
            for query in queries:
                engine.execute(query)  # first run populates caches
                results.append(engine.execute(query).results)
            if baselines is None:
                baselines = results
            else:
                for base, got in zip(baselines, results):
                    for brow, grow in zip(base, got):
                        for key, value in brow.items():
                            if isinstance(value, float):
                                assert grow[key] == pytest.approx(value, rel=1e-9)
                            else:
                                assert grow[key] == value

    def test_join_with_caching_matches_cold(self, engine, dataset_dir):
        cold = build_engine(dataset_dir, ReCacheConfig(caching_enabled=False)).execute(join_query())
        engine.execute(join_query())
        warm = engine.execute(join_query())
        assert warm.cache_hits >= 1
        assert warm.results[0]["count($id)"] == cold.results[0]["count($id)"]

    def test_group_by(self, engine):
        query = Query(
            tables=[TableRef("flat", RangePredicate("id", 0, 100))],
            aggregates=[AggregateSpec("count", FieldRef("id"))],
            group_by=["group"],
        )
        report = engine.execute(query)
        assert report.rows_returned == 10
        assert sum(row["count($id)"] for row in report.results) == 101


class TestCachingBehaviour:
    def test_lazy_config_admits_offsets_only(self, dataset_dir):
        engine = build_engine(dataset_dir, ReCacheConfig(always_lazy=True, upgrade_lazy_on_reuse=False))
        engine.execute(flat_query())
        entries = engine.cache_entries()
        assert entries and all(entry.is_lazy for entry in entries)

    def test_lazy_entry_upgraded_on_reuse(self, dataset_dir):
        config = ReCacheConfig(always_lazy=False, adaptive_admission=True, admission_threshold=0.0001,
                               admission_sample_records=20)
        engine = build_engine(dataset_dir, config)
        engine.execute(nested_query())
        assert any(entry.is_lazy for entry in engine.cache_entries())
        engine.execute(nested_query())
        assert engine.cache_stats.lazy_upgrades >= 1

    def test_eviction_under_memory_pressure(self, dataset_dir):
        engine = build_engine(
            dataset_dir, ReCacheConfig(cache_size_limit=30_000, adaptive_admission=False)
        )
        for i in range(6):
            engine.execute(flat_query(i * 10, i * 10 + 200, label=f"q{i}"))
            engine.execute(nested_query(low=i * 1000, high=500000 + i * 1000))
        assert engine.cached_bytes() <= 30_000
        assert engine.cache_stats.evictions > 0

    def test_caching_disabled_never_caches(self, dataset_dir):
        engine = build_engine(dataset_dir, ReCacheConfig(caching_enabled=False))
        engine.execute(flat_query())
        assert len(engine.cache_entries()) == 0

    def test_report_fields(self, engine):
        report = engine.execute(flat_query())
        data = report.as_dict()
        assert data["misses"] == 1 and data["total_time"] > 0
        assert 0.0 <= report.caching_overhead < 1.0


class TestWorkloadRunner:
    def test_runner_collects_per_query_metrics(self, engine):
        runner = WorkloadRunner(engine)
        queries = [flat_query(i, i + 100, label=f"q{i}") for i in range(0, 50, 10)]
        result = runner.run(queries, label="unit")
        assert result.query_count == 5
        assert len(result.cumulative_times) == 5
        assert result.cumulative_times[-1] == pytest.approx(result.total_time)
        assert result.summary()["label"] == "unit"
        assert result.tail_total_time(2) <= result.total_time

    def test_offline_policy_receives_schedule(self, dataset_dir):
        engine = build_engine(
            dataset_dir,
            ReCacheConfig(eviction_policy="offline-farthest", adaptive_admission=False),
        )
        runner = WorkloadRunner(engine)
        queries = [flat_query(0, 100), flat_query(0, 100), flat_query(50, 80)]
        runner.run(queries)
        assert engine.recache.policy._future  # the schedule was installed
