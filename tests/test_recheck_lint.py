"""recheck-lint self-test: seeded violations fire exactly, real tree is clean.

The corpus under ``tests/lint_corpus/`` plants one violation per ``# PLANTED:
<rule>`` comment.  The analyzer must flag *exactly* those (path, rule, line)
triples — firing elsewhere is a false positive, staying silent on a planted
line is a false negative — and must report zero violations on ``src``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.analysis import lint as lint_cli
from repro.analysis.invariants import (
    BEGIN_MARKER,
    CONTRACTS_BEGIN_MARKER,
    CONTRACTS_END_MARKER,
    END_MARKER,
    render_contracts_markdown,
    render_invariants_markdown,
)
from repro.analysis.lint import CHECKERS, run_lint

ROOT = Path(__file__).resolve().parents[1]
CORPUS = Path(__file__).resolve().parent / "lint_corpus"
_PLANTED_RE = re.compile(r"#\s*PLANTED:\s*([\w-]+)")


def planted_expectations() -> set[tuple[str, str, int]]:
    """Every (path, rule, line) the corpus declares via ``# PLANTED:``."""
    expected: set[tuple[str, str, int]] = set()
    for path in sorted(CORPUS.glob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = _PLANTED_RE.search(line)
            if match:
                expected.add((str(path), match.group(1), lineno))
    return expected


def test_corpus_exercises_every_rule_family():
    planted_rules = {rule for _, rule, _ in planted_expectations()}
    # lock-order and raise-flow each own a second rule; the corpus must
    # cover those companions too.
    assert planted_rules == set(CHECKERS) | {"heavy-work", "reservation-leak"}


def test_seeded_violations_fire_exactly_at_planted_lines():
    violations, report = run_lint([CORPUS])
    found = {(v.path, v.rule, v.line) for v in violations}
    expected = planted_expectations()
    assert found == expected, (
        f"false positives: {sorted(found - expected)}; "
        f"false negatives: {sorted(expected - found)}"
    )
    assert report["violation_count"] == len(expected)
    assert report["parse_errors"] == []
    # Every violation renders with a clickable path:line prefix.
    for violation in violations:
        assert violation.render().startswith(f"{violation.path}:{violation.line}: ")


def test_rule_selection_runs_only_requested_families():
    violations, report = run_lint([CORPUS], rules=["dtype-view"])
    assert {v.rule for v in violations} == {"dtype-view"}
    assert report["rules"] == ["dtype-view"]


def test_real_tree_is_clean():
    violations, report = run_lint([ROOT / "src"])
    assert [v.render() for v in violations] == []
    assert report["parse_errors"] == []
    assert report["files_scanned"] > 50  # the whole tree, not a subset


def test_report_archives_raise_sets_and_wall_time():
    """The CI report carries the inferred per-function exception sets."""
    _, report = run_lint([ROOT / "src"])
    raise_sets = report["raise_sets"]
    # The interprocedural inference must reproduce the documented contracts.
    assert raise_sets["QueryEngine.execute"] == [
        "DeadlineExceeded",
        "TransientScanError",
        "WorkerCrashed",
    ]
    assert "TransientScanError" in raise_sets["execute_plan"]
    # record_reuse's contract is "raises nothing": it must not appear at all.
    assert "ReCache.record_reuse" not in raise_sets
    assert isinstance(report["wall_time_seconds"], float)
    assert report["wall_time_seconds"] < 10.0
    assert all(isinstance(w, str) for w in report["callgraph_warnings"])


def test_cli_exit_codes_and_json_report(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    assert lint_cli.main([str(CORPUS), "--json", str(report_path)]) == 1
    data = json.loads(report_path.read_text())
    assert data["tool"] == "recheck-lint"
    assert data["violation_count"] == len(planted_expectations())
    assert {v["rule"] for v in data["violations"]} == set(CHECKERS) | {
        "heavy-work",
        "reservation-leak",
    }

    assert lint_cli.main([str(ROOT / "src"), "--json", str(report_path)]) == 0
    data = json.loads(report_path.read_text())
    assert data["violation_count"] == 0
    out = capsys.readouterr().out
    assert "recheck-lint: 0 violation(s)" in out


def test_readme_invariants_section_matches_declarations():
    """The README's concurrency table is generated — it must not drift."""
    readme = (ROOT / "README.md").read_text()
    assert BEGIN_MARKER in readme and END_MARKER in readme
    start = readme.index(BEGIN_MARKER) + len(BEGIN_MARKER)
    end = readme.index(END_MARKER)
    assert readme[start:end].strip("\n") == render_invariants_markdown().strip("\n")


def test_readme_contracts_section_matches_declarations():
    """The README's static-verification tables are generated — no drift."""
    readme = (ROOT / "README.md").read_text()
    assert CONTRACTS_BEGIN_MARKER in readme and CONTRACTS_END_MARKER in readme
    start = readme.index(CONTRACTS_BEGIN_MARKER) + len(CONTRACTS_BEGIN_MARKER)
    end = readme.index(CONTRACTS_END_MARKER)
    assert readme[start:end].strip("\n") == render_contracts_markdown().strip("\n")
