"""End-to-end failure containment: retries, quarantine, breaker, deadlines, shedding.

Every test injects a seeded fault through :mod:`repro.faults` and asserts the
stack contains it: the query either completes with a bit-identical result
(counted in the report) or fails with one typed error — and the cache's byte
accounting always returns to baseline (``assert_budget_conserved``).
"""

from __future__ import annotations

import time

import pytest

from repro import EngineServer, Query, ReCacheConfig
from repro.core.circuit_breaker import SourceCircuitBreaker
from repro.core.errors import (
    DeadlineExceeded,
    QueryRejected,
    TransientScanError,
    WorkerCrashed,
)
from repro.engine.expressions import AggregateSpec, FieldRef, RangePredicate
from repro.engine.algebra import CacheScanNode, MaterializeNode
from repro.engine.optimizer import build_plan
from repro.engine.query import TableRef
from repro.faults import runtime as faults

from tests.conftest import build_engine


def flat_query(low: float = 10.0, high: float = 150.0, label: str = "contain") -> Query:
    return Query.select_aggregate(
        "flat",
        RangePredicate("value", low, high),
        [AggregateSpec("sum", FieldRef("score")), AggregateSpec("count", FieldRef("id"))],
        label=label,
    )


def flat_rows_query(low: float = 10.0, high: float = 150.0) -> Query:
    """A projection query (no aggregates) so degraded row parity is row-level."""
    return Query(tables=[TableRef("flat", RangePredicate("value", low, high))])


@pytest.fixture()
def baseline(dataset_dir):
    """Fault-free reference results, computed once per test."""
    engine = build_engine(dataset_dir, ReCacheConfig(caching_enabled=False))

    def run(query: Query, **kwargs):
        return engine.execute(query, **kwargs).results

    return run


# ---------------------------------------------------------------------------
# Retry-with-backoff on transient scan faults
# ---------------------------------------------------------------------------
def test_transient_scan_fault_is_retried(dataset_dir, baseline, assert_budget_conserved):
    engine = build_engine(
        dataset_dir, ReCacheConfig(scan_retry_limit=2, scan_retry_backoff=0.001)
    )
    assert_budget_conserved(engine.recache)
    query = flat_query()
    with faults.activate("scan.raw:io_error:limit=1", seed=3):
        report = engine.execute(query)
    assert report.retries == 1
    assert report.results == baseline(query)


def test_retry_limit_exhaustion_surfaces_typed_error(dataset_dir, assert_budget_conserved):
    engine = build_engine(
        dataset_dir, ReCacheConfig(scan_retry_limit=1, scan_retry_backoff=0.001)
    )
    assert_budget_conserved(engine.recache)
    with faults.activate("scan.raw:io_error", seed=3):  # every attempt faults
        with pytest.raises(TransientScanError):
            engine.execute(flat_query())
    # A failed attempt leaves no cache state behind (admission is scan-final).
    assert not engine.cache_entries()


def test_failed_attempts_do_not_count_queries(dataset_dir):
    engine = build_engine(
        dataset_dir, ReCacheConfig(scan_retry_limit=3, scan_retry_backoff=0.001)
    )
    with faults.activate("scan.raw:io_error:limit=2", seed=5):
        report = engine.execute(flat_query())
    assert report.retries == 2
    assert engine.query_count == 1  # one logical query despite three attempts


# ---------------------------------------------------------------------------
# Poisoned-entry quarantine + transparent degradation to the raw source
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("vectorized", [False, True])
def test_corrupt_layout_scan_quarantines_and_degrades(
    dataset_dir, baseline, assert_budget_conserved, vectorized
):
    # adaptive_admission=False forces an eager (materialized-layout) entry —
    # the corrupt fault targets layout scans, not lazy raw re-reads.
    engine = build_engine(dataset_dir, ReCacheConfig(adaptive_admission=False))
    assert_budget_conserved(engine.recache)
    query = flat_query()
    warm = engine.execute(query, vectorized=vectorized)  # warms the cache
    assert engine.cache_entries(), "test needs a resident entry to poison"
    with faults.activate("scan.layout:corrupt:limit=1", seed=9):
        report = engine.execute(query, vectorized=vectorized)
    assert report.quarantined_entries == 1
    assert report.degraded_scans == 1
    assert report.results == warm.results == baseline(query, vectorized=vectorized)
    assert engine.recache.stats.extras.get("quarantined", 0) == 1


def test_quarantined_rows_query_parity(dataset_dir, baseline, assert_budget_conserved):
    engine = build_engine(dataset_dir, ReCacheConfig(adaptive_admission=False))
    assert_budget_conserved(engine.recache)
    query = flat_rows_query()
    engine.execute(query)
    assert engine.cache_entries()
    with faults.activate("scan.layout:corrupt:limit=1", seed=2):
        report = engine.execute(query)
    assert report.degraded_scans == 1
    assert report.results == baseline(query)


def test_quarantine_is_transparent_to_later_queries(dataset_dir, assert_budget_conserved):
    engine = build_engine(dataset_dir, ReCacheConfig(adaptive_admission=False))
    assert_budget_conserved(engine.recache)
    query = flat_query()
    engine.execute(query)
    with faults.activate("scan.layout:corrupt:limit=1", seed=4):
        engine.execute(query)
    # The poisoned entry is gone; the next query re-materializes cleanly.
    clean = engine.execute(query)
    assert clean.quarantined_entries == 0
    assert clean.degraded_scans == 0


# ---------------------------------------------------------------------------
# Budget exhaustion: admission denied, query unaffected
# ---------------------------------------------------------------------------
def test_budget_exhaustion_denies_admission_not_results(
    dataset_dir, baseline, assert_budget_conserved
):
    # A real byte limit makes the sharded cache enforce admissions through
    # SharedBudget.try_reserve — the injected scope.
    engine = build_engine(
        dataset_dir,
        ReCacheConfig(shard_count=2, cache_size_limit=1_000_000, adaptive_admission=False),
    )
    assert_budget_conserved(engine.recache)
    query = flat_query()
    with faults.activate("budget.reserve:budget_exhausted", seed=6):
        report = engine.execute(query)
    assert report.results == baseline(query)
    assert not engine.cache_entries()
    assert engine.recache.budget.reserved == 0


# ---------------------------------------------------------------------------
# Per-source circuit breaker
# ---------------------------------------------------------------------------
def test_breaker_unit_semantics():
    breaker = SourceCircuitBreaker(failure_threshold=2, cooldown=0.05)
    assert not breaker.is_open("flat")
    assert not breaker.record_failure("flat")
    assert breaker.record_failure("flat")  # threshold reached -> opened
    assert breaker.is_open("flat")
    assert breaker.open_sources() == ["flat"]
    time.sleep(0.06)
    assert not breaker.is_open("flat")  # half-open probe after cooldown
    breaker.record_success("flat")
    assert not breaker.record_failure("flat")  # success cleared the streak


def test_open_breaker_routes_plan_around_cache(dataset_dir):
    engine = build_engine(
        dataset_dir,
        ReCacheConfig(
            scan_retry_limit=0, breaker_failure_threshold=1, breaker_cooldown=30.0
        ),
    )
    query = flat_query()
    with faults.activate("scan.raw:io_error", seed=8):
        with pytest.raises(TransientScanError):
            engine.execute(query)
    assert engine.breaker.is_open("flat")
    info = build_plan(query, engine.catalog, engine.recache, breaker=engine.breaker)

    # Walk the plan: an open source plans as a plain raw select, never a
    # cache materialize/scan.
    def table_nodes(plan):
        stack, found = [plan], []
        while stack:
            current = stack.pop()
            if isinstance(current, (MaterializeNode, CacheScanNode)):
                found.append(current)
            stack.extend(current.children())
        return found

    assert not table_nodes(info.plan), "open source must bypass the cache entirely"


def test_open_breaker_still_serves_correct_results(dataset_dir, baseline):
    engine = build_engine(
        dataset_dir,
        ReCacheConfig(
            scan_retry_limit=0, breaker_failure_threshold=1, breaker_cooldown=30.0
        ),
    )
    query = flat_query()
    with faults.activate("scan.raw:io_error:limit=1", seed=8):
        with pytest.raises(TransientScanError):
            engine.execute(query)
    assert engine.breaker.is_open("flat")
    report = engine.execute(query)  # served raw while the breaker is open
    assert report.results == baseline(query)
    assert not engine.cache_entries()


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
def test_engine_deadline_exceeded_is_typed(dataset_dir):
    engine = build_engine(dataset_dir, ReCacheConfig())
    query = Query(
        tables=[TableRef("flat", RangePredicate("value", 0.0, 1e9))],
        aggregates=[AggregateSpec("count", FieldRef("id"))],
        deadline=1e-9,
    )
    with pytest.raises(DeadlineExceeded):
        engine.execute(query)


def test_config_default_deadline_applies(dataset_dir):
    engine = build_engine(dataset_dir, ReCacheConfig(default_deadline=1e-9))
    with pytest.raises(DeadlineExceeded):
        engine.execute(flat_query())


def test_deadline_expiring_during_retries_is_typed(dataset_dir):
    engine = build_engine(
        dataset_dir,
        ReCacheConfig(scan_retry_limit=50, scan_retry_backoff=0.05),
    )
    query = Query(
        tables=[TableRef("flat", RangePredicate("value", 0.0, 1e9))],
        aggregates=[AggregateSpec("count", FieldRef("id"))],
        deadline=0.05,
    )
    with faults.activate("scan.raw:io_error", seed=1):  # faults every attempt
        with pytest.raises(DeadlineExceeded):
            engine.execute(query)


def test_queued_past_deadline_fails_typed_not_hung(dataset_dir):
    engine = build_engine(dataset_dir, ReCacheConfig(max_workers=1))
    with EngineServer(engine, max_workers=1) as server:
        slow = flat_query(label="slow")
        fast = Query(
            tables=[TableRef("flat", RangePredicate("value", 200.0, 220.0))],
            aggregates=[AggregateSpec("count", FieldRef("id"))],
            deadline=0.02,
            label="deadlined",
        )
        # Keep the single worker busy long enough for `fast` to outlive its
        # deadline in the queue: per-record latency on the raw scan.
        with faults.activate("scan.raw:latency:delay=0.002,limit=100", seed=7):
            (slow_future,) = server.submit_batch([slow])
            time.sleep(0.05)  # let the worker pick up `slow` and stall
            (fast_future,) = server.submit_batch([fast])
            with pytest.raises(DeadlineExceeded):
                fast_future.result(timeout=10.0)
            slow_future.result(timeout=10.0)  # the slow query still completes


# ---------------------------------------------------------------------------
# Load shedding under eviction pressure
# ---------------------------------------------------------------------------
def test_shedding_rejects_typed_when_queue_full_under_pressure(dataset_dir):
    engine = build_engine(
        dataset_dir, ReCacheConfig(max_workers=1, shed_pressure_threshold=0.5)
    )
    engine.recache.eviction_pressure = lambda: 0.9  # deterministic churn signal
    with EngineServer(engine, max_workers=1, max_pending=1) as server:
        with faults.activate("scan.raw:latency:delay=0.002,limit=200", seed=11):
            (busy,) = server.submit_batch([flat_query(label="busy")])
            time.sleep(0.05)  # the queue is now full (1 pending >= max_pending)
            with pytest.raises(QueryRejected):
                server.submit_batch([flat_query(label="rejected")])
            busy.result(timeout=10.0)
    assert server.queue_depth == 0  # rejection leaked no backpressure capacity


def test_no_shedding_without_pressure(dataset_dir):
    engine = build_engine(
        dataset_dir, ReCacheConfig(max_workers=1, shed_pressure_threshold=0.5)
    )
    engine.recache.eviction_pressure = lambda: 0.0
    with EngineServer(engine, max_workers=1, max_pending=1) as server:
        (busy,) = server.submit_batch([flat_query(label="busy")])
        # A full queue WITHOUT churn blocks (classic backpressure), then admits.
        (second,) = server.submit_batch([flat_query(label="second")])
        assert busy.result(timeout=10.0).rows_returned >= 0
        assert second.result(timeout=10.0).rows_returned >= 0


def test_fresh_cache_has_zero_eviction_pressure(dataset_dir):
    engine = build_engine(dataset_dir, ReCacheConfig())
    assert engine.recache.eviction_pressure() == 0.0


# ---------------------------------------------------------------------------
# Worker crashes
# ---------------------------------------------------------------------------
def test_worker_crash_fails_futures_typed_not_hung(dataset_dir, assert_budget_conserved):
    engine = build_engine(dataset_dir, ReCacheConfig())
    assert_budget_conserved(engine.recache)
    with EngineServer(engine, max_workers=2) as server:
        with faults.activate("server.worker:worker_crash:limit=1", seed=13):
            futures = server.submit_batch([flat_query(label="crash")])
            with pytest.raises(WorkerCrashed):
                futures[0].result(timeout=10.0)
        # The server survives: the next batch is served normally.
        report = server.execute(flat_query(label="after-crash"), timeout=10.0)
        assert report.rows_returned >= 1
    assert server.queue_depth == 0


# ---------------------------------------------------------------------------
# Analyzer-surfaced containment regressions (raise-flow / reservation-leak)
# ---------------------------------------------------------------------------
def test_conversion_fault_during_switch_quarantines_instead_of_raising(
    monkeypatch, assert_budget_conserved
):
    """record_reuse's contract is "raises nothing": a conversion fault means
    the cached bytes are suspect, so the entry is quarantined — the raw
    CorruptedCacheError must never escape the reuse path (found by the
    interprocedural raise-flow rule)."""
    from repro.core import cache_manager as cm
    from repro.core.cache_entry import LayoutObservation
    from repro.core.cache_manager import ReCache
    from repro.core.errors import CorruptedCacheError
    from repro.layouts import build_layout
    from repro.workloads.nested import ORDER_LINEITEMS_SCHEMA, synthetic_order_lineitems

    cache = assert_budget_conserved(ReCache(ReCacheConfig(layout_selection=True)))
    records = synthetic_order_lineitems(30, seed=2)
    fields = ORDER_LINEITEMS_SCHEMA.leaf_paths()
    layout = build_layout("parquet", ORDER_LINEITEMS_SCHEMA, fields, records=records)
    cache.begin_query()
    entry = cache.admit_eager(
        source="orders",
        source_format="json",
        predicate=None,
        fields=fields,
        layout=layout,
        operator_time=1.0,
        caching_time=0.5,
    )
    assert entry is not None

    def corrupt_conversion(layout, target, schema):
        raise CorruptedCacheError("stripe decode failed mid-rebuild")

    monkeypatch.setattr(cm, "convert_layout", corrupt_conversion)
    rows = entry.layout.flattened_row_count
    switched = []
    for i in range(8):
        cache.begin_query()
        observation = LayoutObservation(
            query_index=i,
            layout_name=entry.layout_name,
            data_cost=1.0,
            compute_cost=2.0,
            rows_accessed=rows,
            columns_accessed=3,
            accessed_nested=True,
        )
        switched.append(cache.record_reuse(entry, 3.0, 0.001, observation))
    assert all(result is None for result in switched)  # fault contained
    assert cache.stats.extras.get("quarantined", 0) == 1
    assert cache.stats.layout_switches == 0
    assert cache.total_bytes == 0  # quarantine evicted the poisoned entry


def test_admission_hook_fault_settles_pooled_reservation(
    monkeypatch, assert_budget_conserved
):
    """A policy hook raising mid-install must not strand the pooled budget
    reservation: the try/finally on admit_eager's exception edge settles it
    (found by the reservation-leak rule)."""
    from repro.core.cache_manager import ReCache
    from repro.core.sharded_cache import SharedBudget
    from repro.engine.types import FLOAT, Field, RecordType
    from repro.layouts import build_layout

    budget = SharedBudget(limit=100_000)
    cache = assert_budget_conserved(
        ReCache(ReCacheConfig(cache_size_limit=50_000), shared_budget=budget)
    )

    def exploding_on_admit(self, entry, sequence):
        raise RuntimeError("policy bookkeeping bug")

    monkeypatch.setattr(type(cache.policy), "on_admit", exploding_on_admit)
    schema = RecordType([Field("x", FLOAT), Field("y", FLOAT)])
    rows = [{"x": float(i), "y": 2.0 * i} for i in range(50)]
    layout = build_layout("columnar", schema, ["x", "y"], rows=rows)
    cache.begin_query()
    with pytest.raises(RuntimeError):
        cache.admit_eager(
            source="t",
            source_format="csv",
            predicate=None,
            fields=["x", "y"],
            layout=layout,
            operator_time=1.0,
            caching_time=0.5,
        )
    # The exception edge settled the reservation; accounting stays conserved
    # (the teardown fixture re-checks occupancy == resident bytes).
    assert budget.reserved == 0
