"""Tests for the seeded fault-injection subsystem (``repro.faults``)."""

from __future__ import annotations

import contextlib
import dataclasses
import os
import subprocess
import sys

import pytest

from repro.core.errors import (
    CorruptedCacheError,
    DeadlineExceeded,
    QueryRejected,
    ReCacheError,
    TransientScanError,
    WorkerCrashed,
)
from repro.faults import (
    FaultPlan,
    FaultSpec,
    activate,
    active_plan,
    injector_for,
    install,
    parse_fault_plan,
    parse_fault_spec,
)


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------
def test_parse_minimal_spec():
    spec = parse_fault_spec("scan.raw:io_error")
    assert spec.scope == "scan.raw"
    assert spec.kind == "io_error"
    assert spec.rate == 1.0
    assert spec.limit is None
    assert spec.after == 0


def test_parse_spec_with_params_and_detail():
    spec = parse_fault_spec(
        "scan.layout:latency:rate=0.25,limit=3,after=10,delay=0.5,detail=parquet"
    )
    assert spec.rate == 0.25
    assert spec.limit == 3
    assert spec.after == 10
    assert spec.delay == 0.5
    assert spec.detail == "parquet"


def test_spec_round_trips_through_as_string():
    spec = parse_fault_spec("budget.reserve:budget_exhausted:rate=0.5,limit=2")
    assert parse_fault_spec(spec.as_string()) == spec


def test_parse_plan_splits_on_semicolons():
    plan = parse_fault_plan("scan.raw:io_error;server.worker:worker_crash:limit=1", seed=3)
    assert len(plan.specs) == 2
    assert plan.seed == 3


@pytest.mark.parametrize(
    "bad",
    [
        "",  # empty
        "scan.raw",  # missing kind
        "nope:io_error",  # unknown scope
        "scan.raw:nope",  # unknown kind
        "scan.raw:io_error:rate=2.0",  # rate out of range
        "scan.raw:io_error:limit=-1",  # negative limit
        "scan.raw:io_error:bogus=1",  # unknown param
        "scan.raw:io_error:rate",  # malformed key=value
    ],
)
def test_invalid_specs_raise(bad):
    with pytest.raises(ValueError):
        parse_fault_plan(bad, seed=0)


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------
def test_every_typed_error_is_a_recache_error():
    for exc_type in (
        TransientScanError,
        CorruptedCacheError,
        QueryRejected,
        DeadlineExceeded,
        WorkerCrashed,
    ):
        assert issubclass(exc_type, ReCacheError)


def test_injector_kind_maps_to_typed_error():
    cases = {
        "io_error": TransientScanError,
        "short_read": TransientScanError,
        "corrupt": CorruptedCacheError,
        "worker_crash": WorkerCrashed,
    }
    for kind, exc_type in cases.items():
        plan = parse_fault_plan(f"scan.raw:{kind}:limit=1", seed=1)
        injector = plan.injector_for("scan.raw")
        assert injector is not None
        with pytest.raises(exc_type):
            injector()


# ---------------------------------------------------------------------------
# Determinism and scheduling parameters
# ---------------------------------------------------------------------------
def _fire_pattern(spec: str, seed: int, opportunities: int) -> list[bool]:
    plan = parse_fault_plan(spec, seed=seed)
    injector = plan.injector_for(spec.split(":", 1)[0])
    assert injector is not None
    pattern = []
    for _ in range(opportunities):
        try:
            injector()
            pattern.append(False)
        except ReCacheError:
            pattern.append(True)
    return pattern


def test_same_seed_same_schedule():
    spec = "scan.raw:io_error:rate=0.3"
    assert _fire_pattern(spec, 42, 200) == _fire_pattern(spec, 42, 200)


def test_different_seed_different_schedule():
    spec = "scan.raw:io_error:rate=0.3"
    assert _fire_pattern(spec, 1, 200) != _fire_pattern(spec, 2, 200)


def test_after_skips_then_limit_caps():
    pattern = _fire_pattern("scan.raw:io_error:after=5,limit=3", 7, 20)
    assert pattern == [False] * 5 + [True] * 3 + [False] * 12


def test_rate_zero_never_fires_and_rate_one_always_fires():
    assert not any(_fire_pattern("scan.raw:io_error:rate=0.0", 9, 50))
    assert all(_fire_pattern("scan.raw:io_error:rate=1.0", 9, 50))


def test_snapshot_reports_opportunities_and_fires():
    plan = parse_fault_plan("scan.raw:io_error:limit=2", seed=0)
    injector = plan.injector_for("scan.raw")
    for _ in range(5):
        with contextlib.suppress(ReCacheError):
            injector()
    (row,) = plan.snapshot()
    assert row["opportunities"] == 5
    assert row["fired"] == 2


# ---------------------------------------------------------------------------
# Scoping and activation
# ---------------------------------------------------------------------------
def test_detail_filter_matches_substring():
    plan = parse_fault_plan("scan.raw:io_error:detail=orders", seed=0)
    assert plan.injector_for("scan.raw", "orders.json") is not None
    assert plan.injector_for("scan.raw", "flat.csv") is None
    # No detail offered at the site: the spec still applies.
    assert plan.injector_for("scan.raw") is not None


def test_scope_filter():
    plan = parse_fault_plan("scan.layout:corrupt", seed=0)
    assert plan.injector_for("scan.layout") is not None
    assert plan.injector_for("scan.raw") is None


def test_disabled_runtime_returns_none():
    assert active_plan() is None
    assert injector_for("scan.raw") is None


def test_activate_restores_previous_plan():
    outer = parse_fault_plan("scan.raw:io_error", seed=0)
    install(outer)
    try:
        with activate("scan.layout:corrupt", seed=1) as inner:
            assert active_plan() is inner
            assert injector_for("scan.layout") is not None
        assert active_plan() is outer
    finally:
        install(None)
    assert active_plan() is None


def test_env_var_installs_plan_at_import():
    code = (
        "from repro.faults import runtime\n"
        "plan = runtime.active_plan()\n"
        "assert plan is not None and plan.seed == 11, plan\n"
        "assert runtime.injector_for('budget.reserve') is not None\n"
        "print('ok')\n"
    )
    env = dict(os.environ)
    env["RECACHE_FAULTS"] = "budget.reserve:budget_exhausted:rate=0.5"
    env["RECACHE_FAULTS_SEED"] = "11"
    env["PYTHONPATH"] = "src"
    result = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True, timeout=60
    )
    assert result.returncode == 0, result.stderr
    assert "ok" in result.stdout


def test_plan_is_immutable_value():
    plan = parse_fault_plan("scan.raw:io_error", seed=0)
    assert isinstance(plan, FaultPlan)
    assert isinstance(plan.specs[0], FaultSpec)
    with pytest.raises(dataclasses.FrozenInstanceError):
        plan.specs[0].rate = 0.5
