"""Reactive cache admission: eager vs lazy vs ReCache (Figures 12 and 13).

Runs the TPC-H select-project-join workload under four caching configurations
and reports (a) the per-query caching overhead distribution and (b) the total
workload time, showing how ReCache's sampling-and-extrapolation admission
policy avoids the worst of eager caching while keeping most of its benefit.

Run with::

    python examples/reactive_admission.py
"""

from __future__ import annotations

from repro.bench.experiments import (
    figure12a_admission_overhead_cdf,
    figure13_admission_cumulative,
)
from repro.bench.reporting import cdf_points, format_table


def main() -> None:
    print("Measuring per-query caching overhead (Figure 12a scenario)...")
    overheads = figure12a_admission_overhead_cdf(num_queries=25, scale_factor=0.002)
    rows = []
    for config, values in overheads["overheads_pct"].items():
        points = cdf_points(values, percentiles=(50, 90))
        rows.append(
            {
                "configuration": config,
                "mean overhead": f"{overheads['mean_overhead_pct'][config]:.1f}%",
                "median": f"{points['p50']:.1f}%",
                "p90": f"{points['p90']:.1f}%",
            }
        )
    print(format_table(rows, title="\nPer-query caching overhead"))

    print("\nMeasuring cumulative workload time (Figure 13 scenario)...")
    cumulative = figure13_admission_cumulative(num_queries=25, scale_factor=0.002)
    rows = [
        {"configuration": name, "total time": f"{total:.2f}s"}
        for name, total in cumulative["totals"].items()
    ]
    print(format_table(rows, title="\nCumulative execution time over the workload"))
    print(
        "\nLazy caching stays close to the no-caching baseline in overhead, eager pays the "
        "most per query, and ReCache picks lazily or eagerly per operator based on the "
        "extrapolated overhead of the admission sample."
    )


if __name__ == "__main__":
    main()
