"""Concurrent serving: many clients, one shared sharded cache.

Builds a TPC-H-style CSV file, wraps a :class:`repro.QueryEngine` configured
with a 4-way :class:`~repro.core.sharded_cache.ShardedReCache` in an
:class:`repro.EngineServer` thread pool, and drives it with zipfian-skewed
closed-loop clients — first with one worker thread, then with four — printing
the throughput and cache statistics of each serving window.

Run with::

    python examples/concurrent_serving.py
"""

from __future__ import annotations

import tempfile
import time

from repro import AggregateSpec, EngineServer, FieldRef, Query, QueryEngine, RangePredicate, ReCacheConfig
from repro.utils import format_bytes
from repro.workloads import TPCH_SCHEMAS, write_tpch_dataset
from repro.workloads.runner import ConcurrentWorkloadRunner


def build_query_pool(pool_size: int = 20) -> list[Query]:
    """Distinct range aggregations; pool order defines zipfian popularity."""
    return [
        Query.select_aggregate(
            "lineitem",
            RangePredicate("l_quantity", 1 + (index % 10) * 4, 12 + (index % 10) * 4),
            [
                AggregateSpec("sum", FieldRef("l_extendedprice")),
                AggregateSpec("count", FieldRef("l_orderkey")),
            ],
            label=f"q{index}",
        )
        for index in range(pool_size)
    ]


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="recache-serving-")
    print(f"Generating TPC-H style data under {data_dir} ...")
    csv_paths = write_tpch_dataset(data_dir, scale_factor=0.002, seed=42)

    pool = build_query_pool()
    # Each served request also "delivers" its result to the remote client;
    # worker threads overlap these waits, which is where the thread pool's
    # throughput win comes from on a cache-hit-heavy workload.
    def deliver(report) -> None:
        time.sleep(0.005)

    for workers in (1, 4):
        config = ReCacheConfig(shard_count=4, max_workers=workers, cache_size_limit=16_000_000)
        engine = QueryEngine(config)
        engine.register_csv("lineitem", csv_paths["lineitem"], TPCH_SCHEMAS["lineitem"])

        # Warm the hot queries so the serving window is cache-hit-heavy.
        for query in pool:
            engine.execute(query)

        with EngineServer(engine, response_hook=deliver) as server:
            runner = ConcurrentWorkloadRunner(server, clients=4, seed=7)
            result = runner.run(pool, label=f"{workers}-worker", queries_per_client=30, zipf_s=1.1)

        stats = engine.cache_stats
        print(
            f"{workers} worker(s): {result.total_queries} queries in "
            f"{result.wall_time:.2f}s -> {result.queries_per_second:.0f} q/s | "
            f"hit rate {stats.hit_rate():.0%}, "
            f"{len(engine.recache.entries())} cached items, "
            f"{format_bytes(engine.recache.total_bytes)} resident"
        )


if __name__ == "__main__":
    main()
