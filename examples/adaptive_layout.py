"""Adaptive cache layout on nested data (the scenario of Figures 1 and 9).

A 240-query workload over the nested orderLineitems dataset changes its access
pattern half way through: the first half touches both nested and non-nested
attributes (where a flattened relational columnar cache wins), the second half
touches only the non-nested order attributes (where the Parquet-style striped
cache wins).  The script compares the two static layouts with ReCache's
automatic layout selection and reports how close each gets to the per-query
optimum.

Run with::

    python examples/adaptive_layout.py
"""

from __future__ import annotations

from repro.bench.experiments import figure9_auto_layout
from repro.bench.reporting import format_table
from repro.utils import format_seconds


def main() -> None:
    print("Running the Figure 9(a) scenario (this takes a few seconds)...")
    result = figure9_auto_layout(pattern="halves", num_queries=180, num_orders=600)

    rows = [
        {"configuration": name, "total_time": format_seconds(total)}
        for name, total in result["totals"].items()
    ]
    rows.append({"configuration": "per-query optimum", "total_time": format_seconds(result["optimal_total"])})
    print(format_table(rows, title="\nWorkload execution time (cache scans only)"))

    print(
        f"\nReCache switched layouts {result['recache_layout_switches']} time(s); "
        f"it is {result['closer_than_parquet_pct']:.0f}% closer to the optimum than static Parquet "
        f"and {result['closer_than_columnar_pct']:.0f}% closer than the static relational columnar layout."
    )

    half = result["phase_boundary"] if "phase_boundary" in result else result["num_queries"] // 2
    series = result["series"]
    for phase, sl in (("phase 1 (all attributes)", slice(0, half)), ("phase 2 (non-nested only)", slice(half, None))):
        print(f"\n{phase}:")
        for name in ("parquet", "columnar", "recache"):
            print(f"  {name:9s} {format_seconds(sum(series[name][sl]))}")


if __name__ == "__main__":
    main()
