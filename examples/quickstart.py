"""Quickstart: cache-accelerated analytics over raw CSV and JSON files.

Generates a small TPC-H-style dataset plus a nested orderLineitems JSON file,
registers both with the :class:`repro.QueryEngine`, and runs a few queries
twice to show exact-match and subsumption-based cache reuse.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro import AggregateSpec, FieldRef, Query, QueryEngine, RangePredicate, ReCacheConfig
from repro.utils import format_bytes, format_seconds
from repro.workloads import (
    ORDER_LINEITEMS_SCHEMA,
    TPCH_SCHEMAS,
    write_order_lineitems_json,
    write_tpch_dataset,
)


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="recache-quickstart-")
    print(f"Generating TPC-H style data under {data_dir} ...")
    csv_paths = write_tpch_dataset(data_dir, scale_factor=0.001, seed=42)
    json_path = write_order_lineitems_json(data_dir, scale_factor=0.001, seed=42)

    engine = QueryEngine(ReCacheConfig(admission_sample_records=100))
    for table in ("lineitem", "orders"):
        engine.register_csv(table, csv_paths[table], TPCH_SCHEMAS[table])
    engine.register_json("orderLineitems", json_path, ORDER_LINEITEMS_SCHEMA)

    # A select-project-aggregate query over the raw CSV file.
    csv_query = Query.select_aggregate(
        "lineitem",
        RangePredicate("l_quantity", 10, 40),
        [AggregateSpec("sum", FieldRef("l_extendedprice"), alias="revenue"),
         AggregateSpec("count", FieldRef("l_orderkey"), alias="rows")],
        label="csv-quantity-range",
    )
    # The same shape over the nested JSON file, touching a nested attribute.
    json_query = Query.select_aggregate(
        "orderLineitems",
        RangePredicate("o_totalprice", 50_000, 400_000),
        [AggregateSpec("avg", FieldRef("lineitems.l_quantity"), alias="avg_qty")],
        label="json-nested-avg",
    )
    # A narrower predicate over the same column: answered via subsumption.
    narrower = Query.select_aggregate(
        "orderLineitems",
        RangePredicate("o_totalprice", 100_000, 300_000),
        [AggregateSpec("avg", FieldRef("lineitems.l_quantity"), alias="avg_qty")],
        label="json-subsumed",
    )

    for round_name in ("cold", "warm"):
        print(f"\n--- {round_name} run ---")
        for query in (csv_query, json_query, narrower):
            report = engine.execute(query)
            print(
                f"{query.label:18s} results={report.results} "
                f"time={format_seconds(report.total_time)} "
                f"hits={report.cache_hits} misses={report.misses} "
                f"caching_overhead={report.caching_overhead:.1%}"
            )

    stats = engine.cache_stats
    print("\nCache contents:")
    for entry in engine.cache_entries():
        print(
            f"  {entry.key.as_string():60s} layout={entry.layout_name:9s} "
            f"size={format_bytes(entry.nbytes)} reuses={entry.stats.reuse_count}"
        )
    print(
        f"\nTotals: {stats.exact_hits} exact hits, {stats.subsumption_hits} subsumption hits, "
        f"{stats.misses} misses, {format_bytes(engine.cached_bytes())} cached."
    )


if __name__ == "__main__":
    main()
