"""Comparing cache eviction policies on a heterogeneous TPC-H workload.

Reproduces a small-scale version of the paper's Figure 14 experiment: a
select-project-join workload over the TPC-H tables (with ``lineitem`` served
from JSON to add cost heterogeneity) runs under a limited cache budget with
different eviction policies — ReCache's cost-based Greedy-Dual variant, the
Vectorwise and MonetDB recyclers, LRU, Proteus' JSON>CSV heuristic, and two
clairvoyant offline policies.

Run with::

    python examples/eviction_policies.py
"""

from __future__ import annotations

from repro.bench.experiments import FIGURE14_POLICIES, figure14_eviction_policies
from repro.bench.reporting import format_table
from repro.utils import format_bytes


def main() -> None:
    cache_sizes = (250_000, 1_000_000)
    print("Running the eviction-policy comparison (about a minute)...")
    result = figure14_eviction_policies(
        cache_sizes=cache_sizes, num_queries=20, scale_factor=0.002
    )

    rows = []
    for row in result["rows"]:
        table_row = {"cache size": format_bytes(row["cache_size"])}
        for policy in FIGURE14_POLICIES:
            table_row[policy] = f"{row[policy]:.2f}s"
        table_row["recache vs LRU"] = f"{row['recache_vs_lru_reduction_pct']:+.1f}%"
        rows.append(table_row)
    print(format_table(rows, title="\nWorkload execution time per eviction policy"))
    print(f"\nUnlimited-cache baseline: {result['unlimited_total']:.2f}s")
    print(
        "ReCache keeps the items that are expensive to rebuild (JSON-derived caches), "
        "which is where its advantage over LRU comes from."
    )


if __name__ == "__main__":
    main()
