"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that the package can also be installed in environments whose tooling predates
PEP 660 editable installs (``python setup.py develop`` / legacy ``pip``).
"""

from setuptools import setup

setup()
