"""Rule ``guarded-by``: guarded attributes are touched only under their lock.

For every class carrying a ``GUARDED_BY`` declaration (or ``# guarded-by:``
comments on ``__init__`` assignments), each ``self.<field>`` load/store in
its methods must be lexically inside ``with self.<lock>:`` for the declared
lock (aliases such as a Condition sharing the lifecycle lock resolve first),
or inside a method whose ``def`` line documents ``# caller-holds: self.<lock>``.

Escapes, both explicit in the source so review can see them:

* ``# unguarded-read: <why>`` blesses a lock-free *load* on that line
  (GIL-atomic int/reference reads used by monitoring properties);
* ``# recheck-lint: allow(guarded-by)`` suppresses anything else.

``__init__``/``__post_init__`` are exempt (no concurrent publication yet).
Nested ``def``s restart with only their own declared caller-holds set;
lambdas and comprehensions are scanned with the enclosing held set, since
the tree only uses them inline under the lock that encloses them.
"""

from __future__ import annotations

import ast

from repro.analysis.common import ClassInfo, Module, Violation, with_lock_attrs

RULE = "guarded-by"
_EXEMPT_METHODS = {"__init__", "__post_init__"}


def check(modules: list[Module], classes: dict[str, ClassInfo], graph=None) -> list[Violation]:
    del graph
    violations: list[Violation] = []
    for info in classes.values():
        if not info.guarded:
            continue
        for stmt in info.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name in _EXEMPT_METHODS:
                    continue
                _scan_function(info, stmt, violations)
    return violations


def _scan_function(
    info: ClassInfo,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    violations: list[Violation],
) -> None:
    held = {info.resolve_lock(name) for name in info.module.caller_holds(func.lineno)}
    _scan_stmts(info, func.body, held, violations)


def _scan_stmts(
    info: ClassInfo,
    stmts: list[ast.stmt],
    held: set[str],
    violations: list[Violation],
) -> None:
    for stmt in stmts:
        _scan_stmt(info, stmt, held, violations)


def _scan_stmt(
    info: ClassInfo,
    stmt: ast.stmt,
    held: set[str],
    violations: list[Violation],
) -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        _scan_function(info, stmt, violations)
        return
    if isinstance(stmt, ast.ClassDef):
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        acquired = set()
        for item in stmt.items:
            _scan_expr(info, item.context_expr, held, violations)
            attr = with_lock_attrs(item)
            if attr is not None:
                acquired.add(info.resolve_lock(attr))
        _scan_stmts(info, stmt.body, held | acquired, violations)
        return
    for value in ast.iter_child_nodes(stmt):
        if isinstance(value, ast.stmt):
            _scan_stmt(info, value, held, violations)
        elif isinstance(value, ast.expr):
            _scan_expr(info, value, held, violations)
        elif isinstance(value, ast.excepthandler):
            _scan_stmts(info, value.body, held, violations)
        elif isinstance(value, (ast.withitem, ast.keyword)):  # pragma: no cover
            _scan_expr(info, getattr(value, "context_expr", getattr(value, "value", value)), held, violations)


def _scan_expr(
    info: ClassInfo,
    expr: ast.expr,
    held: set[str],
    violations: list[Violation],
) -> None:
    for node in ast.walk(expr):
        if not isinstance(node, ast.Attribute):
            continue
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            continue
        lock = info.guarded.get(node.attr)
        if lock is None:
            continue
        lock = info.resolve_lock(lock)
        if lock in held:
            continue
        line = node.lineno
        module = info.module
        if module.allows(line, RULE):
            continue
        if isinstance(node.ctx, ast.Load) and module.blesses_unguarded_read(line):
            continue
        action = "read" if isinstance(node.ctx, ast.Load) else "write"
        violations.append(
            Violation(
                rule=RULE,
                path=str(module.path),
                line=line,
                message=(
                    f"{info.name}.{node.attr} {action} without holding "
                    f"self.{lock} (declared in GUARDED_BY)"
                ),
            )
        )
