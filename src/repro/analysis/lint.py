"""recheck-lint CLI: ``python -m repro.analysis.lint src [--json report.json]``.

Parses every ``.py`` file under the given paths and runs the five rule
families (guarded-by, lock-order + heavy-work, future-resolution,
dtype-view, no-swallow).  Exits 1 when any violation is found; ``--json``
also writes a machine-readable report (archived as a CI artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import dtype_views, futures, guarded_by, lock_order, no_swallow
from repro.analysis.common import Module, Violation, collect_classes, iter_py_files

#: rule-family name -> checker; each gets (modules, classes).
CHECKERS = {
    "guarded-by": guarded_by.check,
    "lock-order": lock_order.check,
    "future-resolution": futures.check,
    "dtype-view": dtype_views.check,
    "no-swallow": no_swallow.check,
}


def run_lint(paths: list[Path], rules: list[str] | None = None) -> tuple[list[Violation], dict]:
    """Run the selected rule families; return (violations, JSON report)."""
    files = iter_py_files(paths)
    modules: list[Module] = []
    errors: list[str] = []
    for path in files:
        try:
            modules.append(Module.parse(path))
        except SyntaxError as exc:
            errors.append(f"{path}: syntax error: {exc}")
    classes = collect_classes(modules)
    violations: list[Violation] = []
    for name, checker in CHECKERS.items():
        if rules is not None and name not in rules:
            continue
        violations.extend(checker(modules, classes))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    report = {
        "tool": "recheck-lint",
        "paths": [str(path) for path in paths],
        "files_scanned": len(files),
        "rules": sorted(CHECKERS) if rules is None else sorted(rules),
        "parse_errors": errors,
        "violation_count": len(violations),
        "violations": [violation.as_dict() for violation in violations],
    }
    return violations, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="recheck-lint",
        description="Concurrency/dtype invariant checker for the ReCache tree.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument("--json", metavar="PATH", help="write a JSON report here")
    parser.add_argument(
        "--rules",
        help="comma-separated rule families to run (default: all)",
    )
    options = parser.parse_args(argv)

    rules = options.rules.split(",") if options.rules else None
    if rules is not None:
        unknown = set(rules) - set(CHECKERS)
        if unknown:
            parser.error(f"unknown rules: {', '.join(sorted(unknown))}")
    violations, report = run_lint([Path(p) for p in options.paths], rules)

    for violation in violations:
        print(violation.render())
    if report["parse_errors"]:
        for error in report["parse_errors"]:
            print(error, file=sys.stderr)
    if options.json:
        Path(options.json).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    summary = (
        f"recheck-lint: {report['violation_count']} violation(s) "
        f"in {report['files_scanned']} file(s)"
    )
    print(summary)
    return 1 if (violations or report["parse_errors"]) else 0


if __name__ == "__main__":
    sys.exit(main())
