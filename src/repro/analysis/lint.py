"""recheck-lint CLI: ``python -m repro.analysis.lint src [--json report.json]``.

Parses every ``.py`` file under the given paths and runs the eight rule
families (guarded-by, lock-order + heavy-work, future-resolution,
dtype-view, no-swallow, raise-flow + reservation-leak, hotpath,
shm-lifecycle).  Exits 1 when any violation is found; ``--json`` also
writes a machine-readable report (archived as a CI artifact) carrying the
inferred per-function exception sets, the call-graph warnings and the
analyzer wall time.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis import (
    dtype_views,
    futures,
    guarded_by,
    hotpath,
    lock_order,
    no_swallow,
    raises,
    shm_lifecycle,
)
from repro.analysis.callgraph import build_call_graph
from repro.analysis.common import Module, Violation, collect_classes, iter_py_files

#: rule-family name -> checker; each gets (modules, classes, graph).
CHECKERS = {
    "guarded-by": guarded_by.check,
    "lock-order": lock_order.check,
    "future-resolution": futures.check,
    "dtype-view": dtype_views.check,
    "no-swallow": no_swallow.check,
    "raise-flow": raises.check,
    "hotpath": hotpath.check,
    "shm-lifecycle": shm_lifecycle.check,
}


def run_lint(paths: list[Path], rules: list[str] | None = None) -> tuple[list[Violation], dict]:
    """Run the selected rule families; return (violations, JSON report)."""
    started = time.perf_counter()
    files = iter_py_files(paths)
    modules: list[Module] = []
    errors: list[str] = []
    for path in files:
        try:
            modules.append(Module.parse(path))
        except SyntaxError as exc:
            errors.append(f"{path}: syntax error: {exc}")
    classes = collect_classes(modules)
    graph = build_call_graph(modules, classes)
    violations: list[Violation] = []
    for name, checker in CHECKERS.items():
        if rules is not None and name not in rules:
            continue
        violations.extend(checker(modules, classes, graph))  # dynamic-call: check
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    report = {
        "tool": "recheck-lint",
        "paths": [str(path) for path in paths],
        "files_scanned": len(files),
        "rules": sorted(CHECKERS) if rules is None else sorted(rules),
        "parse_errors": errors,
        "violation_count": len(violations),
        "violations": [violation.as_dict() for violation in violations],
        "callgraph_warnings": graph.warnings,
        "raise_sets": raises.compute_raise_sets(modules, classes, graph),
        "wall_time_seconds": round(time.perf_counter() - started, 3),
    }
    return violations, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="recheck-lint",
        description="Concurrency/dtype invariant checker for the ReCache tree.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument("--json", metavar="PATH", help="write a JSON report here")
    parser.add_argument(
        "--rules",
        help="comma-separated rule families to run (default: all)",
    )
    options = parser.parse_args(argv)

    rules = options.rules.split(",") if options.rules else None
    if rules is not None:
        unknown = set(rules) - set(CHECKERS)
        if unknown:
            parser.error(f"unknown rules: {', '.join(sorted(unknown))}")
    violations, report = run_lint([Path(p) for p in options.paths], rules)

    for violation in violations:
        print(violation.render())
    if report["parse_errors"]:
        for error in report["parse_errors"]:
            print(error, file=sys.stderr)
    if options.json:
        Path(options.json).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    summary = (
        f"recheck-lint: {report['violation_count']} violation(s) "
        f"in {report['files_scanned']} file(s) "
        f"({report['wall_time_seconds']:.2f}s)"
    )
    print(summary)
    return 1 if (violations or report["parse_errors"]) else 0


if __name__ == "__main__":
    sys.exit(main())
