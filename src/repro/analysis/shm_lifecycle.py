"""Rule ``shm-lifecycle``: no shared-memory segment without an unlink path.

POSIX shared memory outlives the process that created it: a segment that is
``create=True``-ed and never unlinked stays in ``/dev/shm`` until reboot.
This rule makes the pairing a machine-checked invariant in modules that
opt in with a ``# recheck-lint: check-shm-lifecycle`` comment: every
function containing a ``SharedMemory(..., create=True, ...)`` call must
also lexically contain an unlink path — a direct ``.unlink(...)`` call or
a call to one of the audited lifecycle sinks below (functions whose whole
job is closing + unlinking a segment).  Attach-only calls (no ``create``
keyword) are exempt: the creator owns the name.

Suppress a deliberate exception with ``# recheck-lint: allow(shm-lifecycle)``
on the creating line.
"""

from __future__ import annotations

import ast

from repro.analysis.common import ClassInfo, Module, Violation

RULE = "shm-lifecycle"
MARKER = "recheck-lint: check-shm-lifecycle"

#: Audited lifecycle sinks: calling one of these IS the unlink path.
#: Extending this set is a reviewable act, not a loophole.
SINKS: frozenset[str] = frozenset(
    {
        "_discard_segment",
        "retire",
        "unlink_all",
        "unlink",
    }
)


def check(modules: list[Module], classes: dict[str, ClassInfo], graph=None) -> list[Violation]:
    del classes, graph
    violations: list[Violation] = []
    for module in modules:
        if not module.has_marker(MARKER):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _check_function(module, node, violations)
    return violations


def _check_function(
    module: Module,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    violations: list[Violation],
) -> None:
    creations = [node for node in ast.walk(func) if _is_segment_creation(node)]
    if not creations:
        return
    if _has_unlink_path(func):
        return
    for creation in creations:
        if module.allows(creation.lineno, RULE):
            continue
        violations.append(
            Violation(
                rule=RULE,
                path=str(module.path),
                line=creation.lineno,
                message=(
                    f"{func.name} creates a shared-memory segment without a "
                    "paired unlink path — call .unlink() on a failure branch "
                    "or route the handle through a lifecycle sink "
                    f"({', '.join(sorted(SINKS))})"
                ),
            )
        )


def _is_segment_creation(node: ast.AST) -> bool:
    """A ``SharedMemory(...)`` call carrying ``create=True``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
    if name != "SharedMemory":
        return False
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _has_unlink_path(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function lexically contains an audited unlink call."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        name = target.id if isinstance(target, ast.Name) else getattr(target, "attr", None)
        if name in SINKS:
            return True
    return False
