"""Whole-project call-graph construction for the interprocedural rules.

Builds a conservative static call graph over the already-parsed
:class:`~repro.analysis.common.Module` trees and the classes collected by
:func:`~repro.analysis.common.collect_classes`:

* plain-name calls resolve to the calling module's own top-level function of
  that name when it defines one (Python's actual binding rule), otherwise to
  every project top-level function of that name (the imported case); for
  class names, to the class's ``__init__``;
* ``self.m()`` resolves through the receiver class's base chain (the same
  simple-name base resolution ``collect_classes`` uses), ``super().m()``
  through the bases only, and ``ClassName.m()`` through that class;
* any other ``obj.m()`` falls back to *every* project class defining ``m``
  plus every top-level function named ``m`` (the ``module.func()`` idiom) —
  over-approximate on purpose: a missed edge is a false negative for the
  raise-flow rule, a spurious edge merely widens an inferred set;
* calls through locals/parameters (dispatch tables, injected callables) are
  statically opaque: the explicit ``# dynamic-call: target[, target2]``
  comment adds the named edges, and ``# may-raise: Error[, Error2]`` seeds
  the raise-flow analysis at the call site instead.  An opaque call with
  neither annotation degrades to a *warning* (reported in the JSON report,
  never a violation) so the hole is visible rather than silently assumed
  safe.

Functions nested inside another function are merged into their enclosing
function: their calls and raises belong to the parent's dynamic extent
(worker callbacks, closure helpers), and calls *to* them by name are
internal and resolve to the parent itself.
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass, field

from repro.analysis.common import ClassInfo, Module

_DYNAMIC_CALL_RE = re.compile(r"dynamic-call:\s*([\w.]+(?:\s*,\s*[\w.]+)*)")
_MAY_RAISE_RE = re.compile(r"may-raise:\s*(\w+(?:\s*,\s*\w+)*)")

_BUILTIN_NAMES = frozenset(dir(builtins))


def parse_may_raise(comment: str) -> frozenset[str]:
    """Error class names declared by a ``# may-raise:`` comment, if any."""
    match = _MAY_RAISE_RE.search(comment)
    if not match:
        return frozenset()
    return frozenset(part.strip() for part in match.group(1).split(","))


def parse_dynamic_call(comment: str) -> tuple[str, ...]:
    """Call targets declared by a ``# dynamic-call:`` comment, if any."""
    match = _DYNAMIC_CALL_RE.search(comment)
    if not match:
        return ()
    return tuple(part.strip() for part in match.group(1).split(","))


@dataclass
class FunctionInfo:
    """One project function or method (nested defs merged into it)."""

    fid: str  #: unique id: "<path>::<display>"
    display: str  #: "Class.method" for methods, bare name for functions
    simple: str  #: method/function name without the class
    class_name: str | None
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    nested_names: set[str] = field(default_factory=set)


class CallGraph:
    """Functions, resolved call edges, per-site annotations and warnings."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        #: caller fid -> callee fids (deduplicated)
        self.edges: dict[str, set[str]] = {}
        #: id(ast.Call) -> resolved callee fids for that exact call site
        self.call_targets: dict[int, tuple[str, ...]] = {}
        #: fid -> [(line, error names)] from ``# may-raise:`` annotations
        self.site_raises: dict[str, list[tuple[int, frozenset[str]]]] = {}
        #: "path:line: message" for statically opaque, unannotated calls
        self.warnings: list[str] = []
        self._display_index: dict[str, list[str]] = {}
        self._simple_methods: dict[str, list[str]] = {}
        self._simple_functions: dict[str, list[str]] = {}
        self._method_index: dict[tuple[str, str], str] = {}
        self._module_functions: dict[tuple[str, str], str] = {}
        self._classes: dict[str, ClassInfo] = {}

    # -- lookup --------------------------------------------------------------
    def by_display(self, display: str) -> list[str]:
        """fids whose display name is exactly ``display``."""
        return list(self._display_index.get(display, ()))

    def by_name(self, name: str) -> list[str]:
        """fids matching ``name``: dotted = display match, bare = any simple
        name (top-level functions and methods alike)."""
        if "." in name:
            return self.by_display(name)
        return list(self._simple_functions.get(name, ())) + list(
            self._simple_methods.get(name, ())
        )

    def resolve_method(self, class_name: str, method: str) -> str | None:
        """fid of ``method`` on ``class_name`` or its base chain, else None."""
        return self._resolve_method(class_name, method, frozenset())

    def _resolve_method(self, class_name: str, method: str, seen: frozenset) -> str | None:
        fid = self._method_index.get((class_name, method))
        if fid is not None:
            return fid
        info = self._classes.get(class_name)
        if info is None:
            return None
        for base in info.bases:
            if base in seen:
                continue
            found = self._resolve_method(base, method, seen | {class_name})
            if found is not None:
                return found
        return None

    # -- construction --------------------------------------------------------
    def _add_function(self, info: FunctionInfo) -> None:
        self.functions[info.fid] = info
        self._display_index.setdefault(info.display, []).append(info.fid)
        if info.class_name is None:
            self._simple_functions.setdefault(info.simple, []).append(info.fid)
            self._module_functions[(str(info.module.path), info.simple)] = info.fid
        else:
            self._simple_methods.setdefault(info.simple, []).append(info.fid)
            self._method_index[(info.class_name, info.simple)] = info.fid


def build_call_graph(modules: list[Module], classes: dict[str, ClassInfo]) -> CallGraph:
    graph = CallGraph()
    graph._classes = classes
    for module in modules:
        _collect_functions(graph, module)
    seen_warnings: set[tuple[str, int, str]] = set()
    for info in graph.functions.values():
        _resolve_calls(graph, info, seen_warnings)
    graph.warnings.sort()
    return graph


def _collect_functions(graph: CallGraph, module: Module) -> None:
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _add(graph, module, stmt, class_name=None)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _add(graph, module, stmt, class_name=node.name)


def _add(
    graph: CallGraph,
    module: Module,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    class_name: str | None,
) -> None:
    display = f"{class_name}.{node.name}" if class_name else node.name
    nested = {
        inner.name
        for inner in ast.walk(node)
        if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)) and inner is not node
    }
    graph._add_function(
        FunctionInfo(
            fid=f"{module.path}::{display}",
            display=display,
            simple=node.name,
            class_name=class_name,
            module=module,
            node=node,
            nested_names=nested,
        )
    )


def _resolve_calls(
    graph: CallGraph, info: FunctionInfo, seen_warnings: set[tuple[str, int, str]]
) -> None:
    edges = graph.edges.setdefault(info.fid, set())
    for call in ast.walk(info.node):
        if not isinstance(call, ast.Call):
            continue
        comment = info.module.comment(call.lineno)
        targets = list(_targets_for(graph, info, call))
        for token in parse_dynamic_call(comment):
            named = graph.by_name(token)
            if named:
                targets.extend(named)
            else:
                _warn(
                    graph,
                    seen_warnings,
                    info,
                    call.lineno,
                    token,
                    f"dynamic-call target {token!r} matches no project function",
                )
        may_raise = parse_may_raise(comment)
        if may_raise:
            graph.site_raises.setdefault(info.fid, []).append((call.lineno, may_raise))
        if targets:
            unique = tuple(dict.fromkeys(targets))
            graph.call_targets[id(call)] = unique
            edges.update(unique)
        elif _is_opaque(graph, info, call) and not may_raise:
            name = call.func.id if isinstance(call.func, ast.Name) else "?"
            _warn(
                graph,
                seen_warnings,
                info,
                call.lineno,
                name,
                f"call to {name}() is statically opaque — raise-flow assumes it "
                "raises nothing; annotate with # dynamic-call: or # may-raise: "
                "if that is wrong",
            )


def _is_opaque(graph: CallGraph, info: FunctionInfo, call: ast.Call) -> bool:
    """True for an unresolved call through a local name (dispatch/callback).

    Constructor calls to known project classes are not opaque even when the
    class defines no ``__init__``: the callee is fully identified.
    """
    func = call.func
    return (
        isinstance(func, ast.Name)
        and func.id not in _BUILTIN_NAMES
        and func.id not in info.nested_names
        and func.id not in graph._classes
    )


def _warn(
    graph: CallGraph,
    seen: set[tuple[str, int, str]],
    info: FunctionInfo,
    line: int,
    name: str,
    message: str,
) -> None:
    key = (str(info.module.path), line, name)
    if key in seen:
        return
    seen.add(key)
    graph.warnings.append(f"{info.module.path}:{line}: in {info.display}: {message}")


def _targets_for(graph: CallGraph, info: FunctionInfo, call: ast.Call) -> list[str]:
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in graph._classes:
            init = graph.resolve_method(name, "__init__")
            post = graph.resolve_method(name, "__post_init__")
            return [fid for fid in (init, post) if fid is not None]
        local = graph._module_functions.get((str(info.module.path), name))
        if local is not None:
            return [local]
        if name in graph._simple_functions:
            return list(graph._simple_functions[name])
        return []
    if not isinstance(func, ast.Attribute):
        return []
    method = func.attr
    receiver = func.value
    if isinstance(receiver, ast.Name) and receiver.id == "self" and info.class_name:
        fid = graph.resolve_method(info.class_name, method)
        if fid is not None:
            return [fid]
    elif isinstance(receiver, ast.Name) and receiver.id in graph._classes:
        fid = graph.resolve_method(receiver.id, method)
        if fid is not None:
            return [fid]
    elif (
        isinstance(receiver, ast.Call)
        and isinstance(receiver.func, ast.Name)
        and receiver.func.id == "super"
        and info.class_name
    ):
        base_info = graph._classes.get(info.class_name)
        for base in base_info.bases if base_info else ():
            fid = graph.resolve_method(base, method)
            if fid is not None:
                return [fid]
        return []
    # Method-resolution fallback: every project definition of this name.
    return list(graph._simple_methods.get(method, ())) + list(
        graph._simple_functions.get(method, ())
    )
