"""Declared containment contracts and hot-path roots for the interprocedural rules.

Mirrors :mod:`repro.analysis.order`'s rank table: the *declarations* live in
one central registry so the README section, the ``raise-flow``/``hotpath``
checkers and reviewers all read the same source of truth.

``RAISE_CONTRACTS`` maps a function (``"Class.method"`` or a bare top-level
function name) to the complete set of :class:`~repro.core.errors.ReCacheError`
subclasses it is allowed to leak to its callers.  The raise-flow rule infers
each function's transitive may-raise set over the project call graph and flags
any contracted function whose inferred set exceeds its declaration.  The table
encodes the failure-containment architecture directly:

* the serving boundary (``EngineServer.submit``/``submit_batch``) leaks only
  the typed client failures ``QueryRejected`` and ``DeadlineExceeded``;
* the retry envelope (``QueryEngine.execute`` and everything it wraps) may
  leak ``TransientScanError`` — but nothing *above* the envelope may;
* ``CorruptedCacheError`` never appears in any contract: the quarantine layer
  (``_quarantine_entry`` + degraded re-scan in the executor, ``quarantine``
  inside the cache manager's layout-switch path) must consume it.

``HOT_PATH_ROOTS`` names the vectorized entry points of the batched pipeline;
the hotpath rule walks the call graph from these roots and flags per-row
Python work in anything reachable (see :mod:`repro.analysis.hotpath`).

Modules outside the core (the lint self-test corpus) can extend either table
with module-level literals, merged per-module by the checkers::

    RECHECK_RAISE_CONTRACTS = {"MiniServer.submit": ["QueryRejected"]}
    RECHECK_HOTPATH_ROOTS = ["corpus_batch_root"]
"""

from __future__ import annotations

#: function ("Class.method" or top-level name) -> ReCacheError subclasses it
#: may leak; anything else inferred on the function is a raise-flow violation.
RAISE_CONTRACTS: dict[str, frozenset[str]] = {
    # -- serving boundary: only typed client failures cross it ---------------
    "EngineServer.submit": frozenset({"QueryRejected", "DeadlineExceeded"}),
    "EngineServer.submit_batch": frozenset({"QueryRejected", "DeadlineExceeded"}),
    # The future resolver settles exceptions into futures; it leaks nothing.
    "EngineServer._resolve_execution": frozenset(),
    # Worker threads re-raise into the pool *after* failing every remaining
    # future (the pool swallows); the injected crash class is part of that.
    "EngineServer._serve_group": frozenset(
        {"WorkerCrashed", "TransientScanError", "DeadlineExceeded"}
    ),
    # -- retry envelope: TransientScanError stops here or is typed ----------
    # WorkerCrashed joins the set with process-pool execution: a worker
    # process dying mid-offload surfaces as the typed crash error (budget
    # conserved; the server fails the affected futures, never strands them).
    "QueryEngine.execute": frozenset(
        {"TransientScanError", "DeadlineExceeded", "WorkerCrashed"}
    ),
    "QueryEngine.execute_group": frozenset(
        {"TransientScanError", "DeadlineExceeded", "WorkerCrashed"}
    ),
    # -- executor: quarantine consumes corruption before the plan returns ---
    "execute_plan": frozenset({"TransientScanError", "DeadlineExceeded"}),
    "execute_plan_columnar": frozenset({"TransientScanError", "DeadlineExceeded"}),
    # -- cache manager: a corrupt cached layout is quarantined, not raised --
    "ReCache.record_reuse": frozenset(),
    "ReCache.upgrade_lazy": frozenset(),
}

#: Vectorized entry points of the batched pipeline.  A bare name matches
#: every project function/method with that name (``scan_batches`` is a root
#: on each layout and format plugin); a dotted name matches one method.
HOT_PATH_ROOTS: tuple[str, ...] = (
    "scan_batches",
    "range_filtered_batch",
    "filter_batches",
    "project_batches",
    "hash_join_batches",
    "aggregate_batches",
    "compile_batch_predicate",
    # the batched executor's per-node routing function
    "_execute_batches",
)
