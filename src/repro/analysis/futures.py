"""Rule ``future-resolution``: every per-query future reaches a terminal state.

Applies to modules that opt in with a ``# recheck-lint: check-futures``
comment (the engine server does).  Within such a module, any function that
*handles* futures — creates ``Future()`` or touches a ``.future``
attribute — is scanned intraprocedurally:

* the *live region* starts at the first ``Future()`` creation (or at
  function entry when live futures arrive via parameters, detected by
  ``.future`` access);
* inside the live region, every *risky* statement — a call to anything
  outside the audited-safe set, or a ``raise`` — must sit inside a
  ``try`` whose handler or ``finally`` resolves futures (calls one of the
  resolution sinks: ``set_exception`` or an audited settle/fail helper),
  because an exception escaping such a statement would otherwise leave
  clients blocked on futures that never complete;
* ``except``/``finally`` bodies are exempt (they *are* the cleanup), as
  are lines carrying ``# recheck-lint: allow(future-resolution)``.

The safe sets are deliberately small: bookkeeping/attribute calls that
cannot raise in practice, plus helper methods whose own bodies guarantee
settlement via try/finally (``_resolve_execution``/``_fail_execution``) —
marking a sink safe is an audited, reviewable act, not a loophole.
"""

from __future__ import annotations

import ast

from repro.analysis.common import ClassInfo, Module, Violation

RULE = "future-resolution"
MARKER = "recheck-lint: check-futures"

#: Plain-name calls that cannot leave a future unresolved.
SAFE_NAMES: frozenset[str] = frozenset(
    {
        "Future", "len", "list", "tuple", "dict", "set", "iter", "range",
        "min", "max", "sum", "sorted", "enumerate", "zip", "id", "repr",
        "str", "int", "float", "bool", "isinstance", "getattr",
        "RuntimeError", "ValueError", "TypeError", "KeyError",
        # typed failure constructors fed straight into a resolution sink
        "DeadlineExceeded",
    }
)

#: Attribute (method) calls audited as safe: pure bookkeeping, lock/queue
#: primitives, and resolution sinks that settle futures internally.
SAFE_ATTRS: frozenset[str] = frozenset(
    {
        "set_result", "set_exception", "done", "cancelled", "cancel",
        "append", "extend", "pop", "popleft", "add", "discard", "get",
        "items", "keys", "values", "setdefault",
        "acquire", "release", "locked", "wait", "wait_for",
        "notify", "notify_all",
        "perf_counter", "monotonic",
        "_settle", "_resolve_execution", "_fail_execution",
    }
)


def check(modules: list[Module], classes: dict[str, ClassInfo], graph=None) -> list[Violation]:
    del classes, graph
    violations: list[Violation] = []
    for module in modules:
        if not module.has_marker(MARKER):
            continue
        for func in _functions(module.tree):
            _scan_function(module, func, violations)
    return violations


def _functions(tree: ast.Module) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function in the module, including methods and closures."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _own_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.AST]:
    """Nodes of ``func`` excluding nested function bodies (scanned separately)."""
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        nodes.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return nodes

def _creates_future(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "Future"
    )


def _live_start(func: ast.FunctionDef | ast.AsyncFunctionDef) -> int | None:
    """First line at which unresolved futures exist, or None if never.

    A function that creates its own ``Future()`` goes live at the first
    creation; a function that *receives* live futures — it touches a
    ``.future`` attribute or calls a resolution sink without creating any —
    is live from its first statement.
    """
    handles = False
    first_creation: int | None = None
    for node in _own_nodes(func):
        if _creates_future(node) and (first_creation is None or node.lineno < first_creation):
            first_creation = node.lineno
        if isinstance(node, ast.Attribute) and node.attr == "future":
            handles = True
        if _is_resolver_call(node):
            handles = True
    if first_creation is not None:
        return first_creation
    if handles:
        return func.body[0].lineno if func.body else func.lineno
    return None


def _is_resolver_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr
        in ("set_exception", "set_result", "_settle", "_resolve_execution", "_fail_execution")
    )


def _try_is_protecting(node: ast.Try) -> bool:
    cleanup: list[ast.stmt] = list(node.finalbody)
    for handler in node.handlers:
        cleanup.extend(handler.body)
    return any(
        _is_resolver_call(inner) for stmt in cleanup for inner in ast.walk(stmt)
    )


def _risky_call(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return None if func.id in SAFE_NAMES else func.id
    if isinstance(func, ast.Attribute):
        return None if func.attr in SAFE_ATTRS else func.attr
    return ast.unparse(func)


def _scan_function(
    module: Module,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    violations: list[Violation],
) -> None:
    live_start = _live_start(func)
    if live_start is None:
        return
    _scan_stmts(module, func.name, func.body, live_start, False, False, violations)


def _scan_stmts(
    module: Module,
    func_name: str,
    stmts: list[ast.stmt],
    live_start: int,
    protected: bool,
    in_cleanup: bool,
    violations: list[Violation],
) -> None:
    for stmt in stmts:
        _scan_stmt(module, func_name, stmt, live_start, protected, in_cleanup, violations)


def _scan_stmt(
    module: Module,
    func_name: str,
    stmt: ast.stmt,
    live_start: int,
    protected: bool,
    in_cleanup: bool,
    violations: list[Violation],
) -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return  # nested defs are scanned as their own handling functions
    if isinstance(stmt, ast.Try):
        body_protected = protected or _try_is_protecting(stmt)
        _scan_stmts(module, func_name, stmt.body, live_start, body_protected, in_cleanup, violations)
        _scan_stmts(module, func_name, stmt.orelse, live_start, body_protected, in_cleanup, violations)
        for handler in stmt.handlers:
            _scan_stmts(module, func_name, handler.body, live_start, protected, True, violations)
        _scan_stmts(module, func_name, stmt.finalbody, live_start, protected, True, violations)
        return
    if (
        isinstance(stmt, ast.Raise)
        and not (protected or in_cleanup)
        and stmt.lineno >= live_start
        and not module.allows(stmt.lineno, RULE)
    ):
        violations.append(
            Violation(
                rule=RULE,
                path=str(module.path),
                line=stmt.lineno,
                message=(
                    f"{func_name}: raise while futures are live and no "
                    "enclosing try resolves them (set_exception/settle)"
                ),
            )
        )
    if not (protected or in_cleanup):
        for expr in _direct_exprs(stmt):
            for node in _walk_pruned(expr):
                if not isinstance(node, ast.Call) or node.lineno < live_start:
                    continue
                name = _risky_call(node)
                if name is None or module.allows(node.lineno, RULE):
                    continue
                violations.append(
                    Violation(
                        rule=RULE,
                        path=str(module.path),
                        line=node.lineno,
                        message=(
                            f"{func_name}: call to {name}() while futures are live, "
                            "outside any try that resolves them on failure "
                            "(set_exception / settle sink in a handler or finally)"
                        ),
                    )
                )
    for value in ast.iter_child_nodes(stmt):
        if isinstance(value, ast.stmt):
            _scan_stmt(module, func_name, value, live_start, protected, in_cleanup, violations)
        elif isinstance(value, ast.excepthandler):  # pragma: no cover - Try handled above
            _scan_stmts(module, func_name, value.body, live_start, protected, True, violations)


def _direct_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The statement's own expressions, excluding nested statements."""
    exprs: list[ast.expr] = []
    for value in ast.iter_child_nodes(stmt):
        if isinstance(value, ast.expr):
            exprs.append(value)
        elif isinstance(value, ast.withitem):
            exprs.append(value.context_expr)
    return exprs


def _walk_pruned(expr: ast.expr) -> list[ast.AST]:
    """All nodes of ``expr`` except lambda bodies (deferred execution)."""
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        nodes.append(node)
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return nodes
