"""Runtime lock-order watchdog: a tsan-lite for the test suite.

``LockWatchdog.install()`` monkeypatches ``threading.Lock``/``RLock`` so
that locks created *from repro modules* (caller-frame filtered — thread
machinery, pools and test helpers keep real primitives) come back wrapped
in :class:`_WatchedLock`.  Every acquisition is recorded on a per-thread
held stack; acquiring a ranked lock while already holding a lock of an
equal or higher rank records an order-inversion violation, including the
acquisition sites of both locks.  Violations are *recorded*, never raised
in the worker thread — the pytest fixture calls :meth:`assert_clean` at
teardown so the failure lands in the right test.

Ranks come from :data:`repro.analysis.order.LOCK_RANKS` via
:func:`label_locks`, which names the watched lock attributes of live
objects (``ReCache._lock`` → rank 20, ...).  Unlabeled locks are tracked
on the held stack but unconstrained, so partially-labeled trees degrade
gracefully instead of false-positiving.

The static lock-order rule sees only lexically nested ``with`` blocks;
this watchdog sees the dynamic truth — a shard lock held across a call
that internally grabs the budget lock, callback re-entrancy, and
anything else hidden behind indirection.
"""

from __future__ import annotations

import sys
import threading

from repro.analysis.order import LOCK_RANKS

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: Innermost active watchdog (install() pushes, uninstall() pops).
_ACTIVE: list["LockWatchdog"] = []


class LockOrderError(AssertionError):
    """Raised by :meth:`LockWatchdog.assert_clean` when inversions occurred."""


def _current() -> "LockWatchdog | None":
    try:
        return _ACTIVE[-1]
    except IndexError:  # uninstalled concurrently with a worker's acquire
        return None


def _acquisition_site() -> str:
    """file:line of the repro/test frame performing the acquisition."""
    frame = sys._getframe(2)
    while frame is not None:
        name = frame.f_globals.get("__name__", "")
        if name != __name__:
            return f"{frame.f_code.co_filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"  # pragma: no cover


class _WatchedLock:
    """Wraps a real lock; reports acquire/release to the active watchdog.

    Deliberately does NOT proxy ``_release_save``/``_acquire_restore``/
    ``_is_owned``: ``threading.Condition`` then falls back to its default
    implementations, which route through our ``acquire``/``release`` and
    keep the held stack consistent across ``wait()``.
    """

    __slots__ = ("inner", "label", "rank")

    def __init__(self, inner, label: str | None = None, rank: int | None = None):
        self.inner = inner
        self.label = label
        self.rank = rank

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self.inner.acquire(blocking, timeout)
        watchdog = _current()
        if acquired and watchdog is not None:
            # A LockOrderError here is fatal diagnostics by design: the test
            # harness wants the inverted acquisition to stay visible, not be
            # rolled back.
            watchdog._record_acquire(self, _acquisition_site())  # recheck-lint: allow(reservation-leak)
        return acquired

    def release(self) -> None:
        watchdog = _current()
        if watchdog is not None:
            watchdog._record_release(self)
        self.inner.release()

    def locked(self) -> bool:
        return self.inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def _at_fork_reinit(self) -> None:  # pragma: no cover - fork support
        self.inner._at_fork_reinit()

    def __repr__(self) -> str:
        name = self.label or "<unlabeled>"
        return f"<_WatchedLock {name} rank={self.rank} {self.inner!r}>"


class LockWatchdog:
    """Records per-thread lock acquisition stacks and rank inversions."""

    def __init__(self) -> None:
        self.violations: list[str] = []
        self._held = threading.local()  # list[(lock, site)] per thread

    # -- lifecycle ----------------------------------------------------------
    def install(self) -> "LockWatchdog":
        if not _ACTIVE:
            threading.Lock = _lock_factory
            threading.RLock = _rlock_factory
        _ACTIVE.append(self)
        return self

    def uninstall(self) -> None:
        if self in _ACTIVE:
            _ACTIVE.remove(self)
        if not _ACTIVE:
            threading.Lock = _REAL_LOCK
            threading.RLock = _REAL_RLOCK

    def __enter__(self) -> "LockWatchdog":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    def assert_clean(self) -> None:
        if self.violations:
            details = "\n  ".join(self.violations)
            raise LockOrderError(f"lock-order inversions detected:\n  {details}")

    # -- recording ----------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _record_acquire(self, lock: _WatchedLock, site: str) -> None:
        stack = self._stack()
        already_held = any(held is lock for held, _ in stack)
        if lock.rank is not None and not already_held:
            for held, held_site in stack:
                if held is lock or held.rank is None:
                    continue
                if lock.rank <= held.rank:
                    self.violations.append(
                        f"{lock.label} (rank {lock.rank}, acquired at {site}) "
                        f"while holding {held.label} (rank {held.rank}, "
                        f"acquired at {held_site}) in thread "
                        f"{threading.current_thread().name}"
                    )
                    break
        stack.append((lock, site))

    def _record_release(self, lock: _WatchedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] is lock:
                del stack[index]
                return
        # Release of a lock acquired before this watchdog was active: ignore.


def _caller_is_repro() -> bool:
    name = sys._getframe(2).f_globals.get("__name__", "")
    return name.startswith("repro.") and not name.startswith("repro.analysis")


def _lock_factory():
    inner = _REAL_LOCK()
    return _WatchedLock(inner) if _caller_is_repro() else inner


def _rlock_factory():
    inner = _REAL_RLOCK()
    return _WatchedLock(inner) if _caller_is_repro() else inner


def watch(lock, label: str | None = None, rank: int | None = None) -> _WatchedLock:
    """Wrap an explicit lock (tests build labeled locks directly with this)."""
    return _WatchedLock(lock, label=label, rank=rank)


def label_locks(obj, prefix: str | None = None) -> int:
    """Name + rank every watched-lock attribute of ``obj``; returns count.

    Labels are ``ClassName._attr`` and ranks come from ``LOCK_RANKS``, so
    runtime enforcement follows the same declared order as the static
    pass.  Objects created while no watchdog factory was installed hold
    real locks and are skipped (count 0).
    """
    cls = type(obj).__name__
    labeled = 0
    attrs: dict[str, object] = {}
    for klass in reversed(type(obj).__mro__):  # slotted classes have no __dict__
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(obj, slot):
                attrs[slot] = getattr(obj, slot)
    attrs.update(getattr(obj, "__dict__", {}))
    for attr, value in attrs.items():
        if isinstance(value, _WatchedLock):
            value.label = f"{prefix or cls}.{attr}"
            for klass in type(obj).__mro__:
                rank = LOCK_RANKS.get((klass.__name__, attr))
                if rank is not None:
                    value.rank = rank
                    break
            labeled += 1
    return labeled
