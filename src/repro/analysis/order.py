"""The declared lock partial order and the heavy-work call denylist.

Lock ranks must strictly increase along any nested acquisition chain:
server lifecycle first, then sharded-coordinator bookkeeping locks, then
per-shard cache locks, then leaf counter/budget locks.  Two locks of the
same rank must never be held together (there is no safe tiebreak), which
is exactly how shard-lock pairs would deadlock — the cross-shard
eviction round therefore holds at most one shard lock at a time.

Modules outside the core (e.g. the lint self-test corpus) can extend the
table with a module-level ``RECHECK_LOCK_RANKS = {"Class._attr": rank}``
literal, which the analyzer merges in.
"""

from __future__ import annotations

#: (class name, lock attribute) -> rank; lower ranks are acquired first.
LOCK_RANKS: dict[tuple[str, str], int] = {
    ("EngineServer", "_lifecycle"): 0,
    ("ShardedReCache", "_sequence_lock"): 10,
    ("ShardedReCache", "_balance_lock"): 11,
    ("ShardedReCache", "_lookup_lock"): 12,
    ("ReCache", "_lock"): 20,
    ("AtomicCounter", "_lock"): 30,
    ("SharedBudget", "_lock"): 30,
    # Leaf locks of the failure-containment layer: nothing is acquired
    # under them, and they are never held while taking a cache lock.
    ("SourceCircuitBreaker", "_lock"): 30,
    ("_InjectorState", "_lock"): 30,
    # Leaf locks of the process-pool execution layer: the shm registry's
    # lock may be taken under a shard's ReCache._lock (eviction retires the
    # entry's segment in the same critical section), so it must outrank 20;
    # neither lock ever wraps a cache or serving lock.
    ("ShmRegistry", "_lock"): 30,
    ("ProcessExecutionPool", "_lock"): 30,
}

#: Lock attribute names whose rank is recoverable even when acquired on a
#: receiver other than ``self`` (e.g. ``with shard._lock:`` inside the
#: sharded coordinator).  ``_lock`` maps to the per-shard ReCache tier —
#: the only cross-object ``_lock`` acquisition in the tree.
LOCK_RANKS_BY_ATTR: dict[str, int] = {
    "_lifecycle": 0,
    "_backpressure": 0,
    "_sequence_lock": 10,
    "_balance_lock": 11,
    "_lookup_lock": 12,
    "_lock": 20,
}

#: Plain function names whose calls are forbidden while holding a lock.
HEAVY_CALL_NAMES: frozenset[str] = frozenset(
    {"build_layout", "convert_layout", "stripe_records", "open", "sleep", "print"}
)

#: Attribute (method) names whose calls are forbidden while holding a lock.
HEAVY_CALL_ATTRS: frozenset[str] = frozenset(
    {
        "convert",
        "scan",
        "scan_batches",
        "scan_range_filtered",
        "range_filtered_batch",
        "read_record_rows",
        "sleep",
        "open",
        "execute",
        "execute_group",
    }
)
