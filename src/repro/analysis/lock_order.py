"""Rules ``lock-order`` and ``heavy-work``.

``lock-order``: within one function, nested ``with`` acquisitions must
follow the declared partial order — every inner lock's rank must be
*strictly greater* than every rank already held (equal ranks never nest:
that is the shard-lock deadlock shape).  Ranks come from
:data:`repro.analysis.order.LOCK_RANKS` for ``self.<attr>`` acquisitions
(resolved against the enclosing class, aliases first), from
``LOCK_RANKS_BY_ATTR`` for other receivers (``with shard._lock:``), and
from module-level ``RECHECK_LOCK_RANKS`` literals.  Unranked locks are
tracked but unconstrained.  ``# caller-holds:`` contributes its rank at
function entry.  Cross-function nesting (a held lock calling a method
that locks internally) is the runtime watchdog's job, not this rule's.

``heavy-work``: no known-expensive call — layout conversion/building,
batch scans, file I/O, ``time.sleep`` — may appear lexically inside a
lock region.  Layouts are built and converted *outside* the cache lock
and installed under it; this rule keeps that invariant machine-checked.

Suppress either rule with ``# recheck-lint: allow(lock-order)`` /
``allow(heavy-work)`` on the offending line.
"""

from __future__ import annotations

import ast

from repro.analysis.common import ClassInfo, Module, Violation
from repro.analysis.order import (
    HEAVY_CALL_ATTRS,
    HEAVY_CALL_NAMES,
    LOCK_RANKS,
    LOCK_RANKS_BY_ATTR,
)

ORDER_RULE = "lock-order"
HEAVY_RULE = "heavy-work"


def _module_ranks(module: Module) -> dict[str, int]:
    """``RECHECK_LOCK_RANKS = {"Class._attr": rank}`` module extension."""
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "RECHECK_LOCK_RANKS"
        ):
            try:
                value = ast.literal_eval(stmt.value)
            except (ValueError, SyntaxError):
                return {}
            if isinstance(value, dict):
                return {str(key): int(rank) for key, rank in value.items()}
    return {}


class _Scanner:
    def __init__(self, module: Module, info: ClassInfo, extra_ranks: dict[str, int]):
        self.module = module
        self.info = info
        self.extra_ranks = extra_ranks
        self.violations: list[Violation] = []

    # -- rank resolution ----------------------------------------------------
    def _rank_of(self, item: ast.withitem) -> tuple[str, int | None] | None:
        """(display name, rank) of a ``with`` item acquiring a lock, or None."""
        expr = item.context_expr
        if not isinstance(expr, ast.Attribute):
            return None
        attr = expr.attr
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            attr = self.info.resolve_lock(attr)
            if attr not in self.info.lock_names() and not self._is_declared(attr):
                return None
            name = f"{self.info.name}.{attr}"
            rank = self.extra_ranks.get(name)
            if rank is None:
                rank = LOCK_RANKS.get((self.info.name, attr))
            if rank is None:
                rank = LOCK_RANKS_BY_ATTR.get(attr)
            return name, rank
        if attr in LOCK_RANKS_BY_ATTR:
            receiver = ast.unparse(expr.value)
            return f"{receiver}.{attr}", LOCK_RANKS_BY_ATTR[attr]
        return None

    def _is_declared(self, attr: str) -> bool:
        return (self.info.name, attr) in LOCK_RANKS or f"{self.info.name}.{attr}" in self.extra_ranks

    def _entry_stack(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[tuple[str, int | None]]:
        stack: list[tuple[str, int | None]] = []
        for attr in sorted(self.module.caller_holds(func.lineno)):
            attr = self.info.resolve_lock(attr)
            rank = LOCK_RANKS.get((self.info.name, attr), LOCK_RANKS_BY_ATTR.get(attr))
            stack.append((f"{self.info.name}.{attr}", rank))
        return stack

    # -- walking ------------------------------------------------------------
    def scan_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._scan_stmts(func.body, self._entry_stack(func))

    def _scan_stmts(self, stmts: list[ast.stmt], stack: list[tuple[str, int | None]]) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt, stack)

    def _scan_stmt(self, stmt: ast.stmt, stack: list[tuple[str, int | None]]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.scan_function(stmt)
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: list[tuple[str, int | None]] = []
            for item in stmt.items:
                self._scan_expr(item.context_expr, stack)
                lock = self._rank_of(item)
                if lock is None:
                    continue
                self._check_order(lock, stack + acquired, stmt.lineno)
                acquired.append(lock)
            self._scan_stmts(stmt.body, stack + acquired)
            return
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.stmt):
                self._scan_stmt(value, stack)
            elif isinstance(value, ast.expr):
                self._scan_expr(value, stack)
            elif isinstance(value, ast.excepthandler):
                self._scan_stmts(value.body, stack)

    def _check_order(
        self,
        lock: tuple[str, int | None],
        held: list[tuple[str, int | None]],
        line: int,
    ) -> None:
        name, rank = lock
        if rank is None or self.module.allows(line, ORDER_RULE):
            return
        for held_name, held_rank in held:
            if held_name == name or held_rank is None:
                continue
            if rank <= held_rank:
                self.violations.append(
                    Violation(
                        rule=ORDER_RULE,
                        path=str(self.module.path),
                        line=line,
                        message=(
                            f"acquiring {name} (rank {rank}) while holding "
                            f"{held_name} (rank {held_rank}); ranks must strictly increase"
                        ),
                    )
                )
                return

    def _scan_expr(self, expr: ast.expr, stack: list[tuple[str, int | None]]) -> None:
        if not stack:
            return
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None or self.module.allows(node.lineno, HEAVY_RULE):
                continue
            self.violations.append(
                Violation(
                    rule=HEAVY_RULE,
                    path=str(self.module.path),
                    line=node.lineno,
                    message=(
                        f"call to {name}() inside a lock region "
                        f"(holding {', '.join(n for n, _ in stack)}); "
                        "do heavy work outside the lock and install the result under it"
                    ),
                )
            )


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name) and func.id in HEAVY_CALL_NAMES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in HEAVY_CALL_ATTRS:
        return func.attr
    return None


def check(modules: list[Module], classes: dict[str, ClassInfo], graph=None) -> list[Violation]:
    del graph
    violations: list[Violation] = []
    ranks_by_module = {id(module): _module_ranks(module) for module in modules}
    for info in classes.values():
        extra = ranks_by_module.get(id(info.module), {})
        for stmt in info.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scanner = _Scanner(info.module, info, extra)
                scanner.scan_function(stmt)
                violations.extend(scanner.violations)
    return violations
