"""Rule ``dtype-view``: flat-view producers never round-trip through lists.

Functions whose ``def`` line carries a ``# returns: flat-view`` marker
promise to hand back the already-flat per-record representation (a raw
striped value list or a memoized float64 ndarray) *without* rebuilding it
through Python-level iteration.  The vectorized fast paths rely on this:
a hidden ``list(...)``/``.tolist()``/comprehension in a hot accessor
silently turns an O(1) view into an O(n) copy and breaks dtype stability.

The rule flags any ``return`` expression in a marked function containing
a list/generator comprehension or a call to ``list``/``sorted``/
``.tolist()``/``.to_rows()``/``np.fromiter``.  Suppress a deliberate
materialization with ``# recheck-lint: allow(dtype-view)``.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.common import ClassInfo, Module, Violation

RULE = "dtype-view"
_MARKER_RE = re.compile(r"returns:\s*flat-view")

_FORBIDDEN_NAMES = frozenset({"list", "sorted"})
_FORBIDDEN_ATTRS = frozenset({"tolist", "to_rows", "fromiter"})


def check(modules: list[Module], classes: dict[str, ClassInfo], graph=None) -> list[Violation]:
    del classes, graph
    violations: list[Violation] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _MARKER_RE.search(module.comment(node.lineno)):
                continue
            _scan_marked(module, node, violations)
    return violations


def _scan_marked(
    module: Module,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    violations: list[Violation],
) -> None:
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            offender = _first_round_trip(node.value)
            if offender is None or module.allows(node.lineno, RULE):
                continue
            violations.append(
                Violation(
                    rule=RULE,
                    path=str(module.path),
                    line=node.lineno,
                    message=(
                        f"{func.name} is marked '# returns: flat-view' but its "
                        f"return value is built via {offender} — a Python-list "
                        "round-trip, not a flat view"
                    ),
                )
            )


def _first_round_trip(expr: ast.expr) -> str | None:
    for node in ast.walk(expr):
        if isinstance(node, ast.ListComp):
            return "a list comprehension"
        if isinstance(node, ast.GeneratorExp):
            return "a generator expression"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _FORBIDDEN_NAMES:
                return f"{func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr in _FORBIDDEN_ATTRS:
                return f".{func.attr}(...)"
    return None
