"""Rules ``raise-flow`` and ``reservation-leak``.

``raise-flow`` infers, for every project function, the transitive set of
:class:`~repro.core.errors.ReCacheError` subclasses it may raise: direct
``raise`` statements and ``# may-raise:`` site annotations seed the sets,
call edges from the project :mod:`~repro.analysis.callgraph` propagate them,
and ``except`` clauses narrow them — an ``except`` catches the matching
subset (subclasses included), a bare ``raise``/``raise exc`` in the handler
re-raises exactly what it caught, and raises *inside* handler bodies escape
the try that owns the handler.  The resulting escape sets are checked against
the declared containment contracts
(:data:`repro.analysis.contracts.RAISE_CONTRACTS`, extendable per module with
a ``RECHECK_RAISE_CONTRACTS`` literal): a contracted function whose inferred
set exceeds its declaration is flagged at its ``def`` line.

Known over/under-approximations, all deliberate:

* calls through locals/parameters with no annotation contribute nothing
  (the call graph reports them as warnings, not silent holes);
* a callable passed as an argument (worker targets, callbacks) is not a call
  edge — on this tree those run on other threads behind their own contracts;
* narrowing is type-based, not path-sensitive: a conditional re-raise counts
  as always re-raising (escape sets only ever over-approximate).

``reservation-leak`` is the companion leak check: after a function acquires
a :class:`~repro.core.sharded_cache.SharedBudget` reservation (a non-zero
``self._reservation = ...`` store, a call to a method that makes one and
returns without settling, or a bare ``lock.acquire()``), every following
statement that may raise — a ``raise``, an annotated or opaque call, or a
call whose transitive closure contains any ``raise`` — must sit inside a
``try`` whose ``finally``/handler settles (``_settle_reservation``/
``release``); otherwise the exception edge leaks the reservation and the
budget underflows forever.  A ``# caller-settles: reservation`` comment on a
``def`` line declares the admission protocol's split-ownership case: the
function intentionally returns with the reservation outstanding, so *its*
body is exempt while every call *to* it sets the held state in the caller
(mirroring ``# caller-holds:`` for locks).  Suppress either rule per line
with ``# recheck-lint: allow(raise-flow)`` / ``allow(reservation-leak)``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph, build_call_graph, parse_may_raise
from repro.analysis.common import ClassInfo, Module, Violation
from repro.analysis.contracts import RAISE_CONTRACTS

RULE = "raise-flow"
LEAK_RULE = "reservation-leak"

#: error taxonomy root: every class transitively deriving from it is tracked
TAXONOMY_ROOT = "ReCacheError"

#: handler types that catch the whole taxonomy
_CATCH_ALL_NAMES = frozenset({"Exception", "BaseException", TAXONOMY_ROOT})


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------
def error_taxonomy(classes: dict[str, ClassInfo]) -> dict[str, frozenset[str]]:
    """name -> descendants (self included) for every ReCacheError subclass."""

    def reaches_root(name: str, seen: frozenset[str]) -> bool:
        if name == TAXONOMY_ROOT:
            return True
        info = classes.get(name)
        if info is None or name in seen:
            return False
        return any(
            base == TAXONOMY_ROOT or reaches_root(base, seen | {name})
            for base in info.bases
        )

    members = {name for name in classes if reaches_root(name, frozenset())}

    def ancestors(name: str) -> set[str]:
        out: set[str] = set()
        stack = [name]
        while stack:
            info = classes.get(stack.pop())
            if info is None:
                continue
            for base in info.bases:
                if base in members and base not in out:
                    out.add(base)
                    stack.append(base)
        return out

    descendants: dict[str, set[str]] = {name: {name} for name in members}
    for name in members:
        for ancestor in ancestors(name):
            descendants[ancestor].add(name)
    return {name: frozenset(desc) for name, desc in descendants.items()}


def _expand(
    catch_names: tuple[str, ...] | None,
    taxonomy: dict[str, frozenset[str]],
    universe: frozenset[str],
) -> frozenset[str]:
    """Taxonomy members caught by one ``except`` clause."""
    if catch_names is None:
        return universe
    caught: set[str] = set()
    for name in catch_names:
        if name in _CATCH_ALL_NAMES:
            return universe
        caught |= taxonomy.get(name, frozenset())
    return frozenset(caught)


# ---------------------------------------------------------------------------
# Per-function raise sources (with their protecting try frames)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _Frame:
    """One ``try`` protecting a source: its handlers, in order."""

    #: (caught type names or None for bare except, handler re-raises)
    handlers: tuple[tuple[tuple[str, ...] | None, bool], ...]


@dataclass
class _Source:
    kind: str  # "raise" | "call"
    data: object  # frozenset[str] for raises, ast.Call for calls
    line: int
    chain: tuple[_Frame, ...]  # innermost-first protecting frames


def _catch_names(handler: ast.excepthandler) -> tuple[str, ...] | None:
    node = handler.type
    if node is None:
        return None
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for elt in elts:
        if isinstance(elt, ast.Name):
            names.append(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.append(elt.attr)
    return tuple(names)


def _handler_reraises(handler: ast.excepthandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if (
                isinstance(node.exc, ast.Name)
                and handler.name is not None
                and node.exc.id == handler.name
            ):
                return True
    return False


def _frame_of(stmt: ast.Try) -> _Frame:
    return _Frame(
        handlers=tuple(
            (_catch_names(handler), _handler_reraises(handler))
            for handler in stmt.handlers
        )
    )


def _raised_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def collect_sources(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    taxonomy: dict[str, frozenset[str]],
) -> list[_Source]:
    """Every raise site and call site of ``func`` with its try-frame chain."""
    sources: list[_Source] = []

    def walk_stmts(stmts, chain, handler_var):
        for stmt in stmts:
            walk_stmt(stmt, chain, handler_var)

    def collect_calls(expr: ast.expr, chain) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                sources.append(_Source("call", node, node.lineno, chain))

    def walk_stmt(stmt, chain, handler_var):
        if isinstance(stmt, ast.Try):
            frame = _frame_of(stmt)
            walk_stmts(stmt.body, (frame,) + chain, handler_var)
            walk_stmts(stmt.orelse, chain, handler_var)
            for handler in stmt.handlers:
                walk_stmts(handler.body, chain, handler.name or handler_var)
            walk_stmts(stmt.finalbody, chain, handler_var)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are merged into the enclosing function; their
            # lexical try context matches how this tree invokes them.
            walk_stmts(stmt.body, chain, None)
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Raise):
            is_reraise = stmt.exc is None or (
                isinstance(stmt.exc, ast.Name) and stmt.exc.id == handler_var
            )
            if not is_reraise:
                name = _raised_name(stmt)
                if name is not None and name in taxonomy:
                    sources.append(
                        _Source("raise", frozenset({name}), stmt.lineno, chain)
                    )
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                walk_stmt(child, chain, handler_var)
            elif isinstance(child, ast.expr):
                collect_calls(child, chain)
            elif isinstance(child, ast.withitem):
                collect_calls(child.context_expr, chain)
            elif isinstance(child, ast.excepthandler):  # pragma: no cover
                walk_stmts(child.body, chain, child.name or handler_var)

    walk_stmts(func.body, (), None)
    return sources


def _escaped(
    raised: frozenset[str],
    chain: tuple[_Frame, ...],
    taxonomy: dict[str, frozenset[str]],
    universe: frozenset[str],
) -> frozenset[str]:
    """What survives the protecting try frames, innermost first."""
    for frame in chain:
        if not raised:
            break
        escaping: set[str] = set()
        remaining = set(raised)
        for catch_names, reraises in frame.handlers:
            caught = remaining & _expand(catch_names, taxonomy, universe)
            remaining -= caught
            if reraises:
                escaping |= caught
        raised = frozenset(escaping | remaining)
    return raised


# ---------------------------------------------------------------------------
# Fixed-point escape sets over the call graph
# ---------------------------------------------------------------------------
def compute_escapes(
    graph: CallGraph, taxonomy: dict[str, frozenset[str]]
) -> dict[str, frozenset[str]]:
    """fid -> transitive ReCacheError escape set, via fixed-point iteration."""
    universe = frozenset(taxonomy)
    sources = {
        fid: collect_sources(info.node, taxonomy)
        for fid, info in graph.functions.items()
    }
    escapes: dict[str, frozenset[str]] = {fid: frozenset() for fid in graph.functions}
    changed = True
    while changed:
        changed = False
        for fid, function_sources in sources.items():
            out: set[str] = set()
            for source in function_sources:
                if source.kind == "raise":
                    raised = source.data
                else:
                    call = source.data
                    raised = parse_may_raise(
                        graph.functions[fid].module.comment(source.line)
                    ) & universe
                    for target in graph.call_targets.get(id(call), ()):
                        raised |= escapes[target]
                out |= _escaped(frozenset(raised), source.chain, taxonomy, universe)
            new = frozenset(out)
            if new != escapes[fid]:
                escapes[fid] = new
                changed = True
    return escapes


def compute_raise_sets(
    modules: list[Module],
    classes: dict[str, ClassInfo],
    graph: CallGraph | None = None,
) -> dict[str, list[str]]:
    """display name -> sorted inferred escape set (non-empty only).

    This is what the CI report archives: the per-function exception sets the
    contract check ran against, unioned across same-named definitions.
    """
    if graph is None:
        graph = build_call_graph(modules, classes)
    taxonomy = error_taxonomy(classes)
    escapes = compute_escapes(graph, taxonomy)
    merged: dict[str, set[str]] = {}
    for fid, names in escapes.items():
        if names:
            merged.setdefault(graph.functions[fid].display, set()).update(names)
    return {display: sorted(names) for display, names in sorted(merged.items())}


# ---------------------------------------------------------------------------
# Contract check
# ---------------------------------------------------------------------------
def _module_contracts(module: Module) -> dict[str, frozenset[str]]:
    """``RECHECK_RAISE_CONTRACTS = {"Class.method": ["Err"]}`` extension."""
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "RECHECK_RAISE_CONTRACTS"
        ):
            try:
                value = ast.literal_eval(stmt.value)
            except (ValueError, SyntaxError):
                return {}
            if isinstance(value, dict):
                return {
                    str(name): frozenset(str(e) for e in errors)
                    for name, errors in value.items()
                }
    return {}


def merged_contracts(modules: list[Module]) -> dict[str, frozenset[str]]:
    contracts = dict(RAISE_CONTRACTS)
    for module in modules:
        contracts.update(_module_contracts(module))
    return contracts


def check(
    modules: list[Module],
    classes: dict[str, ClassInfo],
    graph: CallGraph | None = None,
) -> list[Violation]:
    if graph is None:
        graph = build_call_graph(modules, classes)
    taxonomy = error_taxonomy(classes)
    escapes = compute_escapes(graph, taxonomy)
    violations: list[Violation] = []
    for qualname, allowed in sorted(merged_contracts(modules).items()):
        for fid in graph.by_name(qualname):
            info = graph.functions[fid]
            leaked = escapes[fid] - allowed
            if not leaked or info.module.allows(info.node.lineno, RULE):
                continue
            allowed_text = ", ".join(sorted(allowed)) if allowed else "nothing"
            violations.append(
                Violation(
                    rule=RULE,
                    path=str(info.module.path),
                    line=info.node.lineno,
                    message=(
                        f"{info.display} may raise {', '.join(sorted(leaked))} — "
                        f"escapes its declared containment boundary "
                        f"(contract allows: {allowed_text})"
                    ),
                )
            )
    violations.extend(_reservation_leaks(graph))
    return violations


# ---------------------------------------------------------------------------
# Reservation/lock leak check
# ---------------------------------------------------------------------------
#: attribute calls that cannot raise in practice (bookkeeping primitives)
_SAFE_LEAK_ATTRS = frozenset(
    {
        "get", "append", "extend", "pop", "popleft", "add", "discard",
        "items", "keys", "values", "setdefault", "update", "remove",
        "perf_counter", "monotonic", "locked",
    }
)

_SETTLE_NAMES = frozenset({"_settle_reservation", "release"})

_CALLER_SETTLES_RE = re.compile(r"caller-settles")


def _caller_settles(info) -> bool:
    return bool(_CALLER_SETTLES_RE.search(info.module.comment(info.node.lineno)))


def _compute_may_raise_any(graph: CallGraph) -> dict[str, bool]:
    """fid -> function (or anything it calls) contains any ``raise`` at all."""
    direct: dict[str, bool] = {}
    for fid, info in graph.functions.items():
        direct[fid] = any(isinstance(node, ast.Raise) for node in ast.walk(info.node)) or bool(
            graph.site_raises.get(fid)
        )
    result = dict(direct)
    changed = True
    while changed:
        changed = False
        for fid in graph.functions:
            if result[fid]:
                continue
            if any(result.get(callee, False) for callee in graph.edges.get(fid, ())):
                result[fid] = True
                changed = True
    return result


def _assigns_reservation(node: ast.stmt) -> bool | None:
    """True: non-zero ``self._reservation`` store; False: zeroing store."""
    if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        return None
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "_reservation"
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            value = getattr(node, "value", None)
            if isinstance(value, ast.Constant) and value.value == 0:
                return False
            return True
    return None


def _is_acquirer(info, graph: CallGraph) -> bool:
    """Directly makes a non-zero reservation and returns without settling."""
    makes = False
    settles = False
    for node in ast.walk(info.node):
        if isinstance(node, ast.stmt) and _assigns_reservation(node) is True:
            makes = True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "_settle_reservation"
        ):
            settles = True
    return makes and not settles


def _call_attr(node: ast.Call) -> str | None:
    return node.func.attr if isinstance(node.func, ast.Attribute) else None


class _LeakScanner:
    """Tracks the acquired-reservation state through one function body."""

    def __init__(self, graph: CallGraph, info, acquirers: set[str], may_raise: dict[str, bool]):
        self.graph = graph
        self.info = info
        self.acquirers = acquirers
        self.may_raise = may_raise
        self.acquired = False
        self.violations: list[Violation] = []

    def scan(self) -> list[Violation]:
        self._walk(self.info.node.body, protected=False, cleanup=False)
        return self.violations

    # -- state triggers -----------------------------------------------------
    def _update_state(self, stmt: ast.stmt) -> None:
        """Apply this statement's *own* acquire/settle effects (not children's)."""
        assigned = _assigns_reservation(stmt)
        if assigned is not None:
            self.acquired = assigned
        for expr in self._own_exprs(stmt):
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                attr = _call_attr(node)
                if attr in _SETTLE_NAMES:
                    self.acquired = False
                elif attr == "acquire":
                    self.acquired = True
                elif self.graph.call_targets.get(id(node)) and any(
                    target in self.acquirers
                    for target in self.graph.call_targets[id(node)]
                ):
                    self.acquired = True

    # -- risk ---------------------------------------------------------------
    def _risky_call(self, node: ast.Call) -> str | None:
        line_comment = self.info.module.comment(node.lineno)
        attr = _call_attr(node)
        if attr in _SETTLE_NAMES or attr == "acquire" or attr in _SAFE_LEAK_ATTRS:
            return None
        if parse_may_raise(line_comment):
            return attr or getattr(node.func, "id", "?")
        targets = self.graph.call_targets.get(id(node))
        if targets:
            if any(self.may_raise.get(t, False) for t in targets):
                return self.graph.functions[targets[0]].display
            return None
        if isinstance(node.func, ast.Name):
            name = node.func.id
            import builtins

            if (
                name in dir(builtins)
                or name in self.info.nested_names
                or name in self.graph._classes
            ):
                return None
            return name  # opaque local callable: conservatively risky
        return None  # unresolved attribute call: external bookkeeping

    def _flag(self, line: int, what: str) -> None:
        if self.info.module.allows(line, LEAK_RULE):
            return
        self.violations.append(
            Violation(
                rule=LEAK_RULE,
                path=str(self.info.module.path),
                line=line,
                message=(
                    f"{self.info.display}: {what} while a reservation/lock is "
                    "held with no enclosing try/finally that settles it — an "
                    "exception here leaks the reservation "
                    "(wrap in try/finally: _settle_reservation()/release())"
                ),
            )
        )

    # -- walking ------------------------------------------------------------
    def _walk(self, stmts: list[ast.stmt], protected: bool, cleanup: bool) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, protected, cleanup)

    def _walk_stmt(self, stmt: ast.stmt, protected: bool, cleanup: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Try):
            body_protected = protected or self._try_settles(stmt)
            self._walk(stmt.body, body_protected, cleanup)
            self._walk(stmt.orelse, body_protected, cleanup)
            for handler in stmt.handlers:
                self._walk(handler.body, protected, True)
            self._walk(stmt.finalbody, protected, True)
            return
        was_acquired = self.acquired
        self._update_state(stmt)
        if was_acquired and not (protected or cleanup):
            if isinstance(stmt, ast.Raise):
                self._flag(stmt.lineno, "raise")
            else:
                for node in self._own_exprs(stmt):
                    for call in ast.walk(node):
                        if not isinstance(call, ast.Call):
                            continue
                        risky = self._risky_call(call)
                        if risky is not None:
                            self._flag(call.lineno, f"call to {risky}() may raise")
        if isinstance(stmt, ast.If):
            # The branches are exclusive: merge their exit states instead of
            # letting an acquisition in one arm bleed into the other.
            before = self.acquired
            self._walk(stmt.body, protected, cleanup)
            body_out = None if _terminates(stmt.body) else self.acquired
            self.acquired = before
            self._walk(stmt.orelse, protected, cleanup)
            orelse_out = (
                None if stmt.orelse and _terminates(stmt.orelse) else self.acquired
            )
            exits = [state for state in (body_out, orelse_out) if state is not None]
            self.acquired = any(exits) if exits else before
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child, protected, cleanup)

    @staticmethod
    def _own_exprs(stmt: ast.stmt) -> list[ast.expr]:
        exprs: list[ast.expr] = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                exprs.append(child)
            elif isinstance(child, ast.withitem):
                exprs.append(child.context_expr)
        return exprs

    def _try_settles(self, stmt: ast.Try) -> bool:
        cleanup: list[ast.stmt] = list(stmt.finalbody)
        for handler in stmt.handlers:
            cleanup.extend(handler.body)
        for body_stmt in cleanup:
            for node in ast.walk(body_stmt):
                if isinstance(node, ast.Call) and _call_attr(node) in _SETTLE_NAMES:
                    return True
        return False


def _terminates(stmts: list[ast.stmt]) -> bool:
    """The block cannot fall through (so its state never merges forward)."""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _reservation_leaks(graph: CallGraph) -> list[Violation]:
    acquirers = {
        fid
        for fid, info in graph.functions.items()
        if _is_acquirer(info, graph) or _caller_settles(info)
    }
    may_raise = _compute_may_raise_any(graph)
    violations: list[Violation] = []
    for info in graph.functions.values():
        if info.simple in ("__init__", "__post_init__"):
            continue
        if _caller_settles(info):
            # Split-ownership protocol: this function hands its reservation
            # to the caller, whose try/finally owns the exception edges.
            continue
        scanner = _LeakScanner(graph, info, acquirers, may_raise)
        violations.extend(scanner.scan())
    return violations
