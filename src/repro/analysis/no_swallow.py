"""Rule ``no-swallow``: except blocks contain faults, they never hide them.

Applies to modules that opt in with a ``# recheck-lint: check-no-swallow``
comment (the engine executor, session and server do).  Every ``except``
handler in such a module must produce an *outcome* for the caught
exception — one of:

* a ``raise`` (re-raise, or wrap in a typed error);
* a call to an audited containment sink, a function whose contract is to
  convert the fault into a degraded-but-correct result or a typed client
  failure (``_fail_execution``/``set_exception`` resolve futures
  exceptionally, ``quarantine``/``_quarantine_entry`` evict a poisoned
  cache entry, ``_degraded_raw_rows``/``_degraded_raw_batches`` re-serve
  from the raw source, ``note_skipped_admission`` records a declined
  admission, ``record_failure`` feeds the circuit breaker).

A handler with neither is a swallowed fault: the failure-containment
design of this tree (retry / degrade / quarantine / shed, all typed) only
holds if no layer silently eats an exception on the way up.  Deliberate
exceptions carry ``# recheck-lint: allow(no-swallow)`` on the ``except``
line.  ``contextlib.suppress`` is invisible to this rule by design: it is
a ``with`` statement, and its explicitness is exactly the audited,
greppable act this rule wants to force.
"""

from __future__ import annotations

import ast

from repro.analysis.common import ClassInfo, Module, Violation

RULE = "no-swallow"
MARKER = "recheck-lint: check-no-swallow"

#: Audited containment sinks: calling one of these IS the exception's
#: outcome.  Extending this set is a reviewable act, not a loophole.
SINKS: frozenset[str] = frozenset(
    {
        "_fail_execution",
        "set_exception",
        "quarantine",
        "_quarantine_entry",
        "_degraded_raw_rows",
        "_degraded_raw_batches",
        "note_skipped_admission",
        "record_failure",
    }
)


def check(modules: list[Module], classes: dict[str, ClassInfo], graph=None) -> list[Violation]:
    del classes, graph
    violations: list[Violation] = []
    for module in modules:
        if not module.has_marker(MARKER):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    _check_handler(module, handler, violations)
    return violations


def _check_handler(
    module: Module, handler: ast.excepthandler, violations: list[Violation]
) -> None:
    if module.allows(handler.lineno, RULE):
        return
    if _has_outcome(handler):
        return
    caught = ast.unparse(handler.type) if handler.type is not None else "BaseException"
    violations.append(
        Violation(
            rule=RULE,
            path=str(module.path),
            line=handler.lineno,
            message=(
                f"except {caught}: swallows the exception — re-raise, wrap in "
                "a typed error, or route it through a containment sink "
                f"({', '.join(sorted(SINKS))})"
            ),
        )
    )


def _has_outcome(handler: ast.excepthandler) -> bool:
    """True when the handler re-raises or calls an audited sink."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in SINKS:
                return True
    return False
