"""Shared infrastructure for the recheck-lint static pass.

Parses modules once (AST + per-line comments via :mod:`tokenize`) and
collects the concurrency declarations the rules consume:

* ``GUARDED_BY = {"_field": "_lock", ...}`` class attributes (merged
  across bases, resolved by class name);
* ``LOCK_ALIASES = {"_backpressure": "_lifecycle"}`` class attributes for
  objects such as ``threading.Condition(lock)`` that acquire another
  attribute's lock;
* ``# guarded-by: self._lock`` trailing comments on ``__init__``
  assignments, the lightweight alternative to ``GUARDED_BY``;
* ``# caller-holds: self._lock`` trailing comments on ``def`` lines for
  internal methods documented as lock-held;
* ``# unguarded-read: ...`` trailing comments blessing a deliberate
  lock-free read (GIL-atomic int/reference loads);
* ``# recheck-lint: allow(<rule>)`` generic per-line suppressions.
"""

from __future__ import annotations

import ast
import contextlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_ALLOW_RE = re.compile(r"recheck-lint:\s*allow\(([\w,\s-]+)\)")
_GUARDED_COMMENT_RE = re.compile(r"guarded-by:\s*self\.(\w+)")
_CALLER_HOLDS_RE = re.compile(r"caller-holds:\s*self\.(\w+)")
_UNGUARDED_READ_RE = re.compile(r"unguarded-read")


@dataclass
class Violation:
    """One finding: a rule name, a location, and a human-readable message."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class Module:
    """A parsed source file: AST plus the comment text of every line."""

    path: Path
    source: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path) -> "Module":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        comments: dict[int, str] = {}
        # TokenError cannot happen after ast.parse succeeded; guarded anyway.
        with contextlib.suppress(tokenize.TokenError):
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments[token.start[0]] = token.string
        return cls(path=path, source=source, tree=tree, comments=comments)

    def comment(self, line: int) -> str:
        return self.comments.get(line, "")

    def allows(self, line: int, rule: str) -> bool:
        match = _ALLOW_RE.search(self.comment(line))
        if not match:
            return False
        allowed = {part.strip() for part in match.group(1).split(",")}
        return rule in allowed

    def has_marker(self, marker: str) -> bool:
        """True when any comment in the module contains ``marker``."""
        return any(marker in text for text in self.comments.values())

    def caller_holds(self, def_line: int) -> set[str]:
        """Locks declared held by the caller on a ``def`` line comment."""
        return set(_CALLER_HOLDS_RE.findall(self.comment(def_line)))

    def blesses_unguarded_read(self, line: int) -> bool:
        return bool(_UNGUARDED_READ_RE.search(self.comment(line)))


@dataclass
class ClassInfo:
    """A class with its (inheritance-merged) concurrency declarations."""

    name: str
    module: Module
    node: ast.ClassDef
    guarded: dict[str, str] = field(default_factory=dict)  # field -> lock attr
    aliases: dict[str, str] = field(default_factory=dict)  # alias -> lock attr
    bases: list[str] = field(default_factory=list)

    def resolve_lock(self, attr: str) -> str:
        """Canonical lock attribute for ``attr`` (follows one alias hop)."""
        return self.aliases.get(attr, attr)

    def lock_names(self) -> set[str]:
        """Every attribute that names (or aliases) a declared lock."""
        return set(self.guarded.values()) | set(self.aliases) | set(self.aliases.values())


def _literal_dict(node: ast.AST) -> dict | None:
    try:
        value = ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None
    return value if isinstance(value, dict) else None


def _own_declarations(module: Module, node: ast.ClassDef) -> tuple[dict, dict]:
    guarded: dict[str, str] = {}
    aliases: dict[str, str] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if target.id == "GUARDED_BY":
                    guarded.update(_literal_dict(stmt.value) or {})
                elif target.id == "LOCK_ALIASES":
                    aliases.update(_literal_dict(stmt.value) or {})
        if isinstance(stmt, ast.FunctionDef) and stmt.name in ("__init__", "__post_init__"):
            for inner in ast.walk(stmt):
                if not isinstance(inner, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = inner.targets if isinstance(inner, ast.Assign) else [inner.target]
                match = _GUARDED_COMMENT_RE.search(module.comment(inner.lineno))
                if not match:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        guarded[target.attr] = match.group(1)
    return guarded, aliases


def collect_classes(modules: list[Module]) -> dict[str, ClassInfo]:
    """Index every class by name, with declarations merged from bases.

    Base resolution is by simple name across the analyzed tree (the repo
    has no duplicate class names among lock-bearing types); unknown bases
    are ignored.
    """
    infos: dict[str, ClassInfo] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guarded, aliases = _own_declarations(module, node)
            bases = [base.id for base in node.bases if isinstance(base, ast.Name)]
            infos[node.name] = ClassInfo(
                name=node.name,
                module=module,
                node=node,
                guarded=guarded,
                aliases=aliases,
                bases=bases,
            )

    def merged(info: ClassInfo, seen: frozenset[str]) -> tuple[dict, dict]:
        guarded: dict[str, str] = {}
        aliases: dict[str, str] = {}
        for base in info.bases:
            parent = infos.get(base)
            if parent is not None and base not in seen:
                base_guarded, base_aliases = merged(parent, seen | {base})
                guarded.update(base_guarded)
                aliases.update(base_aliases)
        guarded.update(info.guarded)
        aliases.update(info.aliases)
        return guarded, aliases

    for info in infos.values():
        info.guarded, info.aliases = merged(info, frozenset({info.name}))
    return infos


def iter_py_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def with_lock_attrs(item: ast.withitem) -> str | None:
    """``self.<attr>`` acquired by one ``with`` item, else ``None``."""
    expr = item.context_expr
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None
