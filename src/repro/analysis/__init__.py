"""recheck-lint: self-hosted concurrency/dtype invariant checking.

The package has two halves:

* a static pass (``python -m repro.analysis.lint src``) that parses the
  tree with :mod:`ast` and enforces declared invariants — guarded-by lock
  discipline, lock acquisition order, no heavy work under locks, future
  resolution on every path, and flat-view dtype purity;
* a runtime lock-order watchdog (:mod:`repro.analysis.lock_watchdog`)
  that wraps ``threading.Lock``/``RLock`` under tests and records
  per-thread acquisition stacks — a tsan-lite for orderings the static
  pass cannot see through indirection.
"""

from repro.analysis.common import Violation

__all__ = ["Violation"]
