"""Rule ``hotpath``: keep the batched pipeline free of per-row Python work.

The batched executor exists because per-row Python iteration is the
throughput cliff the benchmarks measure (the ~0.97x Symantec regression in
``BENCH_batch_pipeline.json`` was exactly one of these loops sneaking back
in).  This rule walks the project call graph from the vectorized roots
declared in :data:`repro.analysis.contracts.HOT_PATH_ROOTS` (extendable per
module with a ``RECHECK_HOTPATH_ROOTS`` literal) and flags any *reachable*
function that:

* materializes rows from batches (``to_rows``/``iter_rows`` calls,
  ``rows_from_batches``/``batches_from_row_iter`` bridges);
* iterates records in Python (``for ... in zip(*cols)`` row transposition,
  looping over ``.column()``/``.to_rows()``);
* builds a dict per record inside a loop;
* round-trips an array through Python lists (``.tolist()``/``np.fromiter``)
  or gathers elements one by one (``[col[i] for i in idx]``);
* interprets striped repetition/definition levels record by record
  (``.record_entries()`` inside a loop) — the nested-predicate vectorizer
  evaluates the entry arrays wholesale, so a per-record level walk on the hot
  path means a nested column fell off the vectorized plan.

Audited interpreter-parity paths opt out with ``# rowwise-fallback: reason``:
on a ``def`` line it prunes the function *and everything only reachable
through it* from the walk; on a flagged line it blesses that one site.
``# recheck-lint: allow(hotpath)`` works site-level as well.
"""

from __future__ import annotations

import ast
import re
from collections import deque

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.common import ClassInfo, Module, Violation
from repro.analysis.contracts import HOT_PATH_ROOTS

RULE = "hotpath"

_FALLBACK_RE = re.compile(r"rowwise-fallback:")

#: attribute calls that materialize per-row Python objects from a batch
_ROW_MATERIALIZE_ATTRS = frozenset({"to_rows", "iter_rows"})

#: attribute calls that round-trip array data through Python lists
_LIST_ROUNDTRIP_ATTRS = frozenset({"tolist", "fromiter"})

#: top-level bridge functions between the row and batch worlds
_ROW_BRIDGE_NAMES = frozenset({"rows_from_batches", "batches_from_row_iter"})

#: iterating a call to one of these attrs walks records one by one
_ROW_ITER_ATTRS = frozenset({"column", "to_rows", "iter_rows"})

#: per-record striped level interpretation (Dremel finite-state walk)
_LEVEL_WALK_ATTRS = frozenset({"record_entries"})


def has_fallback(comment: str) -> bool:
    return bool(_FALLBACK_RE.search(comment))


def _module_roots(module: Module) -> list[str]:
    """``RECHECK_HOTPATH_ROOTS = ["corpus_batch_root"]`` extension."""
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "RECHECK_HOTPATH_ROOTS"
        ):
            try:
                value = ast.literal_eval(stmt.value)
            except (ValueError, SyntaxError):
                return []
            if isinstance(value, (list, tuple)):
                return [str(name) for name in value]
    return []


def reachable_functions(graph: CallGraph, modules: list[Module]) -> dict[str, str]:
    """fid -> root display it is reachable from (first discovery wins).

    Functions whose ``def`` line carries ``# rowwise-fallback:`` are pruned:
    neither they nor anything reachable only through them is visited.
    """
    roots: list[str] = list(HOT_PATH_ROOTS)
    for module in modules:
        roots.extend(_module_roots(module))

    def pruned(fid: str) -> bool:
        info = graph.functions[fid]
        return has_fallback(info.module.comment(info.node.lineno))

    origin: dict[str, str] = {}
    queue: deque[str] = deque()
    for root in roots:
        for fid in graph.by_name(root):
            if fid not in origin and not pruned(fid):
                origin[fid] = graph.functions[fid].display
                queue.append(fid)
    while queue:
        fid = queue.popleft()
        for callee in sorted(graph.edges.get(fid, ())):
            if callee in origin or callee not in graph.functions or pruned(callee):
                continue
            origin[callee] = origin[fid]
            queue.append(callee)
    return origin


# ---------------------------------------------------------------------------
# Per-function row-wise pattern detection
# ---------------------------------------------------------------------------
def _iter_is_rowwise(node: ast.expr) -> str | None:
    """Why iterating this expression walks rows, or None."""
    for inner in ast.walk(node):
        if not isinstance(inner, ast.Call):
            continue
        if isinstance(inner.func, ast.Name) and inner.func.id == "zip":
            if any(isinstance(arg, ast.Starred) for arg in inner.args):
                return "transposes columns into rows with zip(*...)"
        if isinstance(inner.func, ast.Attribute) and inner.func.attr in _ROW_ITER_ATTRS:
            return f"iterates .{inner.func.attr}() record by record"
    return None


def _gather_subscript(comp: ast.ListComp) -> bool:
    """``[values[i] for i in idx]`` — an element-at-a-time Python gather.

    Only data gathers count: the subscripted value must be a local collection
    (``values[i]``) or a nested subscript (``self._columns[f][i]``).  An
    attribute subscript like ``self._field_index[f]`` is a per-*field*
    metadata lookup, not per-row work.
    """
    if len(comp.generators) != 1 or comp.generators[0].ifs:
        return False
    target = comp.generators[0].target
    if not isinstance(target, ast.Name):
        return False
    elt = comp.elt
    return (
        isinstance(elt, ast.Subscript)
        and isinstance(elt.slice, ast.Name)
        and elt.slice.id == target.id
        and isinstance(elt.value, (ast.Name, ast.Subscript))
    )


def _is_chunk_loop(node: ast.For | ast.AsyncFor) -> bool:
    """``for start in range(0, n, batch_size)`` — iterates chunks, not rows."""
    call = node.iter
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
        and len(call.args) == 3
    )


def rowwise_findings(func: ast.AST) -> list[tuple[int, str]]:
    """(line, message) for every row-wise pattern in one function body."""
    findings: list[tuple[int, str]] = []
    loop_depth = 0

    def visit(node: ast.AST) -> None:
        nonlocal loop_depth
        entered_loop = isinstance(node, (ast.For, ast.AsyncFor)) and not _is_chunk_loop(
            node
        )
        if isinstance(node, (ast.For, ast.AsyncFor)):
            reason = _iter_is_rowwise(node.iter)
            if reason is not None:
                findings.append((node.lineno, f"per-row loop: {reason}"))
        if entered_loop:
            loop_depth += 1
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in _ROW_MATERIALIZE_ATTRS:
                    findings.append(
                        (node.lineno, f".{attr}() materializes Python rows from a batch")
                    )
                elif attr in _LIST_ROUNDTRIP_ATTRS:
                    findings.append(
                        (
                            node.lineno,
                            f".{attr}() round-trips array data through Python lists",
                        )
                    )
                elif attr in _LEVEL_WALK_ATTRS and loop_depth > 0:
                    findings.append(
                        (
                            node.lineno,
                            f".{attr}() interprets striped levels record by record "
                            "inside a loop",
                        )
                    )
            elif isinstance(node.func, ast.Name) and node.func.id in _ROW_BRIDGE_NAMES:
                findings.append(
                    (node.lineno, f"{node.func.id}() crosses into the row-at-a-time path")
                )
        if loop_depth > 0 and isinstance(node, (ast.Dict, ast.DictComp)):
            findings.append((node.lineno, "builds a dict per record inside a loop"))
        if isinstance(node, ast.ListComp) and _gather_subscript(node):
            findings.append(
                (node.lineno, "gathers elements one at a time in a Python comprehension")
            )
        for child in ast.iter_child_nodes(node):
            visit(child)
        if entered_loop:
            loop_depth -= 1

    for child in ast.iter_child_nodes(func):
        visit(child)
    return findings


def check(
    modules: list[Module],
    classes: dict[str, ClassInfo],
    graph: CallGraph | None = None,
) -> list[Violation]:
    if graph is None:
        graph = build_call_graph(modules, classes)
    origin = reachable_functions(graph, modules)
    violations: list[Violation] = []
    for fid, root in sorted(origin.items()):
        info = graph.functions[fid]
        for line, message in rowwise_findings(info.node):
            comment = info.module.comment(line)
            if has_fallback(comment) or info.module.allows(line, RULE):
                continue
            violations.append(
                Violation(
                    rule=RULE,
                    path=str(info.module.path),
                    line=line,
                    message=(
                        f"{info.display} is on the vectorized hot path "
                        f"(reachable from {root}) but {message} — vectorize or "
                        "annotate with # rowwise-fallback: <reason>"
                    ),
                )
            )
    return violations
