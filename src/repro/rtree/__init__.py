"""Balanced R-tree used by ReCache's query-subsumption index.

ReCache maintains one spatial index per (relation, numeric field) pair and
inserts the bounding box of every cached range predicate into it (Section 3.3
of the paper).  Looking up the caches whose predicate fully covers a new
predicate is then logarithmic in the number of cached items instead of linear.
"""

from repro.rtree.geometry import Rect
from repro.rtree.rtree import RTree

__all__ = ["Rect", "RTree"]
