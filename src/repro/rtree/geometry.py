"""Axis-aligned rectangles (hyper-boxes) for the R-tree."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Rect:
    """An axis-aligned box given by per-dimension ``(low, high)`` bounds."""

    lows: tuple[float, ...]
    highs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise ValueError("lows and highs must have the same dimensionality")
        if not self.lows:
            raise ValueError("rectangles must have at least one dimension")
        for low, high in zip(self.lows, self.highs):
            if low > high:
                raise ValueError(f"invalid bounds: low {low} > high {high}")

    @classmethod
    def from_interval(cls, low: float, high: float) -> "Rect":
        """1-D rectangle for a single range predicate."""
        return cls((float(low),), (float(high),))

    @classmethod
    def from_bounds(cls, bounds: Sequence[tuple[float, float]]) -> "Rect":
        lows = tuple(float(b[0]) for b in bounds)
        highs = tuple(float(b[1]) for b in bounds)
        return cls(lows, highs)

    @property
    def dimensions(self) -> int:
        return len(self.lows)

    def area(self) -> float:
        result = 1.0
        for low, high in zip(self.lows, self.highs):
            result *= high - low
        return result

    def margin(self) -> float:
        return sum(high - low for low, high in zip(self.lows, self.highs))

    def union(self, other: "Rect") -> "Rect":
        lows = tuple(min(a, b) for a, b in zip(self.lows, other.lows))
        highs = tuple(max(a, b) for a, b in zip(self.highs, other.highs))
        return Rect(lows, highs)

    def intersects(self, other: "Rect") -> bool:
        return all(
            low <= other_high and other_low <= high
            for low, high, other_low, other_high in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely within this rectangle."""
        return all(
            low <= other_low and other_high <= high
            for low, high, other_low, other_high in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to include ``other`` (R-tree insertion metric)."""
        return self.union(other).area() - self.area()
