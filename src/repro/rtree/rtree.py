"""A balanced R-tree with quadratic node splitting.

The tree stores ``(Rect, value)`` pairs.  ReCache uses it to answer two kinds
of queries:

* :meth:`RTree.search_containing` — entries whose rectangle fully contains a
  query rectangle (the subsumption lookup: which cached predicates cover the
  new predicate?),
* :meth:`RTree.search_intersecting` — entries overlapping a query rectangle.

Insertion follows Guttman's classic algorithm: choose the subtree needing the
least enlargement, split overflowing nodes with the quadratic seed heuristic,
and adjust bounding boxes back up to the root.  Deletion reinserts the entries
of underflowing nodes, keeping the tree balanced.
"""

from __future__ import annotations

from typing import Iterator

from repro.rtree.geometry import Rect


class _Node:
    """Internal tree node.  Leaves hold entries, inner nodes hold children."""

    __slots__ = ("is_leaf", "entries", "children", "rect", "parent")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[tuple[Rect, object]] = []
        self.children: list[_Node] = []
        self.rect: Rect | None = None
        self.parent: _Node | None = None

    def recompute_rect(self) -> None:
        rects: list[Rect]
        if self.is_leaf:
            rects = [rect for rect, _ in self.entries]
        else:
            rects = [child.rect for child in self.children if child.rect is not None]
        if not rects:
            self.rect = None
            return
        rect = rects[0]
        for other in rects[1:]:
            rect = rect.union(other)
        self.rect = rect

    def item_count(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)


class RTree:
    """Balanced R-tree over ``(Rect, value)`` pairs."""

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 2)
        self._root = _Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def insert(self, rect: Rect, value: object) -> None:
        """Insert a rectangle/value pair."""
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append((rect, value))
        leaf.rect = rect if leaf.rect is None else leaf.rect.union(rect)
        self._size += 1
        self._handle_overflow(leaf)
        self._adjust_upwards(leaf)

    def delete(self, rect: Rect, value: object) -> bool:
        """Delete one entry matching ``(rect, value)``; returns True if found."""
        leaf = self._find_leaf(self._root, rect, value)
        if leaf is None:
            return False
        for index, (entry_rect, entry_value) in enumerate(leaf.entries):
            if entry_rect == rect and entry_value == value:
                del leaf.entries[index]
                break
        self._size -= 1
        self._condense(leaf)
        # Shrink the root if it has a single non-leaf child.
        while not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        return True

    def search_containing(self, query: Rect) -> list[object]:
        """Values whose rectangle fully contains ``query`` (subsumption lookup)."""
        results: list[object] = []
        self._search(self._root, query, results, containment=True)
        return results

    def search_intersecting(self, query: Rect) -> list[object]:
        """Values whose rectangle intersects ``query``."""
        results: list[object] = []
        self._search(self._root, query, results, containment=False)
        return results

    def items(self) -> Iterator[tuple[Rect, object]]:
        """Iterate over all stored ``(rect, value)`` pairs."""
        yield from self._iter_node(self._root)

    def height(self) -> int:
        """Tree height (1 for a single leaf root); all leaves share this depth."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    # ------------------------------------------------------------------
    # Search / traversal internals
    # ------------------------------------------------------------------
    def _search(self, node: _Node, query: Rect, out: list, containment: bool) -> None:
        if node.rect is None:
            return
        if node.is_leaf:
            for rect, value in node.entries:
                if containment:
                    if rect.contains(query):
                        out.append(value)
                elif rect.intersects(query):
                    out.append(value)
            return
        for child in node.children:
            if child.rect is None:
                continue
            # For containment queries a subtree can only help if its bounding
            # box itself contains the query rectangle.
            if containment and not child.rect.contains(query):
                continue
            if not containment and not child.rect.intersects(query):
                continue
            self._search(child, query, out, containment)

    def _iter_node(self, node: _Node) -> Iterator[tuple[Rect, object]]:
        if node.is_leaf:
            yield from node.entries
            return
        for child in node.children:
            yield from self._iter_node(child)

    def _find_leaf(self, node: _Node, rect: Rect, value: object) -> _Node | None:
        if node.rect is None:
            return None
        if node.is_leaf:
            for entry_rect, entry_value in node.entries:
                if entry_rect == rect and entry_value == value:
                    return node
            return None
        for child in node.children:
            if child.rect is not None and child.rect.contains(rect):
                found = self._find_leaf(child, rect, value)
                if found is not None:
                    return found
        return None

    # ------------------------------------------------------------------
    # Insertion internals
    # ------------------------------------------------------------------
    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        while not node.is_leaf:
            best_child = None
            best_key: tuple[float, float] | None = None
            for child in node.children:
                child_rect = child.rect if child.rect is not None else rect
                key = (child_rect.enlargement(rect), child_rect.area())
                if best_key is None or key < best_key:
                    best_key = key
                    best_child = child
            assert best_child is not None
            node = best_child
        return node

    def _handle_overflow(self, node: _Node) -> None:
        while node is not None and node.item_count() > self.max_entries:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(is_leaf=False)
                new_root.children = [node, sibling]
                node.parent = new_root
                sibling.parent = new_root
                new_root.recompute_rect()
                self._root = new_root
                return
            parent.children.append(sibling)
            sibling.parent = parent
            parent.recompute_rect()
            node = parent

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: pick the two most wasteful seeds, then distribute."""
        items: list[tuple[Rect, object]]
        if node.is_leaf:
            items = list(node.entries)
        else:
            items = [(child.rect, child) for child in node.children]

        seed_a, seed_b = self._pick_seeds([rect for rect, _ in items])
        group_a: list[tuple[Rect, object]] = [items[seed_a]]
        group_b: list[tuple[Rect, object]] = [items[seed_b]]
        rect_a = items[seed_a][0]
        rect_b = items[seed_b][0]
        remaining = [item for i, item in enumerate(items) if i not in (seed_a, seed_b)]

        for rect, payload in remaining:
            # Force assignment when one group must absorb the rest to reach
            # the minimum fill factor.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.append((rect, payload))
                rect_a = rect_a.union(rect)
                continue
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.append((rect, payload))
                rect_b = rect_b.union(rect)
                continue
            grow_a = rect_a.enlargement(rect)
            grow_b = rect_b.enlargement(rect)
            if grow_a < grow_b or (grow_a == grow_b and len(group_a) <= len(group_b)):
                group_a.append((rect, payload))
                rect_a = rect_a.union(rect)
            else:
                group_b.append((rect, payload))
                rect_b = rect_b.union(rect)

        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = [payload for _, payload in group_a]
            sibling.children = [payload for _, payload in group_b]
            for child in node.children:
                child.parent = node
            for child in sibling.children:
                child.parent = sibling
        node.recompute_rect()
        sibling.recompute_rect()
        return sibling

    @staticmethod
    def _pick_seeds(rects: list[Rect]) -> tuple[int, int]:
        worst_pair = (0, 1)
        worst_waste = float("-inf")
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                waste = rects[i].union(rects[j]).area() - rects[i].area() - rects[j].area()
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    def _adjust_upwards(self, node: _Node) -> None:
        while node is not None:
            node.recompute_rect()
            node = node.parent

    # ------------------------------------------------------------------
    # Deletion internals
    # ------------------------------------------------------------------
    def _condense(self, node: _Node) -> None:
        orphans: list[tuple[Rect, object]] = []
        while node.parent is not None:
            parent = node.parent
            if node.item_count() < self.min_entries:
                parent.children.remove(node)
                orphans.extend(self._iter_node(node))
            else:
                node.recompute_rect()
            parent.recompute_rect()
            node = parent
        self._root.recompute_rect()
        for rect, value in orphans:
            self._size -= 1
            self.insert(rect, value)
