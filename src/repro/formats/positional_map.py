"""Positional maps: byte-offset skeletons of raw text files.

NoDB and Proteus build a *positional map* while scanning a raw file for the
first time: for each record they remember its byte offset (and, for CSV, the
offsets of individual fields).  Later queries use the map to navigate the file
without re-discovering its structure, which reduces the cost of repeatedly
parsing already accessed raw data.

The map also gives ReCache its *lazy* caching mode: a lazy cache stores only
the record offsets of the tuples that satisfied a selection, so reusing the
cache means re-reading (and re-parsing) just those records via the map.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PositionalMap:
    """Record- and field-level byte offsets for one raw file."""

    #: byte offset of the start of each record (line), in file order.
    record_offsets: list[int] = field(default_factory=list)
    #: byte length of each record, excluding the newline.
    record_lengths: list[int] = field(default_factory=list)
    #: for CSV files: per-record offsets of the start of each tracked field,
    #: keyed by field name.  Only the fields touched by past queries are kept,
    #: mirroring the partial positional maps of NoDB.
    field_offsets: dict[str, list[int]] = field(default_factory=dict)
    #: set by :meth:`mark_complete` once a scan has walked the whole file; an
    #: abandoned scan (a consumer that stops pulling the generator) leaves the
    #: map partial, and a partial map must not masquerade as the file total.
    _complete: bool = False

    @property
    def record_count(self) -> int:
        return len(self.record_offsets)

    @property
    def complete(self) -> bool:
        """True once record-level offsets for the whole file are present."""
        return self._complete

    def mark_complete(self) -> None:
        """Declare that the map now covers every record of the file."""
        self._complete = True

    def add_record(self, offset: int, length: int) -> int:
        """Register a record; returns its ordinal index."""
        self.record_offsets.append(offset)
        self.record_lengths.append(length)
        return len(self.record_offsets) - 1

    def record_span(self, index: int) -> tuple[int, int]:
        """Return ``(offset, length)`` of the record at ``index``."""
        return self.record_offsets[index], self.record_lengths[index]

    def track_field(self, name: str) -> None:
        if name not in self.field_offsets:
            self.field_offsets[name] = []

    def tracked_fields(self) -> list[str]:
        return list(self.field_offsets)

    def add_field_offset(self, name: str, offset: int) -> None:
        self.field_offsets[name].append(offset)

    def nbytes(self) -> int:
        """Approximate memory footprint of the map, for accounting."""
        per_int = 8
        total = (len(self.record_offsets) + len(self.record_lengths)) * per_int
        for offsets in self.field_offsets.values():
            total += len(offsets) * per_int
        return total
