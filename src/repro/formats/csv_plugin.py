"""CSV input plugin.

Scans delimiter-separated text files, parsing only the fields a query needs
(the typed parse of an untouched field is skipped entirely).  On the first full
scan the plugin populates a :class:`~repro.formats.positional_map.PositionalMap`
with record offsets, which later scans and lazy caches use to jump directly to
individual records.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.core.errors import TransientScanError
from repro.engine.batch import RecordBatch
from repro.engine.types import AtomType, RecordType
from repro.faults import runtime as faults
from repro.formats.positional_map import PositionalMap


class CSVPlugin:
    """Reader for a single CSV file described by a flat relational schema."""

    format_name = "csv"

    def __init__(self, path: str | Path, schema: RecordType, delimiter: str = "|") -> None:
        if not schema.is_flat():
            raise ValueError("CSV schema must be flat (atoms only)")
        self.path = Path(path)
        self.schema = schema
        self.delimiter = delimiter
        self.positional_map = PositionalMap()
        self._field_index = {f.name: i for i, f in enumerate(schema.fields)}
        self._field_types: list[AtomType] = [f.dtype for f in schema.fields]  # type: ignore[misc]

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Yield parsed rows, restricted to ``fields`` when given.

        The first scan also builds the record-level positional map as a side
        effect; later scans reuse it implicitly through :meth:`read_records`.
        The map is built into a fresh instance and installed only when the scan
        reaches the end of the file, so an abandoned scan never publishes a
        partial map and concurrent first scans never interleave their offsets.
        """
        wanted = self._resolve_fields(fields)
        new_map = None if self.positional_map.complete else PositionalMap()
        offset = 0
        injector = faults.injector_for("scan.raw", self.path.name)
        try:
            with self.path.open("rb") as handle:
                for raw_line in handle:
                    line = raw_line.rstrip(b"\r\n")
                    if not line:
                        # Blank lines yield no record, so they must not occupy a
                        # map ordinal either: lazy caches store *yielded* record
                        # ordinals and resolve them through the map.
                        offset += len(raw_line)
                        continue
                    if new_map is not None:
                        new_map.add_record(offset, len(line))
                    offset += len(raw_line)
                    if injector is not None:
                        injector()
                    yield self._parse_line(line.decode("utf-8"), wanted)
        except OSError as exc:
            raise TransientScanError(f"csv scan of {self.path.name} failed: {exc}") from exc
        if new_map is not None:
            new_map.mark_complete()
            self.positional_map = new_map

    def scan_with_lines(self, fields: Sequence[str] | None = None) -> Iterator[tuple[str, dict]]:
        """Yield ``(raw_line, parsed_row)`` pairs, parsing only ``fields``.

        The raw line is what a caching materializer needs to later parse the
        *complete* tuple (all fields) without paying that cost for records that
        do not satisfy the selection.
        """
        wanted = self._resolve_fields(fields)
        new_map = None if self.positional_map.complete else PositionalMap()
        offset = 0
        injector = faults.injector_for("scan.raw", self.path.name)
        try:
            with self.path.open("rb") as handle:
                for raw_line in handle:
                    line = raw_line.rstrip(b"\r\n")
                    if not line:
                        offset += len(raw_line)
                        continue
                    if new_map is not None:
                        new_map.add_record(offset, len(line))
                    offset += len(raw_line)
                    if injector is not None:
                        injector()
                    decoded = line.decode("utf-8")
                    yield decoded, self._parse_line(decoded, wanted)
        except OSError as exc:
            raise TransientScanError(f"csv scan of {self.path.name} failed: {exc}") from exc
        if new_map is not None:
            new_map.mark_complete()
            self.positional_map = new_map

    def scan_batches(
        self,
        fields: Sequence[str] | None = None,
        batch_size: int = 1024,
        with_payload: bool = False,
    ) -> Iterator[RecordBatch]:
        """Yield the file as :class:`RecordBatch` chunks of ``batch_size`` records.

        CSV is flat, so records and rows coincide.  ``with_payload`` attaches
        the raw text line and its approximate byte size per record — what the
        caching materializer needs to later parse complete tuples of the
        satisfying records without re-reading the file.

        An empty ``fields`` list reads as all fields, matching how the row
        executor invokes CSV scans (``fields or None``) for bare-scan queries.
        """
        wanted = self._resolve_fields(fields or None)
        columns: dict[str, list] = {name: [] for name in wanted}
        lines: list[str] | None = [] if with_payload else None
        nbytes: list[int] | None = [] if with_payload else None
        count = 0
        for line, row in self.scan_with_lines(fields or None):
            for name in wanted:
                columns[name].append(row[name])
            if with_payload:
                lines.append(line)
                nbytes.append(max(16, len(line)))
            count += 1
            if count >= batch_size:
                yield RecordBatch(columns, row_count=count, records=lines, record_bytes=nbytes)
                columns = {name: [] for name in wanted}  # recheck-lint: allow(hotpath) -- resets the per-batch accumulator, built once per batch not per record
                lines = [] if with_payload else None
                nbytes = [] if with_payload else None
                count = 0
        if count:
            yield RecordBatch(columns, row_count=count, records=lines, record_bytes=nbytes)

    def parse_full(self, line: str) -> dict:
        """Parse every field of one raw CSV line (the complete tuple)."""
        return self._parse_line(line, self.schema.field_names())

    def read_records(self, indexes: Iterable[int], fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Yield parsed rows for specific record ordinals via the positional map.

        This is the access path used when a *lazy* cache (offsets of satisfying
        tuples) is reused: instead of re-scanning and re-filtering the whole
        file, only the recorded records are fetched and parsed.
        """
        if not self.positional_map.complete:
            # Build the map with a cheap structural pass (no field parsing).
            for _ in self.scan(fields=[]):
                pass
        position_map = self.positional_map
        wanted = self._resolve_fields(fields)
        injector = faults.injector_for("scan.raw", self.path.name)
        try:
            with self.path.open("rb") as handle:
                for index in indexes:
                    offset, length = position_map.record_span(index)
                    handle.seek(offset)
                    line = handle.read(length).decode("utf-8")
                    if injector is not None:
                        injector()
                    yield self._parse_line(line, wanted)
        except OSError as exc:
            raise TransientScanError(f"csv record read of {self.path.name} failed: {exc}") from exc

    def read_record_rows(  # rowwise-fallback: lazy-offset point reads parse one record at a time by design
        self, indexes: Iterable[int], fields: Sequence[str] | None = None
    ) -> Iterator[list[dict]]:
        """Yield each requested record as a single-row list (CSV is flat)."""
        for row in self.read_records(indexes, fields):
            yield [row]

    def record_count(self) -> int:
        if not self.positional_map.complete:
            for _ in self.scan(fields=[]):
                pass
        return self.positional_map.record_count

    def file_size(self) -> int:
        return self.path.stat().st_size

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_fields(self, fields: Sequence[str] | None) -> list[str]:
        if fields is None:
            return self.schema.field_names()
        unknown = [f for f in fields if f not in self._field_index]
        if unknown:
            raise KeyError(f"unknown CSV fields: {unknown}")
        return list(fields)

    def _parse_line(self, line: str, wanted: Sequence[str]) -> dict:
        if not wanted:
            return {}
        values = line.split(self.delimiter)
        row: dict = {}
        for name in wanted:
            index = self._field_index[name]
            if index >= len(values):
                row[name] = None
                continue
            text = values[index]
            if text == "":
                row[name] = None
            else:
                row[name] = self._field_types[index].parse(text)
        return row


def write_csv(path: str | Path, schema: RecordType, rows: Iterable[dict], delimiter: str = "|") -> int:
    """Write ``rows`` to ``path`` in CSV form; returns the number of records."""
    names = schema.field_names()
    count = 0
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            values = []
            for name in names:
                value = row.get(name)
                values.append("" if value is None else str(value))
            handle.write(delimiter.join(values))
            handle.write("\n")
            count += 1
    return count
