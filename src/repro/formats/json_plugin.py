"""Line-delimited JSON input plugin.

JSON is the expensive end of the paper's raw-format spectrum: parsing nested
objects costs far more than splitting a CSV line, which is exactly the cost
asymmetry that makes cost-aware caching pay off.  The plugin parses each line
with :func:`json.loads`, flattens nested collections into relational rows with
dotted column names (Section 4's flattening semantics), and maintains a
positional map of record offsets for lazy caches.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.core.errors import TransientScanError
from repro.engine.batch import RecordBatch, approx_record_bytes
from repro.engine.types import AtomType, DataType, Field, ListType, RecordType, flatten_record
from repro.faults import runtime as faults
from repro.formats.positional_map import PositionalMap


class JSONPlugin:
    """Reader for a line-delimited JSON file with a (possibly nested) schema."""

    format_name = "json"

    def __init__(self, path: str | Path, schema: RecordType) -> None:
        self.path = Path(path)
        self.schema = schema
        self.positional_map = PositionalMap()
        self._pruned_schemas: dict[frozenset, RecordType] = {}
        self._column_plans: dict[frozenset, tuple | None] = {}

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Yield flattened rows; nested collections multiply row counts.

        ``fields`` restricts the columns present in the emitted rows but —
        unlike CSV — the whole JSON object must still be parsed, which is why
        raw JSON access dominates query time until a cache exists.
        """
        wanted = set(fields) if fields is not None else None
        new_map = None if self.positional_map.complete else PositionalMap()
        offset = 0
        injector = faults.injector_for("scan.raw", self.path.name)
        try:
            with self.path.open("rb") as handle:
                for raw_line in handle:
                    line = raw_line.rstrip(b"\r\n")
                    if not line:
                        # Blank lines yield no record; keeping them out of the map
                        # keeps map ordinals aligned with yielded record ordinals
                        # (what lazy caches store).
                        offset += len(raw_line)
                        continue
                    if new_map is not None:
                        new_map.add_record(offset, len(line))
                    offset += len(raw_line)
                    if injector is not None:
                        injector()
                    # Decoding explicitly skips json's per-call encoding sniff.
                    record = json.loads(line.decode("utf-8"))
                    for row in flatten_record(record, self.schema):
                        if wanted is not None:
                            yield {k: row.get(k) for k in wanted}
                        else:
                            yield row
        except OSError as exc:
            raise TransientScanError(f"json scan of {self.path.name} failed: {exc}") from exc
        if new_map is not None:
            new_map.mark_complete()
            self.positional_map = new_map

    def scan_records(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Yield raw (non-flattened) nested records, one per JSON line.

        Used when populating a Parquet-style cache, which needs the original
        nested structure rather than the flattened rows.
        """
        new_map = None if self.positional_map.complete else PositionalMap()
        offset = 0
        injector = faults.injector_for("scan.raw", self.path.name)
        try:
            with self.path.open("rb") as handle:
                for raw_line in handle:
                    line = raw_line.rstrip(b"\r\n")
                    if not line:
                        offset += len(raw_line)
                        continue
                    if new_map is not None:
                        new_map.add_record(offset, len(line))
                    offset += len(raw_line)
                    if injector is not None:
                        injector()
                    yield json.loads(line.decode("utf-8"))
        except OSError as exc:
            raise TransientScanError(f"json scan of {self.path.name} failed: {exc}") from exc
        if new_map is not None:
            new_map.mark_complete()
            self.positional_map = new_map

    def scan_batches(
        self,
        fields: Sequence[str] | None = None,
        batch_size: int = 1024,
        with_payload: bool = False,
    ) -> Iterator[RecordBatch]:
        """Yield :class:`RecordBatch` chunks of ``batch_size`` *records*.

        Nested records flatten into several rows each, so a batch carries
        ``record_row_counts`` to keep the record grouping (admission sampling
        and record-level dedup both operate on records, not rows).
        ``with_payload`` attaches the parsed JSON object and its approximate
        raw size per record for the caching materializer.

        Two layers of projection pushdown keep the batched miss path cheap:
        the flatten schema is pruned to the wanted leaves (plus multiplicity
        placeholders, see :meth:`_pruned_schema`), and for schemas with at
        most one row-multiplying list a compiled column plan extracts wanted
        values straight into the batch columns without building per-row
        dictionaries at all.  Both produce bit-identical batches to the
        full ``flatten_record`` path, which remains the fallback for
        cross-product (multi-list) schemas.
        """
        wanted = list(fields) if fields is not None else self.schema.flattened().field_names()
        flatten_schema = self._pruned_schema(wanted) if fields is not None else self.schema
        plan = self._column_plan(wanted, flatten_schema)
        columns: dict[str, list] = {name: [] for name in wanted}
        counts: list[int] = []
        records: list[dict] | None = [] if with_payload else None
        nbytes: list[int] | None = [] if with_payload else None
        rows_in_batch = 0
        if plan is not None:
            list_keys, flat_cols, nested_cols = plan
        for record in self.scan_records():
            if plan is not None:
                if list_keys is None:
                    n = 1
                    for name, get in flat_cols:
                        columns[name].append(get(record))
                else:
                    obj = record
                    for key in list_keys:
                        obj = obj.get(key) if obj else None
                    elements = obj if obj else [None]
                    n = len(elements)
                    for name, get in flat_cols:
                        value = get(record)
                        if n == 1:
                            columns[name].append(value)
                        else:
                            columns[name].extend([value] * n)
                    for name, get in nested_cols:
                        column = columns[name]
                        for element in elements:
                            column.append(get(element))
                counts.append(n)
                rows_in_batch += n
            else:
                rows = flatten_record(record, flatten_schema)
                counts.append(len(rows))
                rows_in_batch += len(rows)
                for row in rows:
                    for name in wanted:
                        columns[name].append(row.get(name))
            if with_payload:
                records.append(record)
                nbytes.append(approx_record_bytes(record))
            if len(counts) >= batch_size:
                yield RecordBatch(
                    columns,
                    row_count=rows_in_batch,
                    record_row_counts=counts,
                    records=records,
                    record_bytes=nbytes,
                )
                columns = {name: [] for name in wanted}  # recheck-lint: allow(hotpath) -- resets the per-batch accumulator, built once per batch not per record
                counts = []
                records = [] if with_payload else None
                nbytes = [] if with_payload else None
                rows_in_batch = 0
        if counts:
            yield RecordBatch(
                columns,
                row_count=rows_in_batch,
                record_row_counts=counts,
                records=records,
                record_bytes=nbytes,
            )

    def _pruned_schema(self, wanted: Sequence[str]) -> RecordType:
        """Projection-pushed schema for the batched scan.

        Flattening the full schema per record dominates the batched miss path,
        so ``scan_batches`` flattens over a pruned schema instead: atoms the
        query never reads are dropped, but every list node survives (with one
        representative leaf when nothing under it is wanted) because each list
        contributes a factor to the flattened row cross product.  The pruned
        flatten therefore produces the same row count, row order and wanted
        values as the full-schema flatten — only the unread columns vanish.
        """
        key = frozenset(wanted)
        cached = self._pruned_schemas.get(key)
        if cached is None:
            pruned = _prune_record("", self.schema, key)
            cached = pruned if pruned is not None else RecordType([])
            self._pruned_schemas[key] = cached
        return cached

    def _column_plan(self, wanted: Sequence[str], schema: RecordType) -> tuple | None:
        """Compiled direct-to-columns extractors for ``scan_batches``.

        Valid only when ``schema`` (already pruned) has at most one
        row-multiplying list — then every record's flattened rows are either a
        single row (no list) or one row per element of that list, and each
        wanted leaf reduces to a key walk from the record root (flat leaves)
        or from the list element (nested leaves).  Returns
        ``(list_keys, flat_cols, nested_cols)`` or ``None`` when the schema
        needs the general cross-product flatten.
        """
        key = frozenset(wanted)
        if key not in self._column_plans:
            self._column_plans[key] = _build_column_plan(wanted, schema)
        return self._column_plans[key]

    def read_records(self, indexes: Iterable[int], fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Yield flattened rows for specific JSON-line ordinals (lazy cache reuse)."""
        for rows in self.read_record_rows(indexes, fields):
            yield from rows

    def read_record_rows(  # rowwise-fallback: lazy-offset point reads parse one record at a time by design
        self, indexes: Iterable[int], fields: Sequence[str] | None = None
    ) -> Iterator[list[dict]]:
        """Yield the flattened rows of each requested record as one list.

        Keeping the record grouping lets callers apply record-level semantics
        (e.g. aggregate parent attributes once per record) without guessing
        where one record's rows end and the next one's begin.
        """
        if not self.positional_map.complete:
            for _ in self.scan_records():
                pass
        position_map = self.positional_map
        wanted = set(fields) if fields is not None else None
        injector = faults.injector_for("scan.raw", self.path.name)
        try:
            with self.path.open("rb") as handle:
                for index in indexes:
                    offset, length = position_map.record_span(index)
                    handle.seek(offset)
                    if injector is not None:
                        injector()
                    record = json.loads(handle.read(length))
                    rows = flatten_record(record, self.schema)
                    if wanted is not None:
                        rows = [{k: row.get(k) for k in wanted} for row in rows]
                    yield rows
        except OSError as exc:
            raise TransientScanError(f"json record read of {self.path.name} failed: {exc}") from exc

    def record_count(self) -> int:
        if not self.positional_map.complete:
            for _ in self.scan_records():
                pass
        return self.positional_map.record_count

    def file_size(self) -> int:
        return self.path.stat().st_size


def write_json_lines(path: str | Path, records: Iterable[dict]) -> int:
    """Write nested records to ``path`` as line-delimited JSON; returns count."""
    count = 0
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def _prune_type(prefix: str, dtype: DataType, wanted: frozenset) -> DataType | None:
    """Prune ``dtype`` down to the leaves in ``wanted``; None when nothing survives.

    List nodes always survive — each one multiplies the flattened row count by
    its element count, so dropping one would change record row multiplicity.
    A list whose subtree holds no wanted leaf keeps a single minimal leaf as a
    placeholder for that multiplicity.
    """
    if isinstance(dtype, AtomType):
        return dtype if prefix in wanted else None
    if isinstance(dtype, ListType):
        inner = _prune_type(prefix, dtype.element, wanted)
        if inner is None:
            inner = _minimal_type(dtype.element)
        return ListType(inner)
    return _prune_record(prefix, dtype, wanted)


def _prune_record(prefix: str, dtype: RecordType, wanted: frozenset) -> RecordType | None:
    kept = []
    for field in dtype.fields:
        child = f"{prefix}.{field.name}" if prefix else field.name
        sub = _prune_type(child, field.dtype, wanted)
        if sub is not None:
            kept.append(Field(field.name, sub))
    return RecordType(kept) if kept else None


def _minimal_type(dtype: DataType) -> DataType:
    """Smallest subtree preserving ``dtype``'s flattening multiplicity."""
    if isinstance(dtype, AtomType):
        return dtype
    if isinstance(dtype, ListType):
        return ListType(_minimal_type(dtype.element))
    if not dtype.fields:
        return RecordType([])
    field = dtype.fields[0]
    return RecordType([Field(field.name, _minimal_type(field.dtype))])


#: Step marker: take the first element of an inner list (flattening keeps the
#: first level of list-of-list nesting only; deeper levels never multiply rows).
_FIRST = object()


def _multiplying_list_paths(dtype: DataType, keys: tuple = (), inside: bool = False) -> list[tuple]:
    """Key paths of every list that multiplies flattened row counts.

    A list reached through another list does not multiply (``_fill_element``
    keeps its first element only), so it is excluded.
    """
    out: list[tuple] = []
    if isinstance(dtype, ListType):
        if not inside:
            out.append(keys)
        out.extend(_multiplying_list_paths(dtype.element, keys, True))
    elif isinstance(dtype, RecordType):
        for field in dtype.fields:
            out.extend(_multiplying_list_paths(field.dtype, keys + (field.name,), inside))
    return out


def _leaf_steps(prefix: str, dtype: DataType, steps: tuple, out: dict) -> None:
    """Map each leaf path to its extraction steps (dict keys and ``_FIRST``)."""
    if isinstance(dtype, AtomType):
        out[prefix] = steps
        return
    if isinstance(dtype, ListType):
        _leaf_steps(prefix, dtype.element, steps + (_FIRST,), out)
        return
    for field in dtype.fields:
        child = f"{prefix}.{field.name}" if prefix else field.name
        _leaf_steps(child, field.dtype, steps + (field.name,), out)


def _compile_steps(steps: tuple):
    """Compile extraction steps into a getter mirroring flatten semantics.

    Falsy intermediates (missing / ``None`` / empty) resolve to ``None``,
    exactly as ``value or {}`` does in ``_extend_rows`` / ``_fill_element``.
    """
    if not steps:
        return lambda obj: obj

    def get(obj, _steps=steps):
        for step in _steps:
            if not obj:
                return None
            obj = obj[0] if step is _FIRST else obj.get(step)
        return obj

    return get


def _build_column_plan(wanted: Sequence[str], schema: RecordType) -> tuple | None:
    lists = _multiplying_list_paths(schema)
    if len(lists) > 1:
        return None
    list_keys = lists[0] if lists else None
    steps_by_leaf: dict[str, tuple] = {}
    _leaf_steps("", schema, (), steps_by_leaf)
    flat_cols: list[tuple] = []
    nested_cols: list[tuple] = []
    for name in wanted:
        steps = steps_by_leaf.get(name)
        if steps is None:
            # Leaf absent from the schema: the row dicts never held it, so
            # ``row.get`` yielded None — keep that contract.
            flat_cols.append((name, lambda obj: None))
        elif list_keys is not None and steps[: len(list_keys) + 1] == list_keys + (_FIRST,):
            nested_cols.append((name, _compile_steps(steps[len(list_keys) + 1 :])))
        else:
            flat_cols.append((name, _compile_steps(steps)))
    return (list_keys, flat_cols, nested_cols)
