"""Line-delimited JSON input plugin.

JSON is the expensive end of the paper's raw-format spectrum: parsing nested
objects costs far more than splitting a CSV line, which is exactly the cost
asymmetry that makes cost-aware caching pay off.  The plugin parses each line
with :func:`json.loads`, flattens nested collections into relational rows with
dotted column names (Section 4's flattening semantics), and maintains a
positional map of record offsets for lazy caches.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.core.errors import TransientScanError
from repro.engine.batch import RecordBatch, approx_record_bytes
from repro.engine.types import RecordType, flatten_record
from repro.faults import runtime as faults
from repro.formats.positional_map import PositionalMap


class JSONPlugin:
    """Reader for a line-delimited JSON file with a (possibly nested) schema."""

    format_name = "json"

    def __init__(self, path: str | Path, schema: RecordType) -> None:
        self.path = Path(path)
        self.schema = schema
        self.positional_map = PositionalMap()

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Yield flattened rows; nested collections multiply row counts.

        ``fields`` restricts the columns present in the emitted rows but —
        unlike CSV — the whole JSON object must still be parsed, which is why
        raw JSON access dominates query time until a cache exists.
        """
        wanted = set(fields) if fields is not None else None
        new_map = None if self.positional_map.complete else PositionalMap()
        offset = 0
        injector = faults.injector_for("scan.raw", self.path.name)
        try:
            with self.path.open("rb") as handle:
                for raw_line in handle:
                    line = raw_line.rstrip(b"\r\n")
                    if not line:
                        # Blank lines yield no record; keeping them out of the map
                        # keeps map ordinals aligned with yielded record ordinals
                        # (what lazy caches store).
                        offset += len(raw_line)
                        continue
                    if new_map is not None:
                        new_map.add_record(offset, len(line))
                    offset += len(raw_line)
                    if injector is not None:
                        injector()
                    record = json.loads(line)
                    for row in flatten_record(record, self.schema):
                        if wanted is not None:
                            yield {k: row.get(k) for k in wanted}
                        else:
                            yield row
        except OSError as exc:
            raise TransientScanError(f"json scan of {self.path.name} failed: {exc}") from exc
        if new_map is not None:
            new_map.mark_complete()
            self.positional_map = new_map

    def scan_records(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Yield raw (non-flattened) nested records, one per JSON line.

        Used when populating a Parquet-style cache, which needs the original
        nested structure rather than the flattened rows.
        """
        new_map = None if self.positional_map.complete else PositionalMap()
        offset = 0
        injector = faults.injector_for("scan.raw", self.path.name)
        try:
            with self.path.open("rb") as handle:
                for raw_line in handle:
                    line = raw_line.rstrip(b"\r\n")
                    if not line:
                        offset += len(raw_line)
                        continue
                    if new_map is not None:
                        new_map.add_record(offset, len(line))
                    offset += len(raw_line)
                    if injector is not None:
                        injector()
                    yield json.loads(line)
        except OSError as exc:
            raise TransientScanError(f"json scan of {self.path.name} failed: {exc}") from exc
        if new_map is not None:
            new_map.mark_complete()
            self.positional_map = new_map

    def scan_batches(
        self,
        fields: Sequence[str] | None = None,
        batch_size: int = 1024,
        with_payload: bool = False,
    ) -> Iterator[RecordBatch]:
        """Yield :class:`RecordBatch` chunks of ``batch_size`` *records*.

        Nested records flatten into several rows each, so a batch carries
        ``record_row_counts`` to keep the record grouping (admission sampling
        and record-level dedup both operate on records, not rows).
        ``with_payload`` attaches the parsed JSON object and its approximate
        raw size per record for the caching materializer.
        """
        wanted = list(fields) if fields is not None else self.schema.flattened().field_names()
        columns: dict[str, list] = {name: [] for name in wanted}
        counts: list[int] = []
        records: list[dict] | None = [] if with_payload else None
        nbytes: list[int] | None = [] if with_payload else None
        rows_in_batch = 0
        for record in self.scan_records():
            rows = flatten_record(record, self.schema)
            counts.append(len(rows))
            rows_in_batch += len(rows)
            for row in rows:
                for name in wanted:
                    columns[name].append(row.get(name))
            if with_payload:
                records.append(record)
                nbytes.append(approx_record_bytes(record))
            if len(counts) >= batch_size:
                yield RecordBatch(
                    columns,
                    row_count=rows_in_batch,
                    record_row_counts=counts,
                    records=records,
                    record_bytes=nbytes,
                )
                columns = {name: [] for name in wanted}  # recheck-lint: allow(hotpath) -- resets the per-batch accumulator, built once per batch not per record
                counts = []
                records = [] if with_payload else None
                nbytes = [] if with_payload else None
                rows_in_batch = 0
        if counts:
            yield RecordBatch(
                columns,
                row_count=rows_in_batch,
                record_row_counts=counts,
                records=records,
                record_bytes=nbytes,
            )

    def read_records(self, indexes: Iterable[int], fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Yield flattened rows for specific JSON-line ordinals (lazy cache reuse)."""
        for rows in self.read_record_rows(indexes, fields):
            yield from rows

    def read_record_rows(  # rowwise-fallback: lazy-offset point reads parse one record at a time by design
        self, indexes: Iterable[int], fields: Sequence[str] | None = None
    ) -> Iterator[list[dict]]:
        """Yield the flattened rows of each requested record as one list.

        Keeping the record grouping lets callers apply record-level semantics
        (e.g. aggregate parent attributes once per record) without guessing
        where one record's rows end and the next one's begin.
        """
        if not self.positional_map.complete:
            for _ in self.scan_records():
                pass
        position_map = self.positional_map
        wanted = set(fields) if fields is not None else None
        injector = faults.injector_for("scan.raw", self.path.name)
        try:
            with self.path.open("rb") as handle:
                for index in indexes:
                    offset, length = position_map.record_span(index)
                    handle.seek(offset)
                    if injector is not None:
                        injector()
                    record = json.loads(handle.read(length))
                    rows = flatten_record(record, self.schema)
                    if wanted is not None:
                        rows = [{k: row.get(k) for k in wanted} for row in rows]
                    yield rows
        except OSError as exc:
            raise TransientScanError(f"json record read of {self.path.name} failed: {exc}") from exc

    def record_count(self) -> int:
        if not self.positional_map.complete:
            for _ in self.scan_records():
                pass
        return self.positional_map.record_count

    def file_size(self) -> int:
        return self.path.stat().st_size


def write_json_lines(path: str | Path, records: Iterable[dict]) -> int:
    """Write nested records to ``path`` as line-delimited JSON; returns count."""
    count = 0
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count
