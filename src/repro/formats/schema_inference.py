"""Schema inference for raw CSV and JSON files.

The paper's engine knows its schemas up front (TPC-H, Symantec, Yelp), but a
usable library also needs to ingest files whose schema is not declared.  The
functions here sample the first records of a file and infer a
:class:`~repro.engine.types.RecordType`:

* CSV: each column's type is the narrowest of ``int``/``float``/``str`` that
  parses every sampled value.
* JSON: objects and arrays are mapped to record and list types recursively;
  fields that only appear in some objects (the Symantec dataset's optional
  fields) are still included, typed from the objects where they do appear.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.engine.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    AtomType,
    DataType,
    Field,
    ListType,
    RecordType,
)


def infer_csv_schema(
    path: str | Path,
    column_names: Sequence[str] | None = None,
    delimiter: str = "|",
    sample_records: int = 100,
) -> RecordType:
    """Infer a flat schema for a CSV file from its first ``sample_records`` rows."""
    path = Path(path)
    rows: list[list[str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\r\n")
            if not line:
                continue
            rows.append(line.split(delimiter))
            if len(rows) >= sample_records:
                break
    if not rows:
        raise ValueError(f"cannot infer schema of empty file: {path}")
    width = max(len(row) for row in rows)
    if column_names is None:
        column_names = [f"c{i}" for i in range(width)]
    elif len(column_names) < width:
        raise ValueError(
            f"{len(column_names)} column names given but file has {width} columns"
        )
    fields = []
    for index, name in enumerate(column_names[:width]):
        values = [row[index] for row in rows if index < len(row) and row[index] != ""]
        fields.append(Field(name, _infer_atom(values)))
    return RecordType(fields)


def infer_json_schema(path: str | Path, sample_records: int = 100) -> RecordType:
    """Infer a (possibly nested) schema from the first records of a JSON-lines file."""
    path = Path(path)
    records: list[dict] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            records.append(json.loads(line))
            if len(records) >= sample_records:
                break
    if not records:
        raise ValueError(f"cannot infer schema of empty file: {path}")
    merged = _merge_types([_infer_value_type(record) for record in records])
    if not isinstance(merged, RecordType):
        raise ValueError("top-level JSON values must be objects")
    return merged


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------
def _infer_atom(values: Sequence[str]) -> AtomType:
    if not values:
        return STRING
    if all(_parses_as(value, int) for value in values):
        return INT
    if all(_parses_as(value, float) for value in values):
        return FLOAT
    lowered = {value.strip().lower() for value in values}
    if lowered <= {"true", "false", "t", "f", "0", "1", "yes", "no"}:
        return BOOL
    return STRING


def _parses_as(text: str, python_type: type) -> bool:
    try:
        python_type(text)
    except (TypeError, ValueError):
        return False
    return True


def _infer_value_type(value: object) -> DataType:
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STRING
    if value is None:
        return STRING
    if isinstance(value, list):
        if not value:
            return ListType(STRING)
        return ListType(_merge_types([_infer_value_type(v) for v in value]))
    if isinstance(value, dict):
        return RecordType([Field(k, _infer_value_type(v)) for k, v in value.items()])
    raise TypeError(f"unsupported JSON value: {value!r}")


def _merge_types(types: Sequence[DataType]) -> DataType:
    """Merge the types observed for the same position across several records."""
    records = [t for t in types if isinstance(t, RecordType)]
    lists = [t for t in types if isinstance(t, ListType)]
    atoms = [t for t in types if isinstance(t, AtomType)]
    if records:
        merged_fields: dict[str, list[DataType]] = {}
        order: list[str] = []
        for record in records:
            for field in record.fields:
                if field.name not in merged_fields:
                    merged_fields[field.name] = []
                    order.append(field.name)
                merged_fields[field.name].append(field.dtype)
        return RecordType([Field(name, _merge_types(merged_fields[name])) for name in order])
    if lists:
        return ListType(_merge_types([t.element for t in lists]))
    if not atoms:
        return STRING
    if all(a == INT for a in atoms):
        return INT
    if all(a in (INT, FLOAT) for a in atoms):
        return FLOAT
    if all(a == BOOL for a in atoms):
        return BOOL
    return STRING
