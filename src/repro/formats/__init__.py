"""Raw-data access substrate: file format plugins and positional maps.

Mirrors Proteus' input-plugin architecture (Section 3.1 of the paper): each raw
file format (CSV, line-delimited JSON) gets a plugin that knows how to scan the
file, parse only the fields a query needs, and populate a *positional map* —
an index over byte offsets that acts as the "skeleton" of the file and makes
repeated accesses cheaper.
"""

from repro.formats.datafile import DataSource, DataSourceCatalog
from repro.formats.csv_plugin import CSVPlugin, write_csv
from repro.formats.json_plugin import JSONPlugin, write_json_lines
from repro.formats.positional_map import PositionalMap
from repro.formats.schema_inference import infer_csv_schema, infer_json_schema

__all__ = [
    "DataSource",
    "DataSourceCatalog",
    "CSVPlugin",
    "JSONPlugin",
    "PositionalMap",
    "write_csv",
    "write_json_lines",
    "infer_csv_schema",
    "infer_json_schema",
]
