"""Data-source registry: named raw files with their schemas and plugins.

The :class:`DataSourceCatalog` is what the query engine and ReCache share: a
mapping from logical source names (``"lineitem"``, ``"orderLineitems"``) to the
raw file backing them, its format plugin and its schema.  Cache keys and
subsumption indexes are scoped by source name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.engine.types import RecordType
from repro.formats.csv_plugin import CSVPlugin
from repro.formats.json_plugin import JSONPlugin


@dataclass
class DataSource:
    """One raw dataset: a file, its format and its (possibly nested) schema."""

    name: str
    path: Path
    format: str
    schema: RecordType
    delimiter: str = "|"
    _plugin: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        if self.format not in ("csv", "json"):
            raise ValueError(f"unsupported format: {self.format!r}")

    @property
    def plugin(self):
        """The lazily constructed format plugin for this source."""
        if self._plugin is None:
            if self.format == "csv":
                self._plugin = CSVPlugin(self.path, self.schema, delimiter=self.delimiter)
            else:
                self._plugin = JSONPlugin(self.path, self.schema)
        return self._plugin

    @property
    def flattened_schema(self) -> RecordType:
        return self.schema.flattened()

    def scan(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Scan the raw file, yielding flattened rows."""
        return self.plugin.scan(fields)

    def scan_records(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Scan yielding nested records (JSON) or flat rows (CSV)."""
        if self.format == "json":
            return self.plugin.scan_records(fields)
        return self.plugin.scan(fields)

    def scan_batches(
        self,
        fields: Sequence[str] | None = None,
        batch_size: int = 1024,
        with_payload: bool = False,
    ):
        """Scan the raw file as :class:`~repro.engine.batch.RecordBatch` chunks."""
        return self.plugin.scan_batches(fields, batch_size=batch_size, with_payload=with_payload)

    def read_records(self, indexes: Sequence[int], fields: Sequence[str] | None = None) -> Iterator[dict]:
        return self.plugin.read_records(indexes, fields)

    def read_record_rows(  # rowwise-fallback: lazy-offset point reads parse one record at a time by design
        self, indexes: Sequence[int], fields: Sequence[str] | None = None
    ) -> Iterator[list[dict]]:
        """Rows of each requested record, grouped per record."""
        return self.plugin.read_record_rows(indexes, fields)

    def file_size(self) -> int:
        return self.plugin.file_size()

    def record_count(self) -> int:
        return self.plugin.record_count()

    def is_nested(self) -> bool:
        """True when the schema contains any list field (nested data)."""
        return bool(self.schema.nested_paths())


class DataSourceCatalog:
    """Registry of the data sources known to a query engine instance."""

    def __init__(self) -> None:
        self._sources: dict[str, DataSource] = {}

    def register(self, source: DataSource) -> DataSource:
        if source.name in self._sources:
            raise ValueError(f"data source {source.name!r} already registered")
        self._sources[source.name] = source
        return source

    def register_csv(
        self, name: str, path: str | Path, schema: RecordType, delimiter: str = "|"
    ) -> DataSource:
        return self.register(DataSource(name, Path(path), "csv", schema, delimiter))

    def register_json(self, name: str, path: str | Path, schema: RecordType) -> DataSource:
        return self.register(DataSource(name, Path(path), "json", schema))

    def get(self, name: str) -> DataSource:
        try:
            return self._sources[name]
        except KeyError as exc:
            raise KeyError(f"unknown data source: {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    def __iter__(self) -> Iterator[DataSource]:
        return iter(self._sources.values())

    def names(self) -> list[str]:
        return list(self._sources)

    def __len__(self) -> int:
        return len(self._sources)
