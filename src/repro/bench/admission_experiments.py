"""Cache admission experiments: Figures 12 and 13 of the paper.

Both figures use the 100-query select-project-join workload over TPC-H data
described in Section 6 and compare four configurations: no caching, lazy
caching (offsets only), eager caching (full tuples) and ReCache's reactive
admission with a configurable overhead threshold.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import ReCacheConfig
from repro.workloads.queries import spj_tpch_workload
from repro.workloads.runner import WorkloadRunner
from repro.bench.datasets import tpch_engine
from repro.bench.reporting import percent_reduction


def _admission_config(kind: str, threshold: float = 0.10) -> ReCacheConfig:
    """Configuration for one of the admission comparison points."""
    if kind == "none":
        return ReCacheConfig(caching_enabled=False)
    if kind == "lazy":
        return ReCacheConfig(always_lazy=True, upgrade_lazy_on_reuse=False)
    if kind == "eager":
        return ReCacheConfig(adaptive_admission=False)
    if kind == "recache":
        return ReCacheConfig(adaptive_admission=True, admission_threshold=threshold)
    raise ValueError(f"unknown admission configuration {kind!r}")


def _run_admission_workload(
    kind: str,
    threshold: float,
    num_queries: int,
    scale_factor: float,
    seed: int,
):
    config = _admission_config(kind, threshold)
    # Reduce the admission sample so that small bench datasets still leave a
    # post-sample region to extrapolate over.
    config.admission_sample_records = 100
    engine = tpch_engine(config, scale_factor=scale_factor)
    runner = WorkloadRunner(engine)
    queries = spj_tpch_workload(num_queries=num_queries, seed=seed)
    return runner.run(queries, label=f"admission-{kind}")


# ---------------------------------------------------------------------------
# Figure 12a: per-query caching overhead CDF for lazy / eager / ReCache
# ---------------------------------------------------------------------------
def figure12a_admission_overhead_cdf(
    num_queries: int = 40,
    scale_factor: float = 0.004,
    threshold: float = 0.10,
    seed: int = 13,
) -> dict:
    """Per-query caching overhead (ascending) for the three caching schemes."""
    overheads = {}
    means = {}
    for kind in ("lazy", "eager", "recache"):
        result = _run_admission_workload(kind, threshold, num_queries, scale_factor, seed)
        values = sorted(o * 100.0 for o in result.caching_overheads)
        overheads[kind] = values
        means[kind] = sum(values) / len(values) if values else 0.0
    return {
        "overheads_pct": overheads,
        "mean_overhead_pct": means,
        "recache_vs_eager_reduction_pct": percent_reduction(means["eager"], means["recache"]),
        "threshold": threshold,
    }


# ---------------------------------------------------------------------------
# Figure 12b: sensitivity to the switching threshold
# ---------------------------------------------------------------------------
def figure12b_admission_threshold_sweep(
    thresholds: Sequence[float] = (0.01, 0.10, 0.20, 0.50),
    num_queries: int = 30,
    scale_factor: float = 0.004,
    seed: int = 13,
) -> dict:
    """Mean caching overhead of ReCache for different switching thresholds."""
    lazy = _run_admission_workload("lazy", 0.10, num_queries, scale_factor, seed)
    rows = [
        {
            "config": "lazy",
            "threshold": None,
            "mean_overhead_pct": lazy.mean_caching_overhead() * 100.0,
            "total_time_s": lazy.total_time,
        }
    ]
    for threshold in thresholds:
        result = _run_admission_workload("recache", threshold, num_queries, scale_factor, seed)
        rows.append(
            {
                "config": f"recache(T={int(threshold * 100)}%)",
                "threshold": threshold,
                "mean_overhead_pct": result.mean_caching_overhead() * 100.0,
                "total_time_s": result.total_time,
            }
        )
    return {"rows": rows}


# ---------------------------------------------------------------------------
# Figure 13: cumulative execution time of the four configurations
# ---------------------------------------------------------------------------
def figure13_admission_cumulative(
    num_queries: int = 40,
    scale_factor: float = 0.004,
    threshold: float = 0.10,
    seed: int = 13,
) -> dict:
    """Cumulative execution time: no caching vs lazy vs eager vs ReCache."""
    series = {}
    totals = {}
    for kind in ("none", "lazy", "eager", "recache"):
        result = _run_admission_workload(kind, threshold, num_queries, scale_factor, seed)
        series[kind] = result.cumulative_times
        totals[kind] = result.total_time
    return {
        "series": series,
        "totals": totals,
        "recache_vs_none_reduction_pct": percent_reduction(totals["none"], totals["recache"]),
        "recache_vs_lazy_reduction_pct": percent_reduction(totals["lazy"], totals["recache"]),
        "recache_vs_eager_gap_pct": percent_reduction(totals["eager"], totals["recache"]),
    }
