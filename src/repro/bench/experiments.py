"""One entry point per table/figure of the paper's evaluation.

This module is the index DESIGN.md refers to: every experiment driver is
re-exported here under its figure/table name so the ``benchmarks/`` scripts
(and downstream users) have a single flat namespace to call into.

=====================  =======================================================
Paper artifact         Driver
=====================  =======================================================
Table 1                :func:`table1_related_work`
Figure 1               :func:`figure1_layout_gap`
Figure 5               :func:`figure5_scan_vs_cardinality`
Figure 6               :func:`figure6_write_latency`
Figure 7               :func:`figure7_cost_model_error`
Figure 9a/9b/9c        :func:`figure9_auto_layout` (``pattern=`` halves /
                       alternating / random)
Figure 10a/10b         :func:`figure10_symantec_cumulative`
                       (``nested_fraction=`` 0.1 / 0.9)
Figure 11a             :func:`figure11a_sensitivity_nested_symantec`
Figure 11b             :func:`figure11b_sensitivity_nested_yelp`
Figure 11c             :func:`figure11c_sensitivity_json_fraction`
Figure 12a             :func:`figure12a_admission_overhead_cdf`
Figure 12b             :func:`figure12b_admission_threshold_sweep`
Figure 13              :func:`figure13_admission_cumulative`
Figure 14              :func:`figure14_eviction_policies`
Figure 15a             :func:`figure15a_symantec_diverse`
Figure 15b             :func:`figure15b_yelp_diverse`
Ablations              :func:`ablation_benefit_recompute`,
                       :func:`ablation_eviction_order`,
                       :func:`ablation_timing_sampling`,
                       :func:`ablation_admission_extrapolation`,
                       :func:`ablation_subsumption_index`
=====================  =======================================================
"""

from repro.bench.admission_experiments import (
    figure12a_admission_overhead_cdf,
    figure12b_admission_threshold_sweep,
    figure13_admission_cumulative,
)
from repro.bench.eviction_experiments import (
    FIGURE14_POLICIES,
    ablation_admission_extrapolation,
    ablation_benefit_recompute,
    ablation_eviction_order,
    ablation_subsumption_index,
    ablation_timing_sampling,
    figure14_eviction_policies,
)
from repro.bench.layout_experiments import (
    figure1_layout_gap,
    figure5_scan_vs_cardinality,
    figure6_write_latency,
    figure7_cost_model_error,
    figure9_auto_layout,
)
from repro.bench.related_work import TABLE1_REQUIREMENTS, table1_related_work
from repro.bench.workload_experiments import (
    figure10_symantec_cumulative,
    figure11a_sensitivity_nested_symantec,
    figure11b_sensitivity_nested_yelp,
    figure11c_sensitivity_json_fraction,
    figure15a_symantec_diverse,
    figure15b_yelp_diverse,
)

__all__ = [
    "TABLE1_REQUIREMENTS",
    "table1_related_work",
    "figure1_layout_gap",
    "figure5_scan_vs_cardinality",
    "figure6_write_latency",
    "figure7_cost_model_error",
    "figure9_auto_layout",
    "figure10_symantec_cumulative",
    "figure11a_sensitivity_nested_symantec",
    "figure11b_sensitivity_nested_yelp",
    "figure11c_sensitivity_json_fraction",
    "figure12a_admission_overhead_cdf",
    "figure12b_admission_threshold_sweep",
    "figure13_admission_cumulative",
    "figure14_eviction_policies",
    "FIGURE14_POLICIES",
    "figure15a_symantec_diverse",
    "figure15b_yelp_diverse",
    "ablation_benefit_recompute",
    "ablation_eviction_order",
    "ablation_timing_sampling",
    "ablation_admission_extrapolation",
    "ablation_subsumption_index",
]
