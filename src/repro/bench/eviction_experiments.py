"""Eviction experiments: Figure 14 plus the design-choice ablations.

Figure 14 compares ReCache's cost-based Greedy-Dual eviction with LRU, Proteus'
JSON>CSV heuristic, the Vectorwise and MonetDB recyclers, and two offline
(clairvoyant) algorithms over the heterogeneous TPC-H workload (the lineitem
table is served from JSON to add cost asymmetry).  The ablation experiments
quantify the individual design choices called out in DESIGN.md: recomputing the
benefit metric on every eviction pass, the size-descending eviction order, the
sampled timing instrumentation, the admission extrapolation, and the R-tree
subsumption index.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.cache_entry import CacheEntry, CacheKey
from repro.core.config import ReCacheConfig
from repro.core.eviction import ReCacheGreedyDualPolicy
from repro.core.subsumption import SubsumptionIndex
from repro.engine.expressions import RangePredicate
from repro.layouts import build_layout
from repro.utils.rng import make_rng
from repro.workloads.queries import spj_tpch_workload
from repro.workloads.runner import WorkloadRunner
from repro.workloads.tpch import TPCH_SCHEMAS
from repro.bench.datasets import tpch_engine
from repro.bench.reporting import percent_reduction

#: the policies compared in Figure 14, in plot order
FIGURE14_POLICIES = (
    "recache",
    "monetdb",
    "vectorwise",
    "lru",
    "proteus-lru",
    "offline-farthest",
    "offline-log-optimal",
)


def _eviction_workload(num_queries: int, seed: int):
    """The heterogeneous SPJ workload: lineitem served from JSON (Section 6.3)."""
    return spj_tpch_workload(
        num_queries=num_queries, seed=seed, source_names={"lineitem": "lineitem_json"}
    )


def _run_eviction_config(
    policy: str,
    cache_size: int | None,
    num_queries: int,
    scale_factor: float,
    seed: int,
    recompute_benefit: bool = True,
    size_aware: bool = True,
):
    config = ReCacheConfig(
        cache_size_limit=cache_size,
        eviction_policy=policy,
        adaptive_admission=False,
        recompute_benefit=recompute_benefit,
    )
    engine = tpch_engine(config, scale_factor=scale_factor, lineitem_json=True)
    if policy == "recache" and not size_aware:
        engine.recache.policy = ReCacheGreedyDualPolicy(
            recompute_benefit=recompute_benefit, size_aware=False
        )
    runner = WorkloadRunner(engine)
    queries = _eviction_workload(num_queries, seed)
    result = runner.run(queries, label=f"evict-{policy}-{cache_size}")
    return result, engine


# ---------------------------------------------------------------------------
# Figure 14: workload time vs cache size for each policy
# ---------------------------------------------------------------------------
def figure14_eviction_policies(
    cache_sizes: Sequence[int] = (200_000, 400_000, 800_000, 1_600_000),
    policies: Sequence[str] = FIGURE14_POLICIES,
    num_queries: int = 30,
    scale_factor: float = 0.003,
    seed: int = 13,
) -> dict:
    """Total workload time per (policy, cache size), plus the unlimited baseline."""
    unlimited, _ = _run_eviction_config(
        "recache", None, num_queries, scale_factor, seed
    )
    rows = []
    for cache_size in cache_sizes:
        row: dict = {"cache_size": cache_size, "unlimited": unlimited.total_time}
        for policy in policies:
            result, engine = _run_eviction_config(
                policy, cache_size, num_queries, scale_factor, seed
            )
            row[policy] = result.total_time
            row[f"{policy}_evictions"] = engine.cache_stats.evictions
        row["recache_vs_lru_reduction_pct"] = percent_reduction(row["lru"], row["recache"])
        rows.append(row)
    return {"rows": rows, "unlimited_total": unlimited.total_time}


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------
def ablation_benefit_recompute(
    cache_size: int = 400_000,
    num_queries: int = 30,
    scale_factor: float = 0.003,
    seed: int = 13,
) -> dict:
    """Recomputing the benefit metric each eviction pass vs freezing it."""
    fresh, _ = _run_eviction_config("recache", cache_size, num_queries, scale_factor, seed)
    frozen, _ = _run_eviction_config(
        "recache", cache_size, num_queries, scale_factor, seed, recompute_benefit=False
    )
    return {
        "recompute_total_s": fresh.total_time,
        "frozen_total_s": frozen.total_time,
        "frozen_slowdown_pct": percent_reduction(frozen.total_time, fresh.total_time),
    }


def ablation_eviction_order(
    cache_size: int = 400_000,
    num_queries: int = 30,
    scale_factor: float = 0.003,
    seed: int = 13,
) -> dict:
    """Size-descending phase-2 eviction vs plain ascending-H(p) eviction."""
    size_aware, size_aware_engine = _run_eviction_config(
        "recache", cache_size, num_queries, scale_factor, seed, size_aware=True
    )
    plain, plain_engine = _run_eviction_config(
        "recache", cache_size, num_queries, scale_factor, seed, size_aware=False
    )
    return {
        "size_aware_total_s": size_aware.total_time,
        "plain_total_s": plain.total_time,
        "size_aware_evictions": size_aware_engine.cache_stats.evictions,
        "plain_evictions": plain_engine.cache_stats.evictions,
    }


def ablation_timing_sampling(
    num_queries: int = 20,
    scale_factor: float = 0.003,
    seed: int = 13,
) -> dict:
    """Sampled (<1%) vs per-record timing instrumentation overhead."""
    totals = {}
    for label, rate in (("sampled_1pct", 0.01), ("per_record", 1.0)):
        config = ReCacheConfig(adaptive_admission=False, timing_sample_rate=rate)
        engine = tpch_engine(config, scale_factor=scale_factor)
        runner = WorkloadRunner(engine)
        result = runner.run(spj_tpch_workload(num_queries=num_queries, seed=seed), label=label)
        totals[label] = result.total_time
    return {
        "totals": totals,
        "per_record_overhead_pct": percent_reduction(
            totals["per_record"], totals["sampled_1pct"]
        ),
    }


def ablation_admission_extrapolation(
    num_queries: int = 25,
    scale_factor: float = 0.004,
    seed: int = 13,
) -> dict:
    """The to1/tc1..to2/tc2 extrapolation vs the naive sample-local estimator."""
    results = {}
    for label, extrapolate in (("extrapolated", True), ("naive", False)):
        config = ReCacheConfig(
            adaptive_admission=True,
            admission_extrapolation=extrapolate,
            admission_sample_records=100,
        )
        engine = tpch_engine(config, scale_factor=scale_factor)
        runner = WorkloadRunner(engine)
        run = runner.run(spj_tpch_workload(num_queries=num_queries, seed=seed), label=label)
        results[label] = {
            "mean_overhead_pct": run.mean_caching_overhead() * 100.0,
            "lazy_admissions": engine.cache_stats.admissions_lazy,
            "eager_admissions": engine.cache_stats.admissions_eager,
            "total_time_s": run.total_time,
        }
    return results


def ablation_subsumption_index(num_predicates: int = 400, num_lookups: int = 200, seed: int = 5) -> dict:
    """R-tree subsumption lookup vs a linear scan over cached predicates."""
    rng = make_rng(seed)
    schema = TPCH_SCHEMAS["lineitem"]
    layout = build_layout("columnar", schema, ["l_quantity"], rows=[{"l_quantity": 1.0}])

    def build_entries(index: SubsumptionIndex) -> list[CacheEntry]:
        entries = []
        for _ in range(num_predicates):
            low = rng.uniform(0, 40)
            predicate = RangePredicate("l_quantity", low, low + rng.uniform(1, 10))
            entry = CacheEntry(
                key=CacheKey.for_select("lineitem", predicate),
                source="lineitem",
                source_format="csv",
                predicate=predicate,
                fields=["l_quantity"],
                layout=layout,
            )
            index.register(entry)
            entries.append(entry)
        return entries

    timings = {}
    for label, use_rtree in (("rtree", True), ("linear", False)):
        rng = make_rng(seed)
        index = SubsumptionIndex(use_rtree=use_rtree)
        build_entries(index)
        lookup_rng = make_rng(seed + 1)
        started = time.perf_counter()
        hits = 0
        for _ in range(num_lookups):
            low = lookup_rng.uniform(0, 45)
            probe = RangePredicate("l_quantity", low, low + lookup_rng.uniform(0.1, 2.0))
            hits += len(index.find_subsuming("lineitem", probe, ["l_quantity"]))
        timings[label] = {
            "lookup_total_s": time.perf_counter() - started,
            "insert_total_s": index.insert_seconds,
            "hits": hits,
        }
    return timings
