"""Experiment drivers for the concurrent serving layer.

Measures queries/second of the :class:`~repro.engine.server.EngineServer` as a
function of (a) worker-thread count and (b) cache shard count, on a
cache-hit-heavy zipfian workload driven by closed-loop clients
(:class:`~repro.workloads.runner.ConcurrentWorkloadRunner`).

Methodology note: the per-request service includes a configurable *response
delivery* stage (``io_wait_ms``, injected through the server's
``response_hook``) modelling the serialization + socket write a network server
performs per request.  Worker threads overlap those delivery waits, which is
what makes throughput scale with the pool size even under CPython's GIL (and
on the single-core CI runners these benches run on); on multi-core hosts the
cache-scan work in NumPy adds genuine CPU parallelism on top.  With
``io_wait_ms=0`` the bench degenerates to a pure lock-contention measurement.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.bench.datasets import bench_data_root
from repro.core.config import ReCacheConfig
from repro.engine.expressions import AggregateSpec, FieldRef, RangePredicate
from repro.engine.query import Query
from repro.engine.server import EngineServer
from repro.engine.session import QueryEngine
from repro.engine.types import FLOAT, INT, Field, RecordType
from repro.formats import write_csv
from repro.workloads.runner import ConcurrentWorkloadRunner

SERVE_SCHEMA = RecordType(
    [Field("id", INT), Field("value", FLOAT), Field("weight", FLOAT), Field("bucket", INT)]
)


def _serving_dataset(rows: int, seed: int) -> Path:
    path = bench_data_root() / f"serving_{rows}_{seed}.csv"
    if not path.exists():
        write_csv(
            path,
            SERVE_SCHEMA,
            (
                {
                    "id": i,
                    "value": float((i * 37 + seed) % (rows * 2)),
                    "weight": ((i * 13) % 1000) / 10.0,
                    "bucket": i % 17,
                }
                for i in range(rows)
            ),
        )
    return path


def _query_pool(pool_size: int, rows: int) -> list[Query]:
    """Distinct range queries; pool order defines zipfian popularity rank."""
    span = rows * 2
    width = max(1.0, span / (pool_size + 1))
    return [
        Query.select_aggregate(
            "serve",
            RangePredicate("value", index * width, index * width + 2.0 * width),
            [AggregateSpec("sum", FieldRef("weight")), AggregateSpec("count", FieldRef("id"))],
            label=f"serve-q{index}",
        )
        for index in range(pool_size)
    ]


def _build_engine(
    shard_count: int,
    rows: int,
    seed: int,
    pool: list[Query],
    execution_mode: str = "threads",
    process_workers: int | None = None,
) -> QueryEngine:
    """A fresh engine with every pool query pre-warmed into the cache."""
    config = ReCacheConfig(
        shard_count=shard_count,
        admission_sample_records=50,
        adaptive_admission=False,  # warm everything eagerly: hit-heavy serving
        execution_mode=execution_mode,
        process_workers=process_workers,
    )
    engine = QueryEngine(config)
    engine.register_csv("serve", _serving_dataset(rows, seed), SERVE_SCHEMA)
    for query in pool:
        engine.execute(query)
    return engine


def _measure(
    engine: QueryEngine,
    pool: list[Query],
    workers: int,
    clients: int,
    queries_per_client: int,
    io_wait_ms: float,
    zipf_s: float,
    seed: int,
) -> dict:
    io_wait = io_wait_ms / 1000.0

    def deliver_response(report) -> None:
        time.sleep(io_wait)

    hook = deliver_response if io_wait > 0 else None
    with EngineServer(engine, max_workers=workers, response_hook=hook) as server:
        runner = ConcurrentWorkloadRunner(server, clients=clients, seed=seed)
        result = runner.run(
            pool,
            label=f"w{workers}",
            queries_per_client=queries_per_client,
            zipf_s=zipf_s,
        )
    aggregate = result.aggregate
    served = result.total_queries
    hits = aggregate.exact_hits + aggregate.subsumption_hits
    return {
        "queries": served,
        "wall_time": result.wall_time,
        "queries_per_second": result.queries_per_second,
        "hit_rate": hits / max(1, hits + aggregate.misses),
        "offloaded": aggregate.offloaded,
    }


def concurrent_throughput_experiment(
    thread_counts: tuple[int, ...] = (1, 2, 4),
    shard_counts: tuple[int, ...] = (1, 4, 8),
    clients: int = 8,
    rows: int = 2000,
    pool_size: int = 24,
    queries_per_client: int = 25,
    io_wait_ms: float = 4.0,
    zipf_s: float = 1.1,
    seed: int = 11,
) -> dict:
    """Queries/sec vs worker-thread count and vs shard count.

    The thread sweep fixes ``shard_count=max(shard_counts)`` and varies the
    server pool; the shard sweep fixes ``max(thread_counts)`` workers and
    varies the cache partitioning.  Every run gets a freshly warmed engine so
    runs never share cache state.
    """
    pool = _query_pool(pool_size, rows)
    thread_rows = []
    for workers in thread_counts:
        engine = _build_engine(max(shard_counts), rows, seed, pool)
        measured = _measure(
            engine, pool, workers, clients, queries_per_client, io_wait_ms, zipf_s, seed
        )
        thread_rows.append({"threads": workers, "shards": max(shard_counts), **measured})

    shard_rows = []
    for shards in shard_counts:
        engine = _build_engine(shards, rows, seed, pool)
        measured = _measure(
            engine,
            pool,
            max(thread_counts),
            clients,
            queries_per_client,
            io_wait_ms,
            zipf_s,
            seed,
        )
        budget_ok = engine.recache.total_bytes == sum(
            entry.nbytes for entry in engine.recache.entries()
        )
        shard_rows.append(
            {"shards": shards, "threads": max(thread_counts), "budget_ok": budget_ok, **measured}
        )

    by_threads = {row["threads"]: row["queries_per_second"] for row in thread_rows}
    base = by_threads[min(thread_counts)] or 1e-9
    return {
        "thread_rows": thread_rows,
        "shard_rows": shard_rows,
        "speedup_vs_single_thread": {t: qps / base for t, qps in by_threads.items()},
        "io_wait_ms": io_wait_ms,
    }


def worker_scaling_experiment(
    worker_counts: tuple[int, ...] | None = None,
    clients: int = 8,
    shard_count: int = 4,
    rows: int = 2000,
    pool_size: int = 16,
    queries_per_client: int = 25,
    zipf_s: float = 1.1,
    seed: int = 17,
) -> dict:
    """Thread pool vs process pool on a pure cache-hit zipfian workload.

    ``io_wait_ms`` is pinned to zero: with no delivery waits to overlap, the
    thread pool's scaling is bounded by the GIL on the CPU-bound cache scans,
    which is exactly what the worker-process pool escapes.  Worker counts
    default to ``{1, 2, cores, 2*cores}``; each (mode, workers) cell gets a
    freshly warmed engine, and process-mode rows record how many requests
    actually executed inside a worker child (``offloaded``).  On single-core
    hosts the processes/threads ratio carries IPC overhead with no
    parallelism to pay for it — interpret ``ratio_by_workers`` alongside
    ``cores``.
    """
    cores = os.cpu_count() or 1
    if worker_counts is None:
        worker_counts = tuple(sorted({1, 2, cores, 2 * cores}))
    pool = _query_pool(pool_size, rows)
    scaling_rows = []
    for mode in ("threads", "processes"):
        for workers in worker_counts:
            engine = _build_engine(
                shard_count,
                rows,
                seed,
                pool,
                execution_mode=mode,
                process_workers=workers if mode == "processes" else None,
            )
            # Second warm pass: finishes any deferred materialization and, in
            # process mode, spawns the pool + publishes the shm exports so the
            # measured window contains no cold-start cost.
            for query in pool:
                engine.execute(query)
            try:
                measured = _measure(
                    engine, pool, workers, clients, queries_per_client, 0.0, zipf_s, seed
                )
            finally:
                engine.close_workers()
            scaling_rows.append({"mode": mode, "workers": workers, **measured})

    qps = {(row["mode"], row["workers"]): row["queries_per_second"] for row in scaling_rows}
    ratio_by_workers = {
        workers: qps[("processes", workers)] / (qps[("threads", workers)] or 1e-9)
        for workers in worker_counts
    }
    return {
        "scaling_rows": scaling_rows,
        "ratio_by_workers": ratio_by_workers,
        "worker_counts": list(worker_counts),
        "cores": cores,
        "io_wait_ms": 0.0,
    }


def async_submission_experiment(
    clients: int = 8,
    workers: int = 4,
    shard_count: int = 4,
    rows: int = 4000,
    pool_size: int = 24,
    queries_per_client: int = 48,
    batch_size: int = 16,
    zipf_s: float = 1.4,
    seed: int = 29,
) -> dict:
    """Batched ``submit_batch`` vs per-request ``submit`` throughput.

    Both modes drive the *same* zipfian query streams (same seed, same
    clients) against identically warmed engines; the batched mode submits
    ``batch_size`` draws per round, letting the server coalesce duplicate hot
    queries and group overlapping ones onto one worker, while the per-request
    baseline queues every draw as its own pool task.  The speedup is therefore
    purely the serving tier's doing — the engine and cache are identical.
    """
    pool = _query_pool(pool_size, rows)
    results: dict[str, dict] = {}
    for mode in ("per_request", "batched"):
        engine = _build_engine(shard_count, rows, seed, pool)
        with EngineServer(engine, max_workers=workers) as server:
            runner = ConcurrentWorkloadRunner(server, clients=clients, seed=seed)
            if mode == "batched":
                outcome = runner.run_batched(
                    pool,
                    label=mode,
                    queries_per_client=queries_per_client,
                    batch_size=batch_size,
                    zipf_s=zipf_s,
                )
            else:
                outcome = runner.run(
                    pool, label=mode, queries_per_client=queries_per_client, zipf_s=zipf_s
                )
            aggregate = outcome.aggregate
            hits = aggregate.exact_hits + aggregate.subsumption_hits
            results[mode] = {
                "queries": outcome.total_queries,
                "engine_executions": engine.query_count,
                "wall_time": outcome.wall_time,
                "queries_per_second": outcome.queries_per_second,
                "hit_rate": hits / max(1, hits + aggregate.misses),
                "coalesced": aggregate.coalesced,
                "queue_wait_time": aggregate.queue_wait_time,
                "peak_queue_depth": server.peak_queue_depth,
            }
    per_request = results["per_request"]["queries_per_second"] or 1e-9
    results["batched_speedup"] = results["batched"]["queries_per_second"] / per_request
    results["batch_size"] = batch_size
    results["zipf_s"] = zipf_s
    return results


def borrowing_admission_experiment(
    rows: int = 2500,
    shard_count: int = 4,
    clients: int = 4,
    queries_per_client: int = 10,
    seed: int = 23,
) -> dict:
    """Cross-shard borrowing under the multi-client driver (CI smoke).

    Builds a pool whose hottest query caches an item larger than one shard's
    proportional share (but within the global budget), then drives the
    multi-client server against a *cold* sharded cache.  Under the old static
    split that item could never be admitted; the shared-budget protocol must
    admit it by borrowing global headroom.
    """
    span = rows * 2
    big_predicate = RangePredicate("value", 0.0, span * 0.9)  # caches ~90% of the file
    big_query = Query.select_aggregate(
        "serve",
        big_predicate,
        [AggregateSpec("sum", FieldRef("weight")), AggregateSpec("count", FieldRef("id"))],
        label="serve-big",
    )
    narrow = _query_pool(8, rows)
    pool = [big_query] + narrow  # rank 0: the zipfian head, always drawn

    # Probe the big item's cached size with an unlimited cache, then size the
    # budget so the item exceeds one shard's share but fits globally.
    probe = QueryEngine(ReCacheConfig(adaptive_admission=False))
    probe.register_csv("serve", _serving_dataset(rows, seed), SERVE_SCHEMA)
    probe.execute(big_query)
    item_bytes = max(entry.nbytes for entry in probe.recache.entries())
    limit = int(item_bytes * 1.5)

    config = ReCacheConfig(
        shard_count=shard_count,
        cache_size_limit=limit,
        admission_sample_records=50,
        adaptive_admission=False,
    )
    engine = QueryEngine(config)
    engine.register_csv("serve", _serving_dataset(rows, seed), SERVE_SCHEMA)
    with EngineServer(engine, max_workers=shard_count) as server:
        runner = ConcurrentWorkloadRunner(server, clients=clients, seed=seed)
        runner.run_batched(
            pool,
            label="borrowing",
            queries_per_client=queries_per_client,
            batch_size=5,
            zipf_s=1.3,
        )
    stats = engine.recache.stats
    total = engine.recache.total_bytes
    return {
        "item_bytes": item_bytes,
        "global_limit": limit,
        "shard_share": limit // shard_count,
        "shard_count": shard_count,
        "item_exceeds_share": item_bytes > limit // shard_count,
        "borrowed_admissions": stats.extras.get("borrowed_admissions", 0),
        "cross_shard_rounds": stats.extras.get("cross_shard_rounds", 0),
        "admitted": engine.recache.get_exact("serve", big_predicate) is not None
        or stats.extras.get("borrowed_admissions", 0) > 0,
        "budget_ok": total <= limit
        and total == sum(entry.nbytes for entry in engine.recache.entries()),
    }
