"""Full-workload experiments on the Symantec- and Yelp-style datasets.

Covers Figure 10 (cumulative execution time for workloads dominated by
non-nested vs nested attribute accesses), Figure 11 (sensitivity of the layout
selection gains to the fraction of nested-attribute and JSON queries) and
Figure 15 (the end-to-end comparison of the four cache configurations under a
limited memory budget).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import ReCacheConfig
from repro.workloads.queries import symantec_mixed_workload, yelp_spa_workload
from repro.workloads.runner import WorkloadRunner
from repro.bench.datasets import symantec_engine, yelp_engine
from repro.bench.reporting import percent_reduction

#: the three layout configurations compared in Figures 10 and 11
_LAYOUT_CONFIGS = {
    "columnar": {"layout_selection": False, "default_nested_layout": "columnar"},
    "parquet": {"layout_selection": False, "default_nested_layout": "parquet"},
    "recache": {"layout_selection": True, "default_nested_layout": "parquet"},
}


def _layout_config(name: str, cache_size: int | None = None, eviction: str = "recache") -> ReCacheConfig:
    options = _LAYOUT_CONFIGS[name]
    return ReCacheConfig(
        cache_size_limit=cache_size,
        eviction_policy=eviction,
        adaptive_admission=False,
        **options,
    )


# ---------------------------------------------------------------------------
# Figure 10: cumulative execution time on the Symantec JSON data
# ---------------------------------------------------------------------------
def figure10_symantec_cumulative(
    nested_fraction: float = 0.1,
    num_queries: int = 150,
    json_records: int = 1200,
    seed: int = 17,
) -> dict:
    """Cumulative execution time for columnar / Parquet / ReCache layouts.

    ``nested_fraction=0.1`` reproduces Figure 10a, ``0.9`` Figure 10b.  The
    cache is unlimited and starts empty, so cache-creation cost is included.
    """
    queries = symantec_mixed_workload(
        num_queries=num_queries,
        nested_fraction=nested_fraction,
        json_fraction=1.0,
        join_fraction=0.0,
        seed=seed,
    )
    series = {}
    totals = {}
    for name in _LAYOUT_CONFIGS:
        engine = symantec_engine(_layout_config(name), json_records=json_records)
        result = WorkloadRunner(engine).run(queries, label=f"fig10-{name}")
        series[name] = result.cumulative_times
        totals[name] = result.total_time
    return {
        "nested_fraction": nested_fraction,
        "series": series,
        "totals": totals,
        "recache_vs_columnar_reduction_pct": percent_reduction(
            totals["columnar"], totals["recache"]
        ),
        "recache_vs_parquet_reduction_pct": percent_reduction(
            totals["parquet"], totals["recache"]
        ),
    }


# ---------------------------------------------------------------------------
# Figure 11: sensitivity analysis
# ---------------------------------------------------------------------------
def figure11a_sensitivity_nested_symantec(
    nested_percentages: Sequence[int] = (0, 25, 50, 75, 100),
    num_queries: int = 80,
    json_records: int = 1000,
    seed: int = 17,
) -> list[dict]:
    """% execution-time reduction of ReCache vs the static layouts (Symantec).

    The workload mixes SPA and SPJ queries over the JSON and CSV components
    (90% JSON, 10% joins), varying the share of queries that touch nested
    attributes.
    """
    rows = []
    for nested_pct in nested_percentages:
        queries = symantec_mixed_workload(
            num_queries=num_queries,
            nested_fraction=nested_pct / 100.0,
            json_fraction=0.9,
            join_fraction=0.1,
            seed=seed,
        )
        totals = {}
        for name in _LAYOUT_CONFIGS:
            engine = symantec_engine(_layout_config(name), json_records=json_records)
            totals[name] = WorkloadRunner(engine).run(queries, label=f"fig11a-{name}").total_time
        rows.append(
            {
                "nested_pct": nested_pct,
                "reduction_vs_columnar_pct": percent_reduction(totals["columnar"], totals["recache"]),
                "reduction_vs_parquet_pct": percent_reduction(totals["parquet"], totals["recache"]),
            }
        )
    return rows


def figure11b_sensitivity_nested_yelp(
    nested_percentages: Sequence[int] = (0, 25, 50, 75, 100),
    num_queries: int = 80,
    total_records: int = 1200,
    seed: int = 19,
) -> list[dict]:
    """Same sweep as Figure 11a but over the Yelp-style dataset."""
    rows = []
    for nested_pct in nested_percentages:
        queries = yelp_spa_workload(
            num_queries=num_queries, nested_fraction=nested_pct / 100.0, seed=seed
        )
        totals = {}
        for name in _LAYOUT_CONFIGS:
            engine = yelp_engine(_layout_config(name), total_records=total_records)
            totals[name] = WorkloadRunner(engine).run(queries, label=f"fig11b-{name}").total_time
        rows.append(
            {
                "nested_pct": nested_pct,
                "reduction_vs_columnar_pct": percent_reduction(totals["columnar"], totals["recache"]),
                "reduction_vs_parquet_pct": percent_reduction(totals["parquet"], totals["recache"]),
            }
        )
    return rows


def figure11c_sensitivity_json_fraction(
    json_percentages: Sequence[int] = (0, 25, 50, 75, 100),
    num_queries: int = 80,
    json_records: int = 1000,
    seed: int = 17,
) -> list[dict]:
    """% time reduction as the share of queries over JSON (vs CSV) grows."""
    rows = []
    for json_pct in json_percentages:
        queries = symantec_mixed_workload(
            num_queries=num_queries,
            nested_fraction=0.5,
            json_fraction=json_pct / 100.0,
            join_fraction=0.0,
            seed=seed,
        )
        totals = {}
        for name in _LAYOUT_CONFIGS:
            engine = symantec_engine(_layout_config(name), json_records=json_records)
            totals[name] = WorkloadRunner(engine).run(queries, label=f"fig11c-{name}").total_time
        rows.append(
            {
                "json_pct": json_pct,
                "reduction_vs_columnar_pct": percent_reduction(totals["columnar"], totals["recache"]),
                "reduction_vs_parquet_pct": percent_reduction(totals["parquet"], totals["recache"]),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 15: the four cache configurations under a limited memory budget
# ---------------------------------------------------------------------------
_FIG15_CONFIGS = {
    "columnar_lru": {
        "layout_selection": False,
        "default_nested_layout": "columnar",
        "eviction_policy": "lru",
    },
    "columnar_greedy": {
        "layout_selection": False,
        "default_nested_layout": "columnar",
        "eviction_policy": "recache",
    },
    "parquet_greedy": {
        "layout_selection": False,
        "default_nested_layout": "parquet",
        "eviction_policy": "recache",
    },
    "recache": {
        "layout_selection": True,
        "default_nested_layout": "parquet",
        "eviction_policy": "recache",
    },
}


def _figure15_run(queries, engine_builder, cache_size: int) -> dict:
    series = {}
    totals = {}
    tails = {}
    for name, options in _FIG15_CONFIGS.items():
        config = ReCacheConfig(cache_size_limit=cache_size, adaptive_admission=False, **options)
        engine = engine_builder(config)
        result = WorkloadRunner(engine).run(queries, label=f"fig15-{name}")
        series[name] = result.cumulative_times
        totals[name] = result.total_time
        tails[name] = result.tail_total_time(len(queries) // 2)
    return {
        "series": series,
        "totals": totals,
        "second_half_totals": tails,
        "recache_vs_parquet_reduction_pct": percent_reduction(
            totals["parquet_greedy"], totals["recache"]
        ),
        "recache_vs_columnar_greedy_reduction_pct": percent_reduction(
            totals["columnar_greedy"], totals["recache"]
        ),
        "recache_vs_columnar_lru_reduction_pct": percent_reduction(
            totals["columnar_lru"], totals["recache"]
        ),
        "columnar_lru_vs_columnar_greedy_reduction_pct": percent_reduction(
            totals["columnar_lru"], totals["columnar_greedy"]
        ),
    }


def figure15a_symantec_diverse(
    num_queries: int = 200,
    json_records: int = 1200,
    csv_records: int = 4000,
    cache_size: int = 600_000,
    seed: int = 17,
) -> dict:
    """Figure 15a: SPA/SPJ queries over the Symantec CSV+JSON data, limited cache."""
    queries = symantec_mixed_workload(
        num_queries=num_queries,
        nested_fraction=0.5,
        json_fraction=0.8,
        join_fraction=0.1,
        seed=seed,
    )
    return _figure15_run(
        queries,
        lambda config: symantec_engine(config, json_records=json_records, csv_records=csv_records),
        cache_size,
    )


def figure15b_yelp_diverse(
    num_queries: int = 200,
    total_records: int = 1500,
    cache_size: int = 800_000,
    seed: int = 19,
) -> dict:
    """Figure 15b: SPA queries over the Yelp-style JSON data, limited cache."""
    queries = yelp_spa_workload(num_queries=num_queries, nested_fraction=0.5, seed=seed)
    return _figure15_run(
        queries,
        lambda config: yelp_engine(config, total_records=total_records),
        cache_size,
    )
