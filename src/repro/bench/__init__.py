"""Experiment drivers that regenerate every table and figure of the paper.

Each public function in :mod:`repro.bench.experiments` corresponds to one
figure or table of the evaluation section and returns a plain-data result
(lists/dicts) that the benchmark scripts under ``benchmarks/`` print and
assert on.  The experiments run at laptop scale — the absolute numbers differ
from the paper's Xeon/SF-10 setup, but the comparisons (who wins, by what
factor, where the crossovers fall) are preserved.
"""

from repro.bench import experiments
from repro.bench.reporting import format_table, format_series, cdf_points

__all__ = ["experiments", "format_table", "format_series", "cdf_points"]
