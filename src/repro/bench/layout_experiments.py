"""Layout experiments: Figures 1, 5, 6, 7 and 9 of the paper.

Figures 1, 5, 6 and 7 are micro-experiments over pre-built caches of nested
data (the paper pre-populates the caches to isolate cache-scan performance from
cache construction); Figure 9 runs the full engine with ReCache's automatic
layout selection against the two static layouts.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.cache_entry import LayoutObservation
from repro.core.config import ReCacheConfig
from repro.core.cost_model import LayoutCostModel, closest_compute_cost, percentage_error
from repro.engine.calibration import split_scan_cost
from repro.engine.compiler import compile_predicate
from repro.engine.expressions import AggregateSpec, FieldRef, RangePredicate
from repro.engine.query import Query, TableRef
from repro.layouts import ColumnarLayout, ParquetLayout, build_layout
from repro.utils.rng import make_rng
from repro.workloads.nested import (
    CARDINALITY_SWEEP_SCHEMA,
    ORDER_LINEITEMS_SCHEMA,
    cardinality_sweep_records,
    synthetic_order_lineitems,
)
from repro.workloads.queries import AttributeSchedule
from repro.workloads.runner import WorkloadRunner
from repro.workloads.tpch import TPCH_FIELD_RANGES
from repro.bench.datasets import order_lineitems_engine
from repro.bench.reporting import closeness_to_optimal, fraction_below


# ---------------------------------------------------------------------------
# Shared query-shape generator for the orderLineitems micro-experiments
# ---------------------------------------------------------------------------
def _order_lineitems_layout_queries(
    num_queries: int, schedule: AttributeSchedule, seed: int = 3
) -> list[dict]:
    """Per-query field sets and predicates in the Section 4.1 query shape."""
    rng = make_rng(seed)
    ranges = TPCH_FIELD_RANGES["orderLineitems"]
    all_fields = list(ranges)
    non_nested = [f for f in all_fields if not ORDER_LINEITEMS_SCHEMA.is_nested_path(f)]
    queries = []
    for index in range(num_queries):
        pool = all_fields if schedule.pool_for(index) == "all" else non_nested
        predicate_field = rng.choice(pool)
        low, high = ranges[predicate_field]
        width = (high - low) * rng.uniform(0.1, 0.9)
        start = rng.uniform(low, high - width)
        agg_fields = [rng.choice(pool) for _ in range(rng.randint(1, 3))]
        fields = sorted(set(agg_fields) | {predicate_field})
        queries.append(
            {
                "index": index,
                "fields": fields,
                "predicate": RangePredicate(predicate_field, start, start + width),
                "accesses_nested": any(
                    ORDER_LINEITEMS_SCHEMA.is_nested_path(f) for f in fields
                ),
            }
        )
    return queries


def _timed_scan(layout, fields: Sequence[str], predicate) -> tuple[float, int]:
    """Scan a layout applying a compiled predicate; returns (seconds, rows scanned)."""
    compiled = compile_predicate(predicate)
    started = time.perf_counter()
    scanned = 0
    matched = 0
    for row in layout.scan(fields=fields):
        scanned += 1
        if compiled(row):
            matched += 1
    return time.perf_counter() - started, scanned


# ---------------------------------------------------------------------------
# Figure 1: static Parquet vs relational columnar over the 600-query sequence
# ---------------------------------------------------------------------------
def figure1_layout_gap(num_orders: int = 600, num_queries: int = 120, seed: int = 3) -> dict:
    """Execution time per query for Parquet and columnar caches of nested data.

    First half of the queries draws attributes from all attributes, second half
    from non-nested attributes only — the workload of Figure 1 (and 9a).
    """
    records = synthetic_order_lineitems(num_orders, seed=seed)
    fields = ORDER_LINEITEMS_SCHEMA.leaf_paths()
    parquet = build_layout("parquet", ORDER_LINEITEMS_SCHEMA, fields, records=records)
    columnar = build_layout("columnar", ORDER_LINEITEMS_SCHEMA, fields, records=records)
    queries = _order_lineitems_layout_queries(num_queries, AttributeSchedule.halves(num_queries), seed)

    parquet_times, columnar_times = [], []
    for query in queries:
        p_time, _ = _timed_scan(parquet, query["fields"], query["predicate"])
        c_time, _ = _timed_scan(columnar, query["fields"], query["predicate"])
        parquet_times.append(p_time)
        columnar_times.append(c_time)

    half = num_queries // 2
    return {
        "num_queries": num_queries,
        "phase_boundary": half,
        "parquet_times": parquet_times,
        "columnar_times": columnar_times,
        "phase1_parquet_total": sum(parquet_times[:half]),
        "phase1_columnar_total": sum(columnar_times[:half]),
        "phase2_parquet_total": sum(parquet_times[half:]),
        "phase2_columnar_total": sum(columnar_times[half:]),
    }


# ---------------------------------------------------------------------------
# Figures 5 and 6: scan time / write latency vs nested-array cardinality
# ---------------------------------------------------------------------------
def figure5_scan_vs_cardinality(
    cardinalities: Sequence[int] = (0, 2, 5, 10, 15, 20),
    num_records: int = 400,
) -> list[dict]:
    """Full-scan time over Parquet and columnar caches as cardinality grows."""
    fields = CARDINALITY_SWEEP_SCHEMA.leaf_paths()
    rows = []
    for cardinality in cardinalities:
        records = cardinality_sweep_records(num_records, cardinality)
        parquet = build_layout("parquet", CARDINALITY_SWEEP_SCHEMA, fields, records=records)
        columnar = build_layout("columnar", CARDINALITY_SWEEP_SCHEMA, fields, records=records)
        p_time, _ = _timed_scan(parquet, fields, None)
        c_time, _ = _timed_scan(columnar, fields, None)
        rows.append(
            {
                "cardinality": cardinality,
                "parquet_scan_s": p_time,
                "columnar_scan_s": c_time,
                "parquet_vs_columnar": p_time / c_time if c_time > 0 else float("inf"),
            }
        )
    return rows


def figure6_write_latency(
    cardinalities: Sequence[int] = (0, 2, 5, 10, 15, 20),
    num_records: int = 400,
) -> list[dict]:
    """Time to build Parquet and columnar caches as cardinality grows."""
    fields = CARDINALITY_SWEEP_SCHEMA.leaf_paths()
    rows = []
    for cardinality in cardinalities:
        records = cardinality_sweep_records(num_records, cardinality)
        started = time.perf_counter()
        build_layout("parquet", CARDINALITY_SWEEP_SCHEMA, fields, records=records)
        parquet_build = time.perf_counter() - started
        started = time.perf_counter()
        build_layout("columnar", CARDINALITY_SWEEP_SCHEMA, fields, records=records)
        columnar_build = time.perf_counter() - started
        rows.append(
            {
                "cardinality": cardinality,
                "parquet_build_s": parquet_build,
                "columnar_build_s": columnar_build,
                "columnar_vs_parquet": columnar_build / parquet_build if parquet_build else 0.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 7: cost model prediction error CDF
# ---------------------------------------------------------------------------
def figure7_cost_model_error(num_orders: int = 500, num_queries: int = 80, seed: int = 3) -> dict:
    """Percentage error of the layout cost model's cross-layout predictions."""
    records = synthetic_order_lineitems(num_orders, seed=seed)
    fields = ORDER_LINEITEMS_SCHEMA.leaf_paths()
    parquet: ParquetLayout = build_layout("parquet", ORDER_LINEITEMS_SCHEMA, fields, records=records)
    columnar: ColumnarLayout = build_layout("columnar", ORDER_LINEITEMS_SCHEMA, fields, records=records)
    flattened_rows = columnar.flattened_row_count
    record_count = parquet.record_count
    model = LayoutCostModel()
    queries = _order_lineitems_layout_queries(num_queries, AttributeSchedule.halves(num_queries), seed)

    errors: list[float] = []
    parquet_history: list[LayoutObservation] = []
    for query in queries:
        wanted = query["fields"]
        columns = len(wanted)
        # Measure both layouts for this query.
        p_time, p_rows = _timed_scan(parquet, wanted, query["predicate"])
        c_time, c_rows = _timed_scan(columnar, wanted, query["predicate"])
        p_data, p_compute = split_scan_cost(p_time, p_rows * columns)
        c_data, _ = split_scan_cost(c_time, c_rows * columns)

        parquet_obs = LayoutObservation(
            query_index=query["index"],
            layout_name="parquet",
            data_cost=p_data,
            compute_cost=p_compute,
            rows_accessed=p_rows,
            columns_accessed=columns,
            accessed_nested=query["accesses_nested"],
        )
        parquet_history.append(parquet_obs)

        # Predict the relational cost from the Parquet measurement and vice versa.
        predicted_relational = model.predict_relational_scan_cost(parquet_obs, flattened_rows)
        errors.append(percentage_error(predicted_relational, c_time))

        parquet_rows = flattened_rows if query["accesses_nested"] else record_count
        compute = closest_compute_cost(parquet_history, parquet_rows, columns) or p_compute
        columnar_obs = LayoutObservation(
            query_index=query["index"],
            layout_name="columnar",
            data_cost=c_data,
            compute_cost=0.0,
            rows_accessed=c_rows,
            columns_accessed=columns,
            accessed_nested=query["accesses_nested"],
        )
        predicted_parquet = model.predict_parquet_scan_cost(columnar_obs, parquet_rows, compute)
        errors.append(percentage_error(predicted_parquet, p_time))

    return {
        "errors": errors,
        "fraction_within_10pct": fraction_below(errors, 10.0),
        "fraction_within_30pct": fraction_below(errors, 30.0),
        "fraction_within_50pct": fraction_below(errors, 50.0),
        "median_error": sorted(errors)[len(errors) // 2] if errors else None,
    }


# ---------------------------------------------------------------------------
# Figure 9: automatic layout selection vs the static layouts (full engine)
# ---------------------------------------------------------------------------
_FIG9_SCHEDULES = {
    "halves": AttributeSchedule.halves,
    "alternating": lambda n: AttributeSchedule.alternating(period=max(1, n // 6)),
    "random": lambda n: AttributeSchedule.random_mix(0.5),
}


def figure9_auto_layout(
    pattern: str = "halves",
    num_queries: int = 240,
    num_orders: int = 800,
    seed: int = 3,
) -> dict:
    """Per-query cache-scan time for Parquet, columnar and ReCache auto layout.

    ``pattern`` selects the attribute schedule: ``"halves"`` (Figure 9a),
    ``"alternating"`` (Figure 9b) or ``"random"`` (Figure 9c).

    As in the paper, the caches are populated beforehand so the measurement
    isolates cache-scan performance from cache construction.  The ReCache
    configuration drives the real :class:`~repro.core.layout_selector.LayoutSelector`
    over a real :class:`~repro.core.cache_entry.CacheEntry`, paying the actual
    layout-conversion cost whenever it decides to switch (the spikes of
    Figure 9).
    """
    if pattern not in _FIG9_SCHEDULES:
        raise ValueError(f"unknown pattern {pattern!r}; expected one of {sorted(_FIG9_SCHEDULES)}")
    schedule = _FIG9_SCHEDULES[pattern](num_queries)
    queries = _order_lineitems_layout_queries(num_queries, schedule, seed)

    records = synthetic_order_lineitems(num_orders, seed=seed)
    fields = ORDER_LINEITEMS_SCHEMA.leaf_paths()
    parquet = build_layout("parquet", ORDER_LINEITEMS_SCHEMA, fields, records=records)
    columnar = build_layout("columnar", ORDER_LINEITEMS_SCHEMA, fields, records=records)

    # Static baselines: always scan the same pre-built layout.
    parquet_times = []
    columnar_times = []
    for query in queries:
        p_time, _ = _timed_scan(parquet, query["fields"], query["predicate"])
        c_time, _ = _timed_scan(columnar, query["fields"], query["predicate"])
        parquet_times.append(p_time)
        columnar_times.append(c_time)

    # ReCache: the automatic selector over a pre-populated (Parquet) cache.
    recache_times, switches = _run_auto_layout(records, queries)

    totals = {
        "parquet": sum(parquet_times),
        "columnar": sum(columnar_times),
        "recache": sum(recache_times),
    }
    optimal_total = sum(min(p, c) for p, c in zip(parquet_times, columnar_times))
    return {
        "pattern": pattern,
        "num_queries": num_queries,
        "series": {
            "parquet": parquet_times,
            "columnar": columnar_times,
            "recache": recache_times,
        },
        "totals": totals,
        "optimal_total": optimal_total,
        "recache_layout_switches": switches,
        "closer_than_parquet_pct": closeness_to_optimal(
            totals["recache"], totals["parquet"], optimal_total
        ),
        "closer_than_columnar_pct": closeness_to_optimal(
            totals["recache"], totals["columnar"], optimal_total
        ),
    }


def _run_auto_layout(records, queries) -> tuple[list[float], int]:
    """Drive the real layout selector over a pre-populated cache entry."""
    from repro.core.cache_entry import CacheEntry, CacheKey
    from repro.core.layout_selector import LayoutSelector
    from repro.layouts import convert_layout

    fields = ORDER_LINEITEMS_SCHEMA.leaf_paths()
    layout = build_layout("parquet", ORDER_LINEITEMS_SCHEMA, fields, records=records)
    entry = CacheEntry(
        key=CacheKey.for_select("orderLineitems", None),
        source="orderLineitems",
        source_format="json",
        predicate=None,
        fields=fields,
        layout=layout,
    )
    selector = LayoutSelector()
    times = []
    switches = 0
    for query in queries:
        scan_time, scanned_rows = _timed_scan(entry.layout, query["fields"], query["predicate"])
        columns = len(query["fields"])
        data_cost, compute_cost = split_scan_cost(scan_time, scanned_rows * columns)
        selector.observe(
            entry,
            LayoutObservation(
                query_index=query["index"],
                layout_name=entry.layout_name,
                data_cost=data_cost,
                compute_cost=compute_cost,
                rows_accessed=scanned_rows,
                columns_accessed=columns,
                accessed_nested=query["accesses_nested"],
            ),
        )
        decision = selector.decide(entry)
        if decision.should_switch:
            converted, conversion_time = convert_layout(
                entry.layout, decision.target_layout, ORDER_LINEITEMS_SCHEMA
            )
            entry.replace_layout(converted)
            selector.after_switch(entry)
            scan_time += conversion_time  # the visible "spike" of Figure 9
            switches += 1
        times.append(scan_time)
    return times, switches


def _warm_query() -> Query:
    """An unconstrained select over orderLineitems touching every numeric field."""
    fields = list(TPCH_FIELD_RANGES["orderLineitems"])
    aggregates = [AggregateSpec("count", FieldRef(field)) for field in fields]
    return Query(tables=[TableRef("orderLineitems", None)], aggregates=aggregates, label="warm")


def _order_lineitems_engine_queries(
    num_queries: int, schedule: AttributeSchedule, seed: int
) -> list[Query]:
    """Engine-level SPA queries matching the Section 4.1 workload shape."""
    shapes = _order_lineitems_layout_queries(num_queries, schedule, seed)
    queries = []
    for shape in shapes:
        aggregates = [AggregateSpec("sum", FieldRef(field)) for field in shape["fields"]]
        queries.append(
            Query(
                tables=[TableRef("orderLineitems", shape["predicate"])],
                aggregates=aggregates,
                label=f"fig9-{shape['index']}",
            )
        )
    return queries
