"""Table 1: the qualitative comparison with related work.

The table is qualitative rather than measured; regenerating it means printing
the same rows and check-marks the paper reports, so that the benchmark harness
covers every table and figure of the evaluation.
"""

from __future__ import annotations

TABLE1_REQUIREMENTS = (
    "low_overhead",
    "optimizes_for_heterogeneous_data",
    "improved_net_performance",
)


def table1_related_work() -> list[dict]:
    """The rows of Table 1 (a check-mark becomes ``True``)."""
    rows = [
        ("Caching Disk Pages", True, False, True),
        ("Cost-based Caching", True, False, True),
        ("Caching Intermediate Query Results", False, False, True),
        ("Caching Raw Data", True, True, False),
        ("Automatic Layout Selection", False, True, False),
        ("Reactive Cache (ReCache)", True, True, True),
    ]
    return [
        {
            "research_area": name,
            "low_overhead": low,
            "optimizes_for_heterogeneous_data": hetero,
            "improved_net_performance": net,
        }
        for name, low, hetero, net in rows
    ]
