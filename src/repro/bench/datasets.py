"""Shared dataset setup for the experiment drivers.

Experiments need the TPC-H, orderLineitems, Symantec-style and Yelp-style files
on disk.  Writing them is cheap but not free, so the builders below memoize the
generated files in a per-process temporary directory keyed by their parameters;
every bench that asks for the same dataset reuses the same files.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.config import ReCacheConfig
from repro.engine.session import QueryEngine
from repro.workloads.symantec import SYMANTEC_CSV_SCHEMA, SYMANTEC_JSON_SCHEMA, write_symantec_dataset
from repro.workloads.tpch import (
    ORDER_LINEITEMS_SCHEMA,
    TPCH_SCHEMAS,
    write_order_lineitems_json,
    write_tpch_dataset,
)
from repro.workloads.yelp import YELP_SCHEMAS, write_yelp_dataset

_root: Path | None = None
_generated: dict[tuple, dict[str, Path]] = {}


def bench_data_root() -> Path:
    """The per-process scratch directory holding generated bench datasets."""
    global _root
    if _root is None:
        _root = Path(tempfile.mkdtemp(prefix="recache-bench-"))
    return _root


def tpch_files(scale_factor: float = 0.001, seed: int = 42, lineitem_json: bool = False) -> dict[str, Path]:
    """TPC-H CSV files (plus a JSON copy of lineitem when requested)."""
    key = ("tpch", scale_factor, seed, lineitem_json)
    if key not in _generated:
        directory = bench_data_root() / f"tpch_{scale_factor}_{seed}_{int(lineitem_json)}"
        json_tables = ["lineitem"] if lineitem_json else []
        _generated[key] = write_tpch_dataset(
            directory, scale_factor=scale_factor, seed=seed, json_tables=json_tables
        )
    return _generated[key]


def order_lineitems_file(scale_factor: float = 0.0005, seed: int = 42) -> Path:
    key = ("orderLineitems", scale_factor, seed)
    if key not in _generated:
        directory = bench_data_root() / f"ol_{scale_factor}_{seed}"
        _generated[key] = {"orderLineitems": write_order_lineitems_json(directory, scale_factor, seed)}
    return _generated[key]["orderLineitems"]


def symantec_files(json_records: int = 1200, csv_records: int = 4000, seed: int = 23) -> dict[str, Path]:
    key = ("symantec", json_records, csv_records, seed)
    if key not in _generated:
        directory = bench_data_root() / f"symantec_{json_records}_{csv_records}_{seed}"
        _generated[key] = write_symantec_dataset(directory, json_records, csv_records, seed)
    return _generated[key]


def yelp_files(total_records: int = 1500, seed: int = 31) -> dict[str, Path]:
    key = ("yelp", total_records, seed)
    if key not in _generated:
        directory = bench_data_root() / f"yelp_{total_records}_{seed}"
        _generated[key] = write_yelp_dataset(directory, total_records, seed)
    return _generated[key]


# ---------------------------------------------------------------------------
# Engine builders
# ---------------------------------------------------------------------------
def tpch_engine(
    config: ReCacheConfig,
    scale_factor: float = 0.01,
    seed: int = 42,
    lineitem_json: bool = False,
) -> QueryEngine:
    """A query engine with all five TPC-H tables registered."""
    paths = tpch_files(scale_factor=scale_factor, seed=seed, lineitem_json=lineitem_json)
    engine = QueryEngine(config)
    for table, schema in TPCH_SCHEMAS.items():
        engine.register_csv(table, paths[table], schema)
    if lineitem_json:
        engine.register_json("lineitem_json", paths["lineitem_json"], TPCH_SCHEMAS["lineitem"])
    return engine


def order_lineitems_engine(config: ReCacheConfig, scale_factor: float = 0.0005, seed: int = 42) -> QueryEngine:
    """A query engine with the nested orderLineitems JSON file registered."""
    engine = QueryEngine(config)
    engine.register_json(
        "orderLineitems", order_lineitems_file(scale_factor, seed), ORDER_LINEITEMS_SCHEMA
    )
    return engine


def symantec_engine(
    config: ReCacheConfig, json_records: int = 1200, csv_records: int = 4000, seed: int = 23
) -> QueryEngine:
    """A query engine with the Symantec-style JSON and CSV files registered."""
    paths = symantec_files(json_records, csv_records, seed)
    engine = QueryEngine(config)
    engine.register_json("spam_json", paths["spam_json"], SYMANTEC_JSON_SCHEMA)
    engine.register_csv("spam_csv", paths["spam_csv"], SYMANTEC_CSV_SCHEMA)
    return engine


def yelp_engine(config: ReCacheConfig, total_records: int = 1500, seed: int = 31) -> QueryEngine:
    """A query engine with the Yelp-style business/user/review files registered."""
    paths = yelp_files(total_records, seed)
    engine = QueryEngine(config)
    for name, schema in YELP_SCHEMAS.items():
        engine.register_json(name, paths[name], schema)
    return engine
