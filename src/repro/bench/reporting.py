"""Plain-text reporting helpers shared by the benchmark scripts."""

from __future__ import annotations

from typing import Sequence


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[_format_value(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float], every: int = 1) -> str:
    """Render a numeric series compactly (used for cumulative-time curves)."""
    picked = [f"{value:.4g}" for index, value in enumerate(values) if index % every == 0]
    return f"{name}: [{', '.join(picked)}]"


def cdf_points(values: Sequence[float], percentiles: Sequence[float] = (50, 90, 95, 99)) -> dict:
    """Selected percentiles of a distribution (for CDF figures)."""
    if not values:
        return {f"p{int(p)}": None for p in percentiles}
    ordered = sorted(values)
    result = {}
    for percentile in percentiles:
        index = min(len(ordered) - 1, int(round(percentile / 100.0 * (len(ordered) - 1))))
        result[f"p{int(percentile)}"] = ordered[index]
    return result


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of values at or below ``threshold`` (a single CDF point)."""
    if not values:
        return 0.0
    return sum(1 for value in values if value <= threshold) / len(values)


def percent_reduction(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``."""
    if baseline <= 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0


def closeness_to_optimal(candidate: float, competitor: float, optimal: float) -> float:
    """How much closer ``candidate`` is to ``optimal`` than ``competitor`` (%, Fig. 9).

    Defined as the reduction of the gap to the optimal:
    ``(competitor - candidate) / (competitor - optimal) * 100``.
    """
    gap = competitor - optimal
    if gap <= 0:
        return 0.0
    return (competitor - candidate) / gap * 100.0


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
