"""Deterministic, seeded fault injection for the cache/serving stack.

See :mod:`repro.faults.plan` for the spec-string grammar and fault
taxonomy, and :mod:`repro.faults.runtime` for activation (config,
``RECACHE_FAULTS`` env, or the :func:`activate` context manager).
"""

from repro.faults.plan import (
    KINDS,
    SCOPES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
    parse_fault_spec,
)
from repro.faults.runtime import (
    activate,
    active_plan,
    injector_for,
    install,
    install_spec,
)

__all__ = [
    "KINDS",
    "SCOPES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "activate",
    "active_plan",
    "injector_for",
    "install",
    "install_spec",
    "parse_fault_plan",
    "parse_fault_spec",
]
