"""Process-global fault-plan activation.

The active plan is a single module-level reference swapped atomically
(reads are GIL-atomic), so the disabled fast path — the common case — is
one global load and a ``None`` check per *scan*, and a local ``is not
None`` check per record.  Nothing else runs when no plan is installed.

Activation paths, in priority order:

* ``RECACHE_FAULTS`` env var (with optional ``RECACHE_FAULTS_SEED``),
  installed at import time — lets any entry point run under faults
  without code changes;
* ``ReCacheConfig.faults`` — :class:`QueryEngine` installs it on
  construction;
* :func:`activate` — scoped context manager used by tests and the chaos
  harness (restores the previous plan on exit).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.faults.plan import FaultInjector, FaultPlan, parse_fault_plan

_ACTIVE: FaultPlan | None = None

ENV_VAR = "RECACHE_FAULTS"
ENV_SEED_VAR = "RECACHE_FAULTS_SEED"


def injector_for(scope: str, detail: str | None = None) -> FaultInjector | None:
    """The active injector for one fault site; None when faults are off.

    This is the only call on hot paths.  Hoist it to once per scan and keep
    the result in a local — the per-record guard is then ``if injector is
    not None: injector()``.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.injector_for(scope, detail)


def active_plan() -> FaultPlan | None:
    return _ACTIVE


def install(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (None disables fault injection)."""
    global _ACTIVE
    _ACTIVE = plan


def install_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Parse and install a spec string; returns the installed plan."""
    plan = parse_fault_plan(spec, seed=seed)
    install(plan)
    return plan


@contextmanager
def activate(plan: FaultPlan | str, seed: int = 0) -> Iterator[FaultPlan]:
    """Temporarily install a plan (or spec string), restoring on exit."""
    if isinstance(plan, str):
        plan = parse_fault_plan(plan, seed=seed)
    previous = _ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def _install_from_env() -> None:
    spec = os.environ.get(ENV_VAR)
    if spec:
        install_spec(spec, seed=int(os.environ.get(ENV_SEED_VAR, "0")))


_install_from_env()
