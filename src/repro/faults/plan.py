"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is a set of scoped injectors parsed from a compact
spec string (config knob ``faults`` or the ``RECACHE_FAULTS`` env var)::

    scope:kind[:key=value,...][;scope:kind...]

    scan.raw:io_error:rate=0.05,limit=2
    scan.layout:corrupt:after=100;budget.reserve:budget_exhausted:rate=0.5

Scopes name *where* the fault can fire, kinds *what* fires:

========== ================================================================
scope      fault site
========== ================================================================
scan.raw   CSV/JSON plugin scans (per record parsed)
scan.layout cached-layout scans in the executor and layouts (per row/batch)
budget.reserve ``SharedBudget.try_reserve`` (admission denied)
server.worker  ``EngineServer`` worker threads (group dies mid-flight)
========== ================================================================

========== ================================================================
kind       effect when it fires
========== ================================================================
io_error   raise :class:`TransientScanError` (retryable)
short_read raise :class:`TransientScanError` (truncated stream, retryable)
corrupt    raise :class:`CorruptedCacheError` (poisoned cache entry)
latency    ``time.sleep(delay)`` spike (default 1 ms)
budget_exhausted force ``try_reserve`` to report no headroom
worker_crash raise :class:`WorkerCrashed` in the serving worker
========== ================================================================

Parameters: ``rate`` (per-opportunity probability, default 1.0), ``limit``
(max firings, default unlimited), ``after`` (skip the first N
opportunities), ``delay`` (latency spike seconds), ``detail`` (substring
filter on the site detail, e.g. a file name).  Randomness comes from one
``random.Random(seed)`` per injector, so a (spec, seed) pair replays the
exact same fault schedule — the property the chaos harness relies on.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.core.errors import CorruptedCacheError, TransientScanError, WorkerCrashed

SCOPES = frozenset({"scan.raw", "scan.layout", "budget.reserve", "server.worker"})
KINDS = frozenset(
    {"io_error", "short_read", "corrupt", "latency", "budget_exhausted", "worker_crash"}
)

_FLOAT_PARAMS = frozenset({"rate", "delay"})
_INT_PARAMS = frozenset({"limit", "after"})


@dataclass(frozen=True)
class FaultSpec:
    """One scoped fault: where it can fire, what fires, and how often."""

    scope: str
    kind: str
    rate: float = 1.0
    limit: int | None = None
    after: int = 0
    delay: float = 0.001
    detail: str | None = None

    def __post_init__(self) -> None:
        if self.scope not in SCOPES:
            raise ValueError(f"unknown fault scope {self.scope!r}; expected one of {sorted(SCOPES)}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {sorted(KINDS)}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"fault limit must be >= 0, got {self.limit}")
        if self.after < 0:
            raise ValueError(f"fault 'after' must be >= 0, got {self.after}")
        if self.delay < 0:
            raise ValueError(f"fault delay must be >= 0, got {self.delay}")

    def as_string(self) -> str:
        parts = [f"{self.scope}:{self.kind}"]
        params = []
        if self.rate != 1.0:
            params.append(f"rate={self.rate}")
        if self.limit is not None:
            params.append(f"limit={self.limit}")
        if self.after:
            params.append(f"after={self.after}")
        if self.delay != 0.001:
            params.append(f"delay={self.delay}")
        if self.detail is not None:
            params.append(f"detail={self.detail}")
        if params:
            parts.append(",".join(params))
        return ":".join(parts)


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one ``scope:kind[:key=value,...]`` clause."""
    pieces = text.strip().split(":", 2)
    if len(pieces) < 2:
        raise ValueError(f"fault spec {text!r} must look like 'scope:kind[:key=value,...]'")
    scope, kind = pieces[0].strip(), pieces[1].strip()
    params: dict[str, object] = {}
    if len(pieces) == 3 and pieces[2].strip():
        for clause in pieces[2].split(","):
            if "=" not in clause:
                raise ValueError(f"fault parameter {clause!r} must look like 'key=value'")
            key, _, value = clause.partition("=")
            key, value = key.strip(), value.strip()
            if key in _FLOAT_PARAMS:
                params[key] = float(value)
            elif key in _INT_PARAMS:
                params[key] = int(value)
            elif key == "detail":
                params[key] = value
            else:
                raise ValueError(f"unknown fault parameter {key!r}")
    return FaultSpec(scope=scope, kind=kind, **params)  # type: ignore[arg-type]


def parse_fault_plan(spec: str, seed: int = 0) -> "FaultPlan":
    """Parse a ``;``-separated list of fault clauses into a seeded plan."""
    clauses = [clause for clause in spec.split(";") if clause.strip()]
    if not clauses:
        raise ValueError("empty fault plan spec")
    return FaultPlan([parse_fault_spec(clause) for clause in clauses], seed=seed)


class _InjectorState:
    """Mutable firing state of one :class:`FaultSpec` (thread-safe)."""

    GUARDED_BY = {"_opportunities": "_lock", "_fired": "_lock", "_rng": "_lock"}

    def __init__(self, spec: FaultSpec, seed: int) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._rng = random.Random((seed * 1_000_003) ^ hash((spec.scope, spec.kind)))
        self._opportunities = 0
        self._fired = 0

    def fires(self) -> bool:
        """Consume one opportunity; True when the fault fires this time."""
        spec = self.spec
        with self._lock:
            self._opportunities += 1
            if self._opportunities <= spec.after:
                return False
            if spec.limit is not None and self._fired >= spec.limit:
                return False
            if spec.rate < 1.0 and self._rng.random() >= spec.rate:
                return False
            self._fired += 1
            return True

    @property
    def fired(self) -> int:
        return self._fired  # unguarded-read: GIL-atomic int snapshot for reporting

    @property
    def opportunities(self) -> int:
        return self._opportunities  # unguarded-read: GIL-atomic int snapshot for reporting


class FaultInjector:
    """The per-site handle: decides and performs faults for matching specs.

    Call it at each opportunity — it either returns normally, sleeps (kind
    ``latency``), or raises the typed error of the first firing spec.  Use
    :meth:`fires` for sites that need a boolean (budget exhaustion) instead
    of an exception.
    """

    __slots__ = ("_states", "detail")

    def __init__(self, states: list[_InjectorState], detail: str | None) -> None:
        self._states = states
        self.detail = detail

    def fires(self) -> bool:
        return any(state.fires() for state in self._states)

    def __call__(self) -> None:
        for state in self._states:
            if not state.fires():
                continue
            kind = state.spec.kind
            site = self.detail or state.spec.scope
            if kind == "latency":
                time.sleep(state.spec.delay)
            elif kind == "corrupt":
                raise CorruptedCacheError(f"injected corruption in {site}")
            elif kind == "worker_crash":
                raise WorkerCrashed(f"injected worker crash serving {site}")
            elif kind == "short_read":
                raise TransientScanError(f"injected short read in {site}")
            else:  # io_error / budget_exhausted used as an error site
                raise TransientScanError(f"injected io error in {site}")


class FaultPlan:
    """An immutable set of seeded fault injectors, matched by scope/detail."""

    def __init__(self, specs: list[FaultSpec], seed: int = 0) -> None:
        self.seed = seed
        self.specs = tuple(specs)
        self._states = tuple(_InjectorState(spec, seed) for spec in self.specs)

    def injector_for(self, scope: str, detail: str | None = None) -> FaultInjector | None:
        """The injector covering one fault site, or None when nothing matches.

        Call once per scan/operation (hoisted out of per-record loops); a
        ``None`` return is the disabled fast path — the per-record cost is a
        single ``is not None`` check on a local.
        """
        states = [
            state
            for state in self._states
            if state.spec.scope == scope
            and (state.spec.detail is None or detail is None or state.spec.detail in detail)
        ]
        if not states:
            return None
        return FaultInjector(states, detail)

    def snapshot(self) -> list[dict]:
        """Per-spec firing counts (for chaos reports and tests)."""
        return [
            {
                "spec": state.spec.as_string(),
                "opportunities": state.opportunities,
                "fired": state.fired,
            }
            for state in self._states
        ]
