"""Synthetic stand-in for the Symantec spam-email dataset (Section 6).

The real dataset is proprietary.  The paper describes its relevant properties:
JSON objects with (i) numeric and variable-length string fields, (ii) flat and
nested entries of various depths, (iii) fields that exist only in a subset of
the objects, plus companion CSV files produced by a data-mining engine (an
identifier per email, summary information and assigned classes).  The
generator below reproduces exactly those structural properties.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine.types import FLOAT, INT, STRING, Field, ListType, RecordType
from repro.formats.csv_plugin import write_csv
from repro.formats.json_plugin import write_json_lines
from repro.utils.rng import make_rng

#: JSON component: one object per spam email
SYMANTEC_JSON_SCHEMA = RecordType(
    [
        Field("email_id", INT),
        Field("size_bytes", INT),
        Field("spam_score", FLOAT),
        Field("hour", INT),
        Field("country_code", INT),
        Field("lang", STRING),
        Field("content_type", STRING),
        # optional field: present in roughly half of the objects
        Field("subject_length", INT),
        Field(
            "origin",
            RecordType(
                [
                    Field("ip_prefix", INT),
                    Field("asn", INT),
                    Field("reputation", FLOAT),
                ]
            ),
        ),
        Field(
            "urls",
            ListType(
                RecordType(
                    [
                        Field("domain_hash", INT),
                        Field("port", INT),
                        Field("reputation", FLOAT),
                        Field("path_length", INT),
                    ]
                )
            ),
        ),
    ]
)

#: CSV component: per-email classification output of the mining engine
SYMANTEC_CSV_SCHEMA = RecordType(
    [
        Field("email_id", INT),
        Field("class_id", INT),
        Field("confidence", FLOAT),
        Field("summary_length", INT),
        Field("cluster", INT),
    ]
)

SYMANTEC_FIELD_RANGES: dict[str, dict[str, tuple[float, float]]] = {
    "spam_json": {
        "size_bytes": (200.0, 60000.0),
        "spam_score": (0.0, 1.0),
        "hour": (0.0, 23.0),
        "country_code": (1.0, 250.0),
        "subject_length": (0.0, 200.0),
        "origin.ip_prefix": (0.0, 255.0),
        "origin.asn": (1.0, 65000.0),
        "origin.reputation": (0.0, 1.0),
        "urls.domain_hash": (0.0, 1_000_000.0),
        "urls.port": (1.0, 65535.0),
        "urls.reputation": (0.0, 1.0),
        "urls.path_length": (0.0, 120.0),
    },
    "spam_csv": {
        "email_id": (1.0, 10_000_000.0),
        "class_id": (0.0, 40.0),
        "confidence": (0.0, 1.0),
        "summary_length": (0.0, 500.0),
        "cluster": (0.0, 1000.0),
    },
}

_LANGS = ["en", "ru", "zh", "es", "pt", "de", "fr", "ja"]
_CONTENT_TYPES = ["text/plain", "text/html", "multipart/mixed", "multipart/alternative"]


def spam_json_records(num_records: int, seed: int = 23) -> list[dict]:
    """Generate nested spam-email JSON objects with optional fields."""
    rng = make_rng(seed)
    records = []
    for email_id in range(1, num_records + 1):
        urls = [
            {
                "domain_hash": rng.randint(0, 1_000_000),
                "port": rng.choice([80, 443, 8080, rng.randint(1024, 65535)]),
                "reputation": round(rng.random(), 3),
                "path_length": rng.randint(0, 120),
            }
            for _ in range(rng.randint(0, 6))
        ]
        record = {
            "email_id": email_id,
            "size_bytes": rng.randint(200, 60000),
            "spam_score": round(rng.random(), 4),
            "hour": rng.randint(0, 23),
            "country_code": rng.randint(1, 250),
            "lang": rng.choice(_LANGS),
            "content_type": rng.choice(_CONTENT_TYPES),
            "origin": {
                "ip_prefix": rng.randint(0, 255),
                "asn": rng.randint(1, 65000),
                "reputation": round(rng.random(), 3),
            },
            "urls": urls,
        }
        # The optional field: present in ~50% of objects (property iii).
        if rng.random() < 0.5:
            record["subject_length"] = rng.randint(0, 200)
        records.append(record)
    return records


def spam_csv_rows(num_records: int, seed: int = 29) -> list[dict]:
    """Generate the flat classification CSV that accompanies the JSON logs."""
    rng = make_rng(seed)
    rows = []
    for email_id in range(1, num_records + 1):
        rows.append(
            {
                "email_id": email_id,
                "class_id": rng.randint(0, 40),
                "confidence": round(rng.random(), 4),
                "summary_length": rng.randint(0, 500),
                "cluster": rng.randint(0, 1000),
            }
        )
    return rows


def write_symantec_dataset(
    directory: str | Path,
    json_records: int = 2000,
    csv_records: int = 8000,
    seed: int = 23,
) -> dict[str, Path]:
    """Write the synthetic Symantec-style JSON and CSV files.

    Returns ``{"spam_json": ..., "spam_csv": ...}`` paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / "spam.json"
    csv_path = directory / "spam_classes.csv"
    write_json_lines(json_path, spam_json_records(json_records, seed=seed))
    write_csv(csv_path, SYMANTEC_CSV_SCHEMA, spam_csv_rows(csv_records, seed=seed + 1))
    return {"spam_json": json_path, "spam_csv": csv_path}
