"""Synthetic nested datasets for the layout micro-experiments (Section 4.1).

Two generators live here:

* :func:`synthetic_order_lineitems` — uniform-random records in the
  orderLineitems shape, used when the experiment does not need the TPC-H value
  distributions (and is faster to generate).
* :func:`cardinality_sweep_records` — records whose nested array has a fixed,
  sweepable cardinality; Figures 5 and 6 sweep this cardinality from 0 to 20 to
  compare Parquet and relational columnar scan/build costs.
"""

from __future__ import annotations

from repro.engine.types import FLOAT, INT, Field, ListType, RecordType
from repro.utils.rng import make_rng
from repro.workloads.tpch import ORDER_LINEITEMS_SCHEMA

__all__ = [
    "ORDER_LINEITEMS_SCHEMA",
    "CARDINALITY_SWEEP_SCHEMA",
    "synthetic_order_lineitems",
    "cardinality_sweep_records",
]

#: schema of the cardinality-sweep dataset: a handful of parent fields plus a
#: nested array of small records, mirroring the orderLineitems shape
CARDINALITY_SWEEP_SCHEMA = RecordType(
    [
        Field("record_id", INT),
        Field("group_key", INT),
        Field("value_a", FLOAT),
        Field("value_b", FLOAT),
        Field(
            "items",
            ListType(
                RecordType(
                    [
                        Field("item_key", INT),
                        Field("metric_x", FLOAT),
                        Field("metric_y", FLOAT),
                        Field("metric_z", FLOAT),
                    ]
                )
            ),
        ),
    ]
)


def synthetic_order_lineitems(
    num_orders: int,
    average_lineitems: int = 4,
    seed: int = 7,
) -> list[dict]:
    """Uniform-random nested records in the orderLineitems schema."""
    if num_orders <= 0:
        raise ValueError("num_orders must be positive")
    rng = make_rng(seed)
    records = []
    for orderkey in range(1, num_orders + 1):
        count = max(0, int(rng.gauss(average_lineitems, 1.5)))
        lineitems = [
            {
                "l_partkey": rng.randint(1, 10_000),
                "l_suppkey": rng.randint(1, 1_000),
                "l_quantity": float(rng.randint(1, 50)),
                "l_extendedprice": round(rng.uniform(900.0, 105_000.0), 2),
                "l_discount": round(rng.uniform(0.0, 0.1), 2),
                "l_tax": round(rng.uniform(0.0, 0.08), 2),
                "l_shipdate": rng.randint(8036, 10591),
            }
            for _ in range(count)
        ]
        records.append(
            {
                "o_orderkey": orderkey,
                "o_custkey": rng.randint(1, 10_000),
                "o_totalprice": round(rng.uniform(850.0, 560_000.0), 2),
                "o_orderdate": rng.randint(8036, 10591),
                "o_shippriority": rng.randint(0, 4),
                "lineitems": lineitems,
            }
        )
    # The schema check in DESIGN relies on every record carrying the same shape.
    assert records, "generator produced no records"
    return records


def cardinality_sweep_records(
    num_records: int,
    cardinality: int,
    seed: int = 11,
) -> list[dict]:
    """Records whose nested ``items`` array has exactly ``cardinality`` elements."""
    if num_records <= 0:
        raise ValueError("num_records must be positive")
    if cardinality < 0:
        raise ValueError("cardinality must be non-negative")
    rng = make_rng(seed * 1000 + cardinality)
    records = []
    for record_id in range(num_records):
        items = [
            {
                "item_key": rng.randint(0, 1_000_000),
                "metric_x": rng.random(),
                "metric_y": rng.random() * 100.0,
                "metric_z": rng.random() * 10_000.0,
            }
            for _ in range(cardinality)
        ]
        records.append(
            {
                "record_id": record_id,
                "group_key": rng.randint(0, 100),
                "value_a": rng.random(),
                "value_b": rng.random() * 1000.0,
                "items": items,
            }
        )
    return records
