"""Dataset and query-workload generators used by the evaluation.

The paper evaluates ReCache on three workloads: synthetic TPC-H data (CSV and
JSON), Symantec's spam-email JSON/CSV logs, and Yelp's open dataset.  The
TPC-H generator here follows the official schema shapes at configurable small
scale; the Symantec and Yelp datasets are proprietary/large, so structurally
equivalent synthetic generators stand in for them (see DESIGN.md's
substitution table).
"""

from repro.workloads.tpch import (
    TPCH_SCHEMAS,
    TPCH_FIELD_RANGES,
    TPCHGenerator,
    write_tpch_dataset,
    write_order_lineitems_json,
)
from repro.workloads.nested import (
    ORDER_LINEITEMS_SCHEMA,
    cardinality_sweep_records,
    synthetic_order_lineitems,
)
from repro.workloads.symantec import (
    SYMANTEC_CSV_SCHEMA,
    SYMANTEC_JSON_SCHEMA,
    SYMANTEC_FIELD_RANGES,
    write_symantec_dataset,
)
from repro.workloads.yelp import YELP_SCHEMAS, YELP_FIELD_RANGES, write_yelp_dataset
from repro.workloads.queries import (
    AttributeSchedule,
    spa_workload,
    spj_tpch_workload,
    symantec_mixed_workload,
    yelp_spa_workload,
)
from repro.workloads.runner import (
    ConcurrentWorkloadResult,
    ConcurrentWorkloadRunner,
    WorkloadResult,
    WorkloadRunner,
)

__all__ = [
    "TPCH_SCHEMAS",
    "TPCH_FIELD_RANGES",
    "TPCHGenerator",
    "write_tpch_dataset",
    "write_order_lineitems_json",
    "ORDER_LINEITEMS_SCHEMA",
    "cardinality_sweep_records",
    "synthetic_order_lineitems",
    "SYMANTEC_CSV_SCHEMA",
    "SYMANTEC_JSON_SCHEMA",
    "SYMANTEC_FIELD_RANGES",
    "write_symantec_dataset",
    "YELP_SCHEMAS",
    "YELP_FIELD_RANGES",
    "write_yelp_dataset",
    "AttributeSchedule",
    "spa_workload",
    "spj_tpch_workload",
    "symantec_mixed_workload",
    "yelp_spa_workload",
    "WorkloadResult",
    "WorkloadRunner",
    "ConcurrentWorkloadResult",
    "ConcurrentWorkloadRunner",
]
