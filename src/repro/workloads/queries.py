"""Query workload generators.

These reproduce the query mixes of the paper's evaluation:

* select-project-aggregate (SPA) sequences over nested data whose accessed
  attributes follow a *schedule* — e.g. the first 300 queries draw from all
  attributes and the last 300 only from non-nested attributes (Figures 1/9a),
  switching every 100 queries (Figure 9b), or a random 50/50 mix (Figure 9c),
* select-project-join (SPJ) sequences over the TPC-H tables where each table
  participates with 50% probability, joined on the standard keys, with a range
  predicate of random selectivity per table (Sections 6.2/6.3),
* mixed SPA/SPJ workloads over the Symantec-style CSV+JSON data with a
  configurable fraction of queries touching nested attributes or JSON data
  (Figures 10/11/15a),
* SPA workloads over the Yelp-style JSON files (Figures 11b/15b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.engine.expressions import AggregateSpec, And, FieldRef, RangePredicate
from repro.engine.query import JoinSpec, Query, TableRef
from repro.engine.types import RecordType
from repro.utils.rng import make_rng
from repro.workloads.symantec import SYMANTEC_CSV_SCHEMA, SYMANTEC_FIELD_RANGES, SYMANTEC_JSON_SCHEMA
from repro.workloads.tpch import TPCH_FIELD_RANGES, TPCH_SCHEMAS
from repro.workloads.yelp import YELP_FIELD_RANGES, YELP_SCHEMAS


@dataclass
class AttributeSchedule:
    """Chooses, per query index, which attribute pool a query draws from.

    ``chooser(index)`` returns ``"all"`` (any attribute) or ``"non_nested"``
    (only parent-level attributes).  The three factory methods build the three
    schedules evaluated in Figure 9.
    """

    chooser: Callable[[int], str]

    def pool_for(self, index: int) -> str:
        pool = self.chooser(index)
        if pool not in ("all", "non_nested"):
            raise ValueError(f"schedule returned unknown pool {pool!r}")
        return pool

    @classmethod
    def halves(cls, num_queries: int) -> "AttributeSchedule":
        """First half draws from all attributes, second half from non-nested only."""
        midpoint = num_queries // 2
        return cls(lambda index: "all" if index < midpoint else "non_nested")

    @classmethod
    def alternating(cls, period: int = 100) -> "AttributeSchedule":
        """Switch pools every ``period`` queries (all, non-nested, all, ...)."""
        return cls(lambda index: "all" if (index // period) % 2 == 0 else "non_nested")

    @classmethod
    def random_mix(cls, non_nested_fraction: float = 0.5, seed: int = 97) -> "AttributeSchedule":
        """Each query independently draws from non-nested attributes with the
        given probability (Figure 9c uses 0.5)."""
        rng = make_rng(seed)
        choices = {}

        def chooser(index: int) -> str:
            if index not in choices:
                choices[index] = "non_nested" if rng.random() < non_nested_fraction else "all"
            return choices[index]

        return cls(chooser)

    @classmethod
    def always(cls, pool: str) -> "AttributeSchedule":
        return cls(lambda index: pool)


def _numeric_fields(schema: RecordType, ranges: dict[str, tuple[float, float]]) -> list[str]:
    """Attribute paths that exist in both the schema and the range table."""
    known = set(schema.leaf_paths())
    return [path for path in ranges if path in known]


def _random_range(
    rng: random.Random,
    bounds: tuple[float, float],
    selectivity: tuple[float, float],
) -> tuple[float, float]:
    """A random sub-range of ``bounds`` covering a random fraction of it."""
    low, high = bounds
    width = high - low
    fraction = rng.uniform(*selectivity)
    window = width * fraction
    start = rng.uniform(low, high - window) if width > window else low
    return start, start + window


def spa_workload(
    source: str,
    schema: RecordType,
    field_ranges: dict[str, tuple[float, float]],
    num_queries: int,
    schedule: AttributeSchedule | None = None,
    seed: int = 5,
    aggregates_per_query: tuple[int, int] = (1, 3),
    selectivity: tuple[float, float] = (0.1, 0.9),
) -> list[Query]:
    """Select-project-aggregate queries with random range predicates."""
    rng = make_rng(seed)
    schedule = schedule or AttributeSchedule.always("all")
    numeric = _numeric_fields(schema, field_ranges)
    if not numeric:
        raise ValueError(f"no numeric fields with known ranges for source {source!r}")
    non_nested = [path for path in numeric if not schema.is_nested_path(path)]

    queries = []
    for index in range(num_queries):
        pool = numeric if schedule.pool_for(index) == "all" else (non_nested or numeric)
        predicate_field = rng.choice(pool)
        low, high = _random_range(rng, field_ranges[predicate_field], selectivity)
        predicate = RangePredicate(predicate_field, low, high)
        agg_count = rng.randint(*aggregates_per_query)
        agg_fields = [rng.choice(pool) for _ in range(agg_count)]
        aggregates = [
            AggregateSpec(rng.choice(["sum", "avg", "min", "max"]), FieldRef(field))
            for field in agg_fields
        ]
        queries.append(
            Query.select_aggregate(source, predicate, aggregates, label=f"{source}-spa-{index}")
        )
    return queries


# ---------------------------------------------------------------------------
# TPC-H select-project-join workload (Sections 6.2 / 6.3)
# ---------------------------------------------------------------------------
#: the TPC-H join graph restricted to the five tables the paper uses
_TPCH_JOIN_EDGES = [
    ("customer", "c_custkey", "orders", "o_custkey"),
    ("orders", "o_orderkey", "lineitem", "l_orderkey"),
    ("lineitem", "l_partkey", "part", "p_partkey"),
    ("lineitem", "l_partkey", "partsupp", "ps_partkey"),
    ("part", "p_partkey", "partsupp", "ps_partkey"),
]


def spj_tpch_workload(
    num_queries: int = 100,
    seed: int = 13,
    table_probability: float = 0.5,
    selectivity: tuple[float, float] = (0.1, 0.9),
    source_names: dict[str, str] | None = None,
) -> list[Query]:
    """Select-project-join queries over the TPC-H tables.

    Each table participates with probability ``table_probability``; the chosen
    tables are restricted to a connected component of the TPC-H join graph, one
    aggregate attribute is drawn per table, and each table receives a range
    predicate of random selectivity on one of its numeric columns.

    ``source_names`` remaps logical table names to registered source names
    (e.g. ``{"lineitem": "lineitem_json"}`` for the heterogeneous eviction
    workload of Section 6.3).
    """
    rng = make_rng(seed)
    source_names = source_names or {}
    tables = list(TPCH_SCHEMAS)

    queries = []
    for index in range(num_queries):
        chosen = [t for t in tables if rng.random() < table_probability]
        if not chosen:
            chosen = [rng.choice(tables)]
        chosen = _largest_connected_subset(chosen)

        table_refs = []
        aggregates = []
        for table in chosen:
            ranges = TPCH_FIELD_RANGES[table]
            fields = list(ranges)
            predicate_field = rng.choice(fields)
            low, high = _random_range(rng, ranges[predicate_field], selectivity)
            table_refs.append(
                TableRef(source_names.get(table, table), RangePredicate(predicate_field, low, high))
            )
            agg_field = rng.choice(fields)
            aggregates.append(
                AggregateSpec(rng.choice(["sum", "avg", "min", "max"]), FieldRef(agg_field))
            )

        joins = []
        joined = {chosen[0]}
        while len(joined) < len(chosen):
            for left, left_key, right, right_key in _TPCH_JOIN_EDGES:
                if left in joined and right in set(chosen) - joined:
                    joins.append(
                        JoinSpec(
                            source_names.get(left, left),
                            left_key,
                            source_names.get(right, right),
                            right_key,
                        )
                    )
                    joined.add(right)
                elif right in joined and left in set(chosen) - joined:
                    joins.append(
                        JoinSpec(
                            source_names.get(right, right),
                            right_key,
                            source_names.get(left, left),
                            left_key,
                        )
                    )
                    joined.add(left)

        queries.append(
            Query(tables=table_refs, aggregates=aggregates, joins=joins, label=f"tpch-spj-{index}")
        )
    return queries


def _largest_connected_subset(chosen: Sequence[str]) -> list[str]:
    """Restrict the chosen tables to one connected component of the join graph."""
    chosen_set = set(chosen)
    adjacency: dict[str, set[str]] = {table: set() for table in chosen_set}
    for left, _, right, _ in _TPCH_JOIN_EDGES:
        if left in chosen_set and right in chosen_set:
            adjacency[left].add(right)
            adjacency[right].add(left)
    best: list[str] = []
    seen: set[str] = set()
    for start in chosen:
        if start in seen:
            continue
        component = []
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            component.append(node)
            stack.extend(adjacency[node] - seen)
        if len(component) > len(best):
            best = component
    # Preserve the original (deterministic) order of the chosen tables.
    return [table for table in chosen if table in set(best)]


# ---------------------------------------------------------------------------
# Symantec-style mixed workload (Figures 10, 11a, 11c, 15a)
# ---------------------------------------------------------------------------
def symantec_mixed_workload(
    num_queries: int,
    nested_fraction: float = 0.1,
    json_fraction: float = 0.9,
    join_fraction: float = 0.1,
    seed: int = 17,
    json_source: str = "spam_json",
    csv_source: str = "spam_csv",
) -> list[Query]:
    """SPA/SPJ queries over the Symantec-style JSON and CSV files.

    ``nested_fraction`` of the JSON queries access nested attributes;
    ``json_fraction`` of all queries touch the JSON file (the rest query the
    CSV); ``join_fraction`` of all queries join the two files on ``email_id``.
    """
    rng = make_rng(seed)
    json_ranges = SYMANTEC_FIELD_RANGES["spam_json"]
    csv_ranges = SYMANTEC_FIELD_RANGES["spam_csv"]
    json_numeric = _numeric_fields(SYMANTEC_JSON_SCHEMA, json_ranges)
    json_non_nested = [p for p in json_numeric if not SYMANTEC_JSON_SCHEMA.is_nested_path(p)]
    json_nested = [p for p in json_numeric if SYMANTEC_JSON_SCHEMA.is_nested_path(p)]
    csv_numeric = _numeric_fields(SYMANTEC_CSV_SCHEMA, csv_ranges)

    def json_pool(use_nested: bool) -> list[str]:
        if use_nested and json_nested:
            return json_nested + json_non_nested
        return json_non_nested

    queries = []
    for index in range(num_queries):
        is_join = rng.random() < join_fraction
        use_json = rng.random() < json_fraction
        use_nested = rng.random() < nested_fraction

        if is_join:
            json_pred_field = rng.choice(json_pool(use_nested))
            json_low, json_high = _random_range(rng, json_ranges[json_pred_field], (0.2, 0.9))
            csv_pred_field = rng.choice([f for f in csv_numeric if f != "email_id"])
            csv_low, csv_high = _random_range(rng, csv_ranges[csv_pred_field], (0.2, 0.9))
            agg_field = rng.choice(json_pool(use_nested))
            queries.append(
                Query(
                    tables=[
                        TableRef(json_source, RangePredicate(json_pred_field, json_low, json_high)),
                        TableRef(csv_source, RangePredicate(csv_pred_field, csv_low, csv_high)),
                    ],
                    joins=[JoinSpec(json_source, "email_id", csv_source, "email_id")],
                    aggregates=[
                        AggregateSpec("avg", FieldRef(agg_field)),
                        AggregateSpec("count", FieldRef("email_id")),
                    ],
                    label=f"symantec-join-{index}",
                )
            )
            continue

        if use_json:
            pool = json_pool(use_nested)
            ranges = json_ranges
            source = json_source
        else:
            pool = csv_numeric
            ranges = csv_ranges
            source = csv_source
        predicate_field = rng.choice(pool)
        low, high = _random_range(rng, ranges[predicate_field], (0.1, 0.9))
        agg_fields = [rng.choice(pool) for _ in range(rng.randint(1, 3))]
        aggregates = [
            AggregateSpec(rng.choice(["sum", "avg", "min", "max"]), FieldRef(f)) for f in agg_fields
        ]
        queries.append(
            Query.select_aggregate(
                source,
                RangePredicate(predicate_field, low, high),
                aggregates,
                label=f"symantec-spa-{index}",
            )
        )
    return queries


# ---------------------------------------------------------------------------
# Yelp-style workload (Figures 11b, 15b)
# ---------------------------------------------------------------------------
def yelp_spa_workload(
    num_queries: int,
    nested_fraction: float = 0.5,
    seed: int = 19,
    source_names: dict[str, str] | None = None,
) -> list[Query]:
    """SPA queries over the Yelp-style business / user / review JSON files."""
    rng = make_rng(seed)
    source_names = source_names or {}
    pools: dict[str, dict[str, list[str]]] = {}
    for name, schema in YELP_SCHEMAS.items():
        numeric = _numeric_fields(schema, YELP_FIELD_RANGES[name])
        pools[name] = {
            "nested": [p for p in numeric if schema.is_nested_path(p)],
            "non_nested": [p for p in numeric if not schema.is_nested_path(p)],
        }

    queries = []
    for index in range(num_queries):
        dataset = rng.choice(list(YELP_SCHEMAS))
        use_nested = rng.random() < nested_fraction and pools[dataset]["nested"]
        pool = (
            pools[dataset]["nested"] + pools[dataset]["non_nested"]
            if use_nested
            else pools[dataset]["non_nested"]
        )
        ranges = YELP_FIELD_RANGES[dataset]
        predicate_field = rng.choice(pool)
        low, high = _random_range(rng, ranges[predicate_field], (0.1, 0.9))
        agg_fields = [rng.choice(pool) for _ in range(rng.randint(1, 2))]
        aggregates = [
            AggregateSpec(rng.choice(["sum", "avg", "min", "max"]), FieldRef(f)) for f in agg_fields
        ]
        queries.append(
            Query.select_aggregate(
                source_names.get(dataset, dataset),
                RangePredicate(predicate_field, low, high),
                aggregates,
                label=f"yelp-{dataset}-{index}",
            )
        )
    return queries


def conjunctive_predicate(fields_and_ranges: dict[str, tuple[float, float]]):
    """Helper: build a conjunction of range predicates (used in tests/examples)."""
    predicates = [RangePredicate(field, low, high) for field, (low, high) in fields_and_ranges.items()]
    if len(predicates) == 1:
        return predicates[0]
    return And(predicates)
