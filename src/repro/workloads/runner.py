"""Workload execution harness.

Runs a sequence of queries against a :class:`~repro.engine.session.QueryEngine`
and collects the per-query and cumulative measurements every figure of the
evaluation is built from (execution time, caching overhead, hit counts, layout
switches).  It also knows how to feed the clairvoyant eviction policies their
future access schedule, and how to pre-populate caches when an experiment wants
to isolate cache *performance* from cache *construction* (Figures 1 and 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cache_entry import CacheKey
from repro.core.policies import OfflinePolicy
from repro.engine.query import Query
from repro.engine.session import QueryEngine


@dataclass
class WorkloadResult:
    """Per-query and aggregate measurements of one workload run."""

    label: str
    per_query: list[dict] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.per_query)

    @property
    def total_time(self) -> float:
        return sum(entry["total_time"] for entry in self.per_query)

    @property
    def cumulative_times(self) -> list[float]:
        """Cumulative execution time after each query (the y-axis of Figs 10/13/15)."""
        running = 0.0
        series = []
        for entry in self.per_query:
            running += entry["total_time"]
            series.append(running)
        return series

    @property
    def execution_times(self) -> list[float]:
        return [entry["total_time"] for entry in self.per_query]

    @property
    def caching_overheads(self) -> list[float]:
        return [entry["caching_overhead"] for entry in self.per_query]

    @property
    def cache_hits(self) -> int:
        return sum(entry["exact_hits"] + entry["subsumption_hits"] for entry in self.per_query)

    def mean_execution_time(self) -> float:
        return self.total_time / self.query_count if self.per_query else 0.0

    def mean_caching_overhead(self) -> float:
        if not self.per_query:
            return 0.0
        return sum(self.caching_overheads) / self.query_count

    def tail_total_time(self, last_n: int) -> float:
        """Total time of the last ``last_n`` queries (Figure 15's second half)."""
        return sum(entry["total_time"] for entry in self.per_query[-last_n:])

    def summary(self) -> dict:
        return {
            "label": self.label,
            "queries": self.query_count,
            "total_time": self.total_time,
            "mean_time": self.mean_execution_time(),
            "mean_caching_overhead": self.mean_caching_overhead(),
            "cache_hits": self.cache_hits,
        }


class WorkloadRunner:
    """Executes query workloads and records their measurements."""

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine

    def run(self, queries: list[Query], label: str = "workload") -> WorkloadResult:
        """Execute the queries in order and collect per-query measurements."""
        self._prepare_offline_policy(queries)
        result = WorkloadResult(label=label)
        for index, query in enumerate(queries):
            report = self.engine.execute(query)
            result.per_query.append(
                {
                    "index": index,
                    "label": query.label,
                    "total_time": report.total_time,
                    "operator_time": report.operator_time,
                    "caching_time": report.caching_time,
                    "cache_scan_time": report.cache_scan_time,
                    "lookup_time": report.lookup_time,
                    "caching_overhead": report.caching_overhead,
                    "exact_hits": report.exact_hits,
                    "subsumption_hits": report.subsumption_hits,
                    "misses": report.misses,
                    "layout_switches": report.layout_switches,
                    "rows_returned": report.rows_returned,
                }
            )
        return result

    def warm_caches(self, queries: list[Query]) -> None:
        """Execute queries once to populate caches, discarding the measurements.

        Figures 1 and 9 pre-populate the caches so the measured curves isolate
        cache-scan performance from cache construction.
        """
        for query in queries:
            self.engine.execute(query)

    # ------------------------------------------------------------------
    def _prepare_offline_policy(self, queries: list[Query]) -> None:
        """Give clairvoyant policies the access schedule of the workload."""
        policy = self.engine.recache.policy
        if not isinstance(policy, OfflinePolicy):
            return
        base_sequence = self.engine.recache.sequence
        accesses: dict[str, list[int]] = {}
        for offset, query in enumerate(queries):
            sequence = base_sequence + offset + 1
            for table in query.tables:
                key = CacheKey.for_select(table.source, table.predicate).as_string()
                accesses.setdefault(key, []).append(sequence)
        policy.set_future_accesses(accesses)
