"""Workload execution harness.

Runs a sequence of queries against a :class:`~repro.engine.session.QueryEngine`
and collects the per-query and cumulative measurements every figure of the
evaluation is built from (execution time, caching overhead, hit counts, layout
switches).  It also knows how to feed the clairvoyant eviction policies their
future access schedule, and how to pre-populate caches when an experiment wants
to isolate cache *performance* from cache *construction* (Figures 1 and 9).

:class:`ConcurrentWorkloadRunner` is the multi-client variant: N closed-loop
clients, each with its own deterministic RNG stream, draw queries from a shared
pool with zipfian rank skew and issue them through an
:class:`~repro.engine.server.EngineServer` against one shared cache — either
one request at a time (:meth:`~ConcurrentWorkloadRunner.run`) or a batch per
round through the server's coalescing ``submit_batch`` path
(:meth:`~ConcurrentWorkloadRunner.run_batched`).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.cache_entry import CacheKey
from repro.core.policies import OfflinePolicy
from repro.engine.executor import QueryReport
from repro.engine.query import Query
from repro.engine.server import EngineServer, merge_reports
from repro.engine.session import QueryEngine
from repro.utils.rng import ZipfianSampler, make_rng, spawn


@dataclass
class WorkloadResult:
    """Per-query and aggregate measurements of one workload run."""

    label: str
    per_query: list[dict] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.per_query)

    @property
    def total_time(self) -> float:
        return sum(entry["total_time"] for entry in self.per_query)

    @property
    def cumulative_times(self) -> list[float]:
        """Cumulative execution time after each query (the y-axis of Figs 10/13/15)."""
        running = 0.0
        series = []
        for entry in self.per_query:
            running += entry["total_time"]
            series.append(running)
        return series

    @property
    def execution_times(self) -> list[float]:
        return [entry["total_time"] for entry in self.per_query]

    @property
    def caching_overheads(self) -> list[float]:
        return [entry["caching_overhead"] for entry in self.per_query]

    @property
    def cache_hits(self) -> int:
        return sum(entry["exact_hits"] + entry["subsumption_hits"] for entry in self.per_query)

    def mean_execution_time(self) -> float:
        return self.total_time / self.query_count if self.per_query else 0.0

    def mean_caching_overhead(self) -> float:
        if not self.per_query:
            return 0.0
        return sum(self.caching_overheads) / self.query_count

    def tail_total_time(self, last_n: int) -> float:
        """Total time of the last ``last_n`` queries (Figure 15's second half)."""
        return sum(entry["total_time"] for entry in self.per_query[-last_n:])

    def summary(self) -> dict:
        return {
            "label": self.label,
            "queries": self.query_count,
            "total_time": self.total_time,
            "mean_time": self.mean_execution_time(),
            "mean_caching_overhead": self.mean_caching_overhead(),
            "cache_hits": self.cache_hits,
        }


class WorkloadRunner:
    """Executes query workloads and records their measurements."""

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine

    def run(self, queries: list[Query], label: str = "workload") -> WorkloadResult:
        """Execute the queries in order and collect per-query measurements."""
        self._prepare_offline_policy(queries)
        result = WorkloadResult(label=label)
        for index, query in enumerate(queries):
            report = self.engine.execute(query)
            result.per_query.append(_measurement(index, query, report))
        return result

    def warm_caches(self, queries: list[Query]) -> None:
        """Execute queries once to populate caches, discarding the measurements.

        Figures 1 and 9 pre-populate the caches so the measured curves isolate
        cache-scan performance from cache construction.
        """
        for query in queries:
            self.engine.execute(query)

    # ------------------------------------------------------------------
    def _prepare_offline_policy(self, queries: list[Query]) -> None:
        """Give clairvoyant policies the access schedule of the workload.

        A sharded cache runs one policy instance per shard; every instance
        receives the full schedule (a shard's policy only ever scores the
        entries resident in its own shard, so the extra keys are inert).
        """
        policies = [
            policy
            for policy in self.engine.recache.eviction_policies()
            if isinstance(policy, OfflinePolicy)
        ]
        if not policies:
            return
        base_sequence = self.engine.recache.sequence
        accesses: dict[str, list[int]] = {}
        for offset, query in enumerate(queries):
            sequence = base_sequence + offset + 1
            for table in query.tables:
                key = CacheKey.for_select(table.source, table.predicate).as_string()
                accesses.setdefault(key, []).append(sequence)
        for policy in policies:
            policy.set_future_accesses(accesses)


def _measurement(index: int, query: Query, report: QueryReport) -> dict:
    """The per-query measurement row shared by both workload runners."""
    return {
        "index": index,
        "label": query.label,
        "total_time": report.total_time,
        "operator_time": report.operator_time,
        "caching_time": report.caching_time,
        "cache_scan_time": report.cache_scan_time,
        "lookup_time": report.lookup_time,
        "caching_overhead": report.caching_overhead,
        "exact_hits": report.exact_hits,
        "subsumption_hits": report.subsumption_hits,
        "misses": report.misses,
        "layout_switches": report.layout_switches,
        "rows_returned": report.rows_returned,
        "queue_wait_time": report.queue_wait_time,
        "queue_depth": report.queue_depth,
        "coalesced": report.coalesced,
        "coalesced_wait_time": report.coalesced_wait_time,
        "offloaded": report.offloaded,
        "retries": report.retries,
        "degraded_scans": report.degraded_scans,
        "quarantined_entries": report.quarantined_entries,
        "shed": report.shed,
        "deadline_exceeded": report.deadline_exceeded,
    }


# ---------------------------------------------------------------------------
# Multi-client driver
# ---------------------------------------------------------------------------
@dataclass
class ConcurrentWorkloadResult:
    """Measurements of one multi-client serving window."""

    label: str
    client_count: int
    wall_time: float
    per_client: list[WorkloadResult] = field(default_factory=list)
    #: merged per-query report counters across all clients
    aggregate: QueryReport | None = None

    @property
    def total_queries(self) -> int:
        return sum(result.query_count for result in self.per_client)

    @property
    def queries_per_second(self) -> float:
        return self.total_queries / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def cache_hits(self) -> int:
        return sum(result.cache_hits for result in self.per_client)

    def summary(self) -> dict:
        summary = {
            "label": self.label,
            "clients": self.client_count,
            "queries": self.total_queries,
            "wall_time": self.wall_time,
            "queries_per_second": self.queries_per_second,
            "cache_hits": self.cache_hits,
        }
        if self.aggregate is not None:
            summary["coalesced"] = self.aggregate.coalesced
            summary["queue_wait_time"] = self.aggregate.queue_wait_time
            summary["coalesced_wait_time"] = self.aggregate.coalesced_wait_time
            summary["offloaded"] = self.aggregate.offloaded
            # Deepest backlog observed *at enqueue time* — the true peak
            # (which includes each batch's own size) is the server's
            # ``peak_queue_depth``.
            summary["max_enqueue_depth"] = self.aggregate.queue_depth
        return summary


class ConcurrentWorkloadRunner:
    """Drives N closed-loop clients against an :class:`EngineServer`.

    Each client owns an independent RNG stream derived from ``seed`` and the
    client index, so a run is reproducible for a fixed (seed, clients,
    queries_per_client) regardless of thread interleaving.  Clients draw from
    the shared query pool with zipfian rank skew: the pool's order defines
    popularity, so the head of the pool becomes the hot working set — the
    cache-hit-heavy pattern a serving cache is designed for.  ``zipf_s=0``
    degenerates to uniform draws.

    ``think_time`` inserts a per-query client-side pause (models the network
    round-trip / render time of a remote client between requests).

    Every wait in the driver is bounded by ``request_timeout`` (seconds):
    the server's containment guarantees every future resolves, so an elapsed
    timeout means a stuck worker and surfaces as a ``TimeoutError`` instead
    of a silent hang of the whole run.
    """

    def __init__(
        self,
        server: EngineServer,
        clients: int = 4,
        seed: int = 33,
        request_timeout: float = 120.0,
    ) -> None:
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be > 0")
        self.server = server
        self.clients = clients
        self.seed = seed
        self.request_timeout = request_timeout

    def run(
        self,
        pool: list[Query],
        label: str = "concurrent",
        queries_per_client: int | None = None,
        zipf_s: float = 1.1,
        think_time: float = 0.0,
    ) -> ConcurrentWorkloadResult:
        if not pool:
            raise ValueError("query pool must not be empty")
        per_client = queries_per_client or max(1, len(pool) // self.clients)
        sampler = ZipfianSampler(len(pool), zipf_s)
        base_rng = make_rng(self.seed)
        client_rngs = [spawn(base_rng, f"client-{index}") for index in range(self.clients)]

        def run_client(index: int) -> tuple[WorkloadResult, list[QueryReport]]:
            rng = client_rngs[index]
            result = WorkloadResult(label=f"{label}-client{index}")
            reports: list[QueryReport] = []
            for step in range(per_client):
                query = pool[sampler.sample(rng)]
                report = self.server.execute(query, timeout=self.request_timeout)
                result.per_query.append(_measurement(step, query, report))
                reports.append(report)
                if think_time > 0.0:
                    time.sleep(think_time)
            return result, reports

        return self._drive(run_client, label, self._wait_bound(per_client, think_time))

    def run_batched(
        self,
        pool: list[Query],
        label: str = "batched",
        queries_per_client: int | None = None,
        batch_size: int = 16,
        zipf_s: float = 1.1,
        think_time: float = 0.0,
    ) -> ConcurrentWorkloadResult:
        """The batched-submission variant of :meth:`run`.

        Each client draws ``batch_size`` queries per round from the same
        zipfian stream and submits them together via
        :meth:`~repro.engine.server.EngineServer.submit_batch`, waiting for
        the whole round before drawing the next.  A fixed (seed, clients,
        queries_per_client) draws exactly the same query sequence as
        :meth:`run`, so the two modes are directly comparable — the batched
        path just lets the server coalesce duplicate draws and share scans
        across overlapping ones.
        """
        if not pool:
            raise ValueError("query pool must not be empty")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        per_client = queries_per_client or max(1, len(pool) // self.clients)
        sampler = ZipfianSampler(len(pool), zipf_s)
        base_rng = make_rng(self.seed)
        client_rngs = [spawn(base_rng, f"client-{index}") for index in range(self.clients)]

        def run_client(index: int) -> tuple[WorkloadResult, list[QueryReport]]:
            rng = client_rngs[index]
            result = WorkloadResult(label=f"{label}-client{index}")
            reports: list[QueryReport] = []
            step = 0
            while step < per_client:
                round_size = min(batch_size, per_client - step)
                batch = [pool[sampler.sample(rng)] for _ in range(round_size)]
                round_reports = self.server.serve_all(batch, timeout=self.request_timeout)
                for offset, report in enumerate(round_reports):
                    result.per_query.append(_measurement(step + offset, batch[offset], report))
                    reports.append(report)
                step += round_size
                if think_time > 0.0:
                    time.sleep(think_time)
            return result, reports

        return self._drive(run_client, label, self._wait_bound(per_client, think_time))

    def _wait_bound(self, per_client: int, think_time: float) -> float:
        """Upper bound on one client's loop: every request is individually
        bounded by ``request_timeout``, plus think time and scheduling slack."""
        return per_client * (self.request_timeout + think_time) + 60.0

    def _drive(self, run_client, label: str, wait_bound: float) -> ConcurrentWorkloadResult:
        """Run one closed-loop client function per client thread and merge."""
        started = time.perf_counter()
        with ThreadPoolExecutor(
            max_workers=self.clients, thread_name_prefix="recache-client"
        ) as pool_executor:
            futures = [pool_executor.submit(run_client, index) for index in range(self.clients)]
            outcomes = [future.result(timeout=wait_bound) for future in futures]
        wall_time = time.perf_counter() - started

        per_client_results = [result for result, _ in outcomes]
        aggregate = merge_reports(
            (report for _, reports in outcomes for report in reports), label=label
        )
        return ConcurrentWorkloadResult(
            label=label,
            client_count=self.clients,
            wall_time=wall_time,
            per_client=per_client_results,
            aggregate=aggregate,
        )
