"""Synthetic stand-in for the Yelp open dataset (business / user / review).

The paper uses the Yelp dataset challenge files (144K businesses, 1M users, 4M
reviews; 4.8 GB of JSON).  The generators below reproduce the structural
property that drives Figure 15b — on average *larger* nested collections per
record than the Symantec data (friends lists, check-in histories), which makes
flattened relational caches disproportionately expensive — at configurable
small scale.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine.types import FLOAT, INT, STRING, Field, ListType, RecordType
from repro.formats.json_plugin import write_json_lines
from repro.utils.rng import make_rng, spawn

BUSINESS_SCHEMA = RecordType(
    [
        Field("business_id", INT),
        Field("stars", FLOAT),
        Field("review_count", INT),
        Field("city_id", INT),
        Field("is_open", INT),
        Field("categories", ListType(INT)),
        Field(
            "checkins",
            ListType(
                RecordType(
                    [
                        Field("day", INT),
                        Field("hour", INT),
                        Field("count", INT),
                    ]
                )
            ),
        ),
    ]
)

USER_SCHEMA = RecordType(
    [
        Field("user_id", INT),
        Field("review_count", INT),
        Field("average_stars", FLOAT),
        Field("useful", INT),
        Field("fans", INT),
        Field("friends", ListType(INT)),
        Field("elite_years", ListType(INT)),
    ]
)

REVIEW_SCHEMA = RecordType(
    [
        Field("review_id", INT),
        Field("business_id", INT),
        Field("user_id", INT),
        Field("stars", INT),
        Field("text_length", INT),
        Field("date", INT),
        Field(
            "votes",
            RecordType(
                [
                    Field("useful", INT),
                    Field("funny", INT),
                    Field("cool", INT),
                ]
            ),
        ),
    ]
)

YELP_SCHEMAS: dict[str, RecordType] = {
    "business": BUSINESS_SCHEMA,
    "user": USER_SCHEMA,
    "review": REVIEW_SCHEMA,
}

YELP_FIELD_RANGES: dict[str, dict[str, tuple[float, float]]] = {
    "business": {
        "stars": (1.0, 5.0),
        "review_count": (0.0, 4000.0),
        "city_id": (0.0, 400.0),
        "is_open": (0.0, 1.0),
        "categories": (0.0, 1200.0),
        "checkins.day": (0.0, 6.0),
        "checkins.hour": (0.0, 23.0),
        "checkins.count": (0.0, 200.0),
    },
    "user": {
        "review_count": (0.0, 5000.0),
        "average_stars": (1.0, 5.0),
        "useful": (0.0, 10000.0),
        "fans": (0.0, 2000.0),
        "friends": (0.0, 1_000_000.0),
        "elite_years": (2005.0, 2017.0),
    },
    "review": {
        "stars": (1.0, 5.0),
        "text_length": (0.0, 5000.0),
        "date": (12000.0, 17500.0),
        "votes.useful": (0.0, 300.0),
        "votes.funny": (0.0, 300.0),
        "votes.cool": (0.0, 300.0),
    },
}

#: proportion of records per file at the real dataset's relative sizes
_RELATIVE_SIZES = {"business": 0.03, "user": 0.20, "review": 0.77}


def business_records(count: int, seed: int = 31) -> list[dict]:
    rng = spawn(make_rng(seed), "business")
    records = []
    for business_id in range(1, count + 1):
        categories = sorted({rng.randint(0, 1200) for _ in range(rng.randint(1, 8))})
        checkins = [
            {"day": rng.randint(0, 6), "hour": rng.randint(0, 23), "count": rng.randint(1, 200)}
            for _ in range(rng.randint(0, 24))
        ]
        records.append(
            {
                "business_id": business_id,
                "stars": round(rng.uniform(1.0, 5.0) * 2) / 2.0,
                "review_count": rng.randint(0, 4000),
                "city_id": rng.randint(0, 400),
                "is_open": rng.randint(0, 1),
                "categories": categories,
                "checkins": checkins,
            }
        )
    return records


def user_records(count: int, seed: int = 31) -> list[dict]:
    rng = spawn(make_rng(seed), "user")
    records = []
    for user_id in range(1, count + 1):
        friends = [rng.randint(1, 1_000_000) for _ in range(rng.randint(0, 40))]
        elite = sorted({rng.randint(2005, 2017) for _ in range(rng.randint(0, 5))})
        records.append(
            {
                "user_id": user_id,
                "review_count": rng.randint(0, 5000),
                "average_stars": round(rng.uniform(1.0, 5.0), 2),
                "useful": rng.randint(0, 10000),
                "fans": rng.randint(0, 2000),
                "friends": friends,
                "elite_years": elite,
            }
        )
    return records


def review_records(count: int, num_businesses: int, num_users: int, seed: int = 31) -> list[dict]:
    rng = spawn(make_rng(seed), "review")
    records = []
    for review_id in range(1, count + 1):
        records.append(
            {
                "review_id": review_id,
                "business_id": rng.randint(1, max(1, num_businesses)),
                "user_id": rng.randint(1, max(1, num_users)),
                "stars": rng.randint(1, 5),
                "text_length": rng.randint(0, 5000),
                "date": rng.randint(12000, 17500),
                "votes": {
                    "useful": rng.randint(0, 300),
                    "funny": rng.randint(0, 300),
                    "cool": rng.randint(0, 300),
                },
            }
        )
    return records


def write_yelp_dataset(
    directory: str | Path, total_records: int = 3000, seed: int = 31
) -> dict[str, Path]:
    """Write the three Yelp-style JSON files, split at the dataset's real ratios.

    Returns ``{"business": ..., "user": ..., "review": ...}`` paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts = {
        name: max(20, int(total_records * fraction)) for name, fraction in _RELATIVE_SIZES.items()
    }
    businesses = business_records(counts["business"], seed=seed)
    users = user_records(counts["user"], seed=seed)
    reviews = review_records(counts["review"], counts["business"], counts["user"], seed=seed)
    paths = {
        "business": directory / "business.json",
        "user": directory / "user.json",
        "review": directory / "review.json",
    }
    write_json_lines(paths["business"], businesses)
    write_json_lines(paths["user"], users)
    write_json_lines(paths["review"], reviews)
    return paths
