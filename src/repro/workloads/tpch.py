"""TPC-H-style data generation at laptop scale.

The paper's evaluation uses TPC-H SF-10 CSV files (60M lineitems) plus JSON
conversions of ``lineitem`` and ``orders`` and a nested ``orderLineitems`` file
that maps each order to the list of its lineitems.  The generator here produces
the same schemas, key relationships and value distributions deterministically
from a seed, at whatever scale fits the test or benchmark at hand (the default
``scale_factor=0.001`` yields 6 000 lineitems).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.engine.types import FLOAT, INT, STRING, Field, ListType, RecordType
from repro.formats.csv_plugin import write_csv
from repro.formats.json_plugin import write_json_lines
from repro.utils.rng import make_rng, spawn

# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------
LINEITEM_SCHEMA = RecordType(
    [
        Field("l_orderkey", INT),
        Field("l_partkey", INT),
        Field("l_suppkey", INT),
        Field("l_linenumber", INT),
        Field("l_quantity", FLOAT),
        Field("l_extendedprice", FLOAT),
        Field("l_discount", FLOAT),
        Field("l_tax", FLOAT),
        Field("l_shipdate", INT),
        Field("l_commitdate", INT),
        Field("l_receiptdate", INT),
        Field("l_returnflag", STRING),
    ]
)

ORDERS_SCHEMA = RecordType(
    [
        Field("o_orderkey", INT),
        Field("o_custkey", INT),
        Field("o_totalprice", FLOAT),
        Field("o_orderdate", INT),
        Field("o_shippriority", INT),
        Field("o_orderstatus", STRING),
    ]
)

CUSTOMER_SCHEMA = RecordType(
    [
        Field("c_custkey", INT),
        Field("c_nationkey", INT),
        Field("c_acctbal", FLOAT),
        Field("c_mktsegment", STRING),
    ]
)

PART_SCHEMA = RecordType(
    [
        Field("p_partkey", INT),
        Field("p_size", INT),
        Field("p_retailprice", FLOAT),
        Field("p_brand", STRING),
    ]
)

PARTSUPP_SCHEMA = RecordType(
    [
        Field("ps_partkey", INT),
        Field("ps_suppkey", INT),
        Field("ps_availqty", INT),
        Field("ps_supplycost", FLOAT),
    ]
)

TPCH_SCHEMAS: dict[str, RecordType] = {
    "lineitem": LINEITEM_SCHEMA,
    "orders": ORDERS_SCHEMA,
    "customer": CUSTOMER_SCHEMA,
    "part": PART_SCHEMA,
    "partsupp": PARTSUPP_SCHEMA,
}

#: the nested orderLineitems schema of Section 4.1: one record per order with a
#: list of its lineitems
ORDER_LINEITEMS_SCHEMA = RecordType(
    [
        Field("o_orderkey", INT),
        Field("o_custkey", INT),
        Field("o_totalprice", FLOAT),
        Field("o_orderdate", INT),
        Field("o_shippriority", INT),
        Field(
            "lineitems",
            ListType(
                RecordType(
                    [
                        Field("l_partkey", INT),
                        Field("l_suppkey", INT),
                        Field("l_quantity", FLOAT),
                        Field("l_extendedprice", FLOAT),
                        Field("l_discount", FLOAT),
                        Field("l_tax", FLOAT),
                        Field("l_shipdate", INT),
                    ]
                )
            ),
        ),
    ]
)

#: numeric value ranges of every TPC-H column, used by the workload generators
#: to draw range predicates with controlled selectivity
TPCH_FIELD_RANGES: dict[str, dict[str, tuple[float, float]]] = {
    "lineitem": {
        "l_quantity": (1.0, 50.0),
        "l_extendedprice": (900.0, 105000.0),
        "l_discount": (0.0, 0.1),
        "l_tax": (0.0, 0.08),
        "l_shipdate": (8036, 10591),
        "l_commitdate": (8006, 10621),
        "l_receiptdate": (8037, 10621),
    },
    "orders": {
        "o_totalprice": (850.0, 560000.0),
        "o_orderdate": (8036, 10591),
        "o_shippriority": (0.0, 4.0),
    },
    "customer": {
        "c_nationkey": (0.0, 24.0),
        "c_acctbal": (-999.0, 9999.0),
    },
    "part": {
        "p_size": (1.0, 50.0),
        "p_retailprice": (900.0, 2200.0),
    },
    "partsupp": {
        "ps_availqty": (1.0, 9999.0),
        "ps_supplycost": (1.0, 1000.0),
    },
    "orderLineitems": {
        "o_totalprice": (850.0, 560000.0),
        "o_orderdate": (8036, 10591),
        "o_shippriority": (0.0, 4.0),
        "lineitems.l_quantity": (1.0, 50.0),
        "lineitems.l_extendedprice": (900.0, 105000.0),
        "lineitems.l_discount": (0.0, 0.1),
        "lineitems.l_tax": (0.0, 0.08),
        "lineitems.l_shipdate": (8036, 10591),
    },
}

_RETURN_FLAGS = ["A", "N", "R"]
_ORDER_STATUS = ["F", "O", "P"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]

#: official TPC-H cardinalities at scale factor 1
_BASE_CARDINALITIES = {
    "lineitem": 6_000_000,
    "orders": 1_500_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
}


class TPCHGenerator:
    """Deterministic TPC-H-style row generator."""

    def __init__(self, scale_factor: float = 0.001, seed: int = 42) -> None:
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = scale_factor
        self.seed = seed
        self._rng = make_rng(seed)

    # -- cardinalities --------------------------------------------------
    def cardinality(self, table: str) -> int:
        if table not in _BASE_CARDINALITIES:
            raise KeyError(f"unknown TPC-H table: {table!r}")
        return max(10, int(_BASE_CARDINALITIES[table] * self.scale_factor))

    # -- row generators --------------------------------------------------
    def orders_rows(self) -> Iterator[dict]:
        rng = spawn(make_rng(self.seed), "orders")
        customers = self.cardinality("customer")
        for orderkey in range(1, self.cardinality("orders") + 1):
            yield {
                "o_orderkey": orderkey,
                "o_custkey": rng.randint(1, customers),
                "o_totalprice": round(rng.uniform(850.0, 560000.0), 2),
                "o_orderdate": rng.randint(8036, 10591),
                "o_shippriority": rng.randint(0, 4),
                "o_orderstatus": rng.choice(_ORDER_STATUS),
            }

    def lineitem_rows(self) -> Iterator[dict]:
        rng = spawn(make_rng(self.seed), "lineitem")
        orders = self.cardinality("orders")
        parts = self.cardinality("part")
        target = self.cardinality("lineitem")
        produced = 0
        orderkey = 0
        while produced < target:
            orderkey = orderkey % orders + 1
            # On average four lineitems per order, as in TPC-H (1-7 uniform).
            for linenumber in range(1, rng.randint(1, 7) + 1):
                if produced >= target:
                    break
                quantity = float(rng.randint(1, 50))
                price = round(quantity * rng.uniform(900.0, 2100.0), 2)
                shipdate = rng.randint(8036, 10591)
                yield {
                    "l_orderkey": orderkey,
                    "l_partkey": rng.randint(1, parts),
                    "l_suppkey": rng.randint(1, max(10, parts // 4)),
                    "l_linenumber": linenumber,
                    "l_quantity": quantity,
                    "l_extendedprice": price,
                    "l_discount": round(rng.uniform(0.0, 0.1), 2),
                    "l_tax": round(rng.uniform(0.0, 0.08), 2),
                    "l_shipdate": shipdate,
                    "l_commitdate": shipdate + rng.randint(-30, 30),
                    "l_receiptdate": shipdate + rng.randint(1, 30),
                    "l_returnflag": rng.choice(_RETURN_FLAGS),
                }
                produced += 1

    def customer_rows(self) -> Iterator[dict]:
        rng = spawn(make_rng(self.seed), "customer")
        for custkey in range(1, self.cardinality("customer") + 1):
            yield {
                "c_custkey": custkey,
                "c_nationkey": rng.randint(0, 24),
                "c_acctbal": round(rng.uniform(-999.0, 9999.0), 2),
                "c_mktsegment": rng.choice(_SEGMENTS),
            }

    def part_rows(self) -> Iterator[dict]:
        rng = spawn(make_rng(self.seed), "part")
        for partkey in range(1, self.cardinality("part") + 1):
            yield {
                "p_partkey": partkey,
                "p_size": rng.randint(1, 50),
                "p_retailprice": round(900.0 + (partkey % 1000) * 1.2 + rng.uniform(0, 100), 2),
                "p_brand": rng.choice(_BRANDS),
            }

    def partsupp_rows(self) -> Iterator[dict]:
        rng = spawn(make_rng(self.seed), "partsupp")
        parts = self.cardinality("part")
        target = self.cardinality("partsupp")
        suppliers = max(10, parts // 4)
        for index in range(target):
            yield {
                "ps_partkey": index % parts + 1,
                "ps_suppkey": rng.randint(1, suppliers),
                "ps_availqty": rng.randint(1, 9999),
                "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
            }

    def rows(self, table: str) -> Iterator[dict]:
        generators = {
            "lineitem": self.lineitem_rows,
            "orders": self.orders_rows,
            "customer": self.customer_rows,
            "part": self.part_rows,
            "partsupp": self.partsupp_rows,
        }
        if table not in generators:
            raise KeyError(f"unknown TPC-H table: {table!r}")
        return generators[table]()

    # -- nested orderLineitems --------------------------------------------
    def order_lineitems_records(self) -> Iterator[dict]:
        """Nested records mapping each order to the list of its lineitems."""
        lineitems_by_order: dict[int, list[dict]] = {}
        for row in self.lineitem_rows():
            item = {
                "l_partkey": row["l_partkey"],
                "l_suppkey": row["l_suppkey"],
                "l_quantity": row["l_quantity"],
                "l_extendedprice": row["l_extendedprice"],
                "l_discount": row["l_discount"],
                "l_tax": row["l_tax"],
                "l_shipdate": row["l_shipdate"],
            }
            lineitems_by_order.setdefault(row["l_orderkey"], []).append(item)
        for order in self.orders_rows():
            yield {
                "o_orderkey": order["o_orderkey"],
                "o_custkey": order["o_custkey"],
                "o_totalprice": order["o_totalprice"],
                "o_orderdate": order["o_orderdate"],
                "o_shippriority": order["o_shippriority"],
                "lineitems": lineitems_by_order.get(order["o_orderkey"], []),
            }


# ---------------------------------------------------------------------------
# File writers
# ---------------------------------------------------------------------------
def write_tpch_dataset(
    directory: str | Path,
    scale_factor: float = 0.001,
    seed: int = 42,
    tables: list[str] | None = None,
    json_tables: list[str] | None = None,
) -> dict[str, Path]:
    """Write TPC-H tables as CSV files (and optionally JSON copies).

    Returns a mapping from source name to file path; JSON copies are named
    ``<table>_json``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    generator = TPCHGenerator(scale_factor=scale_factor, seed=seed)
    tables = tables or list(TPCH_SCHEMAS)
    json_tables = json_tables or []
    paths: dict[str, Path] = {}
    for table in tables:
        path = directory / f"{table}.csv"
        write_csv(path, TPCH_SCHEMAS[table], generator.rows(table))
        paths[table] = path
    for table in json_tables:
        path = directory / f"{table}.json"
        write_json_lines(path, generator.rows(table))
        paths[f"{table}_json"] = path
    return paths


def write_order_lineitems_json(
    directory: str | Path, scale_factor: float = 0.001, seed: int = 42
) -> Path:
    """Write the nested orderLineitems JSON file used by Section 4/6.1."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    generator = TPCHGenerator(scale_factor=scale_factor, seed=seed)
    path = directory / "orderLineitems.json"
    write_json_lines(path, generator.order_lineitems_records())
    return path
