"""ReCache: reactive caching for fast analytics over heterogeneous raw data.

A faithful, pure-Python reproduction of the system described in

    Tahir Azim, Manos Karpathiotakis and Anastasia Ailamaki.
    "ReCache: Reactive Caching for Fast Analytics over Heterogeneous Data."
    PVLDB 11(3), 2017.

The public API is re-exported here:

* :class:`~repro.engine.session.QueryEngine` — register raw CSV/JSON files and
  execute select-project-join/aggregate queries with reactive caching.
* :class:`~repro.engine.query.Query`, :class:`~repro.engine.query.TableRef`,
  :class:`~repro.engine.query.JoinSpec` — declarative query specifications.
* expression constructors (:class:`~repro.engine.expressions.RangePredicate`,
  :class:`~repro.engine.expressions.AggregateSpec`, ...).
* :class:`~repro.core.config.ReCacheConfig` and
  :class:`~repro.core.cache_manager.ReCache` — the cache manager itself, usable
  standalone.
"""

from repro.core.cache_manager import ReCache
from repro.core.config import ReCacheConfig
from repro.core.sharded_cache import ShardedReCache
from repro.engine.batch import RecordBatch
from repro.engine.executor import QueryReport
from repro.engine.server import EngineServer, merge_reports
from repro.engine.expressions import (
    AggregateSpec,
    And,
    Comparison,
    FieldRef,
    Literal,
    Not,
    Or,
    RangePredicate,
)
from repro.engine.query import JoinSpec, Query, TableRef
from repro.engine.session import QueryEngine
from repro.engine.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    ColumnarResult,
    Field,
    ListType,
    RecordType,
)

__version__ = "1.0.0"

__all__ = [
    "ReCache",
    "ShardedReCache",
    "ReCacheConfig",
    "QueryEngine",
    "EngineServer",
    "QueryReport",
    "RecordBatch",
    "ColumnarResult",
    "merge_reports",
    "Query",
    "TableRef",
    "JoinSpec",
    "AggregateSpec",
    "And",
    "Comparison",
    "FieldRef",
    "Literal",
    "Not",
    "Or",
    "RangePredicate",
    "BOOL",
    "FLOAT",
    "INT",
    "STRING",
    "Field",
    "ListType",
    "RecordType",
    "__version__",
]
