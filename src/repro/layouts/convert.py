"""Building cache layouts and converting a cached item between layouts.

Layout conversion is what ReCache performs when the layout selector decides a
cached item should switch representation (Section 4.2).  Conversion goes
through the flattened-row or nested-record form, and its wall-clock time is the
transformation cost ``T`` that the cost model bounds with equation (3).
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.engine.types import RecordType, flatten_record
from repro.layouts.assembly import repetition_group
from repro.layouts.base import CacheLayout
from repro.layouts.columnar import ColumnarLayout
from repro.layouts.parquet import ParquetLayout
from repro.layouts.row import RowLayout

#: canonical names of the supported layouts
LAYOUT_NAMES = ("row", "columnar", "parquet")


def build_layout(  # rowwise-fallback: layout builds are record-granular by definition (cold-path caching work)
    layout_name: str,
    schema: RecordType,
    fields: Sequence[str],
    rows: Sequence[dict] | None = None,
    records: Sequence[dict] | None = None,
    record_row_counts: Sequence[int] | None = None,
) -> CacheLayout:
    """Build a layout from flattened rows and/or nested records.

    Callers provide whichever representation they already have; the function
    derives the other one when needed (flattening nested records for the
    relational layouts, or regrouping rows into records for Parquet).
    """
    if layout_name not in LAYOUT_NAMES:
        raise ValueError(f"unknown layout: {layout_name!r} (expected one of {LAYOUT_NAMES})")

    if layout_name == "parquet":
        if records is None:
            if rows is None:
                raise ValueError("parquet layout needs rows or records")
            records = unflatten_rows(rows, schema, fields, record_row_counts)
        return ParquetLayout.from_records(records, schema, fields)

    if rows is None:
        if records is None:
            raise ValueError(f"{layout_name} layout needs rows or records")
        rows, record_row_counts = flatten_records(records, schema, fields)
    if layout_name == "columnar":
        return ColumnarLayout.from_rows(rows, schema, fields, record_row_counts)
    return RowLayout.from_rows(rows, schema, fields, record_row_counts)


def convert_layout(  # rowwise-fallback: layout conversion rebuilds the cache record by record (cold-path, off the scan loop)
    layout: CacheLayout, target_name: str, schema: RecordType | None = None
) -> tuple[CacheLayout, float]:
    """Convert a cached item to ``target_name``; returns ``(layout, seconds)``."""
    if target_name not in LAYOUT_NAMES:
        raise ValueError(f"unknown layout: {target_name!r} (expected one of {LAYOUT_NAMES})")
    schema = schema or layout.schema
    started = time.perf_counter()
    if target_name == layout.layout_name:
        return layout, 0.0

    if isinstance(layout, ParquetLayout):
        records = list(layout.scan_records())
        rows, record_row_counts = flatten_records(records, schema, layout.fields)
        converted = build_layout(
            target_name,
            schema,
            layout.fields,
            rows=rows,
            record_row_counts=record_row_counts,
        )
    else:
        rows = list(layout.rows())
        record_row_counts = getattr(layout, "record_row_counts", None)
        converted = build_layout(
            target_name,
            schema,
            layout.fields,
            rows=rows,
            record_row_counts=record_row_counts,
        )
    return converted, time.perf_counter() - started


def flatten_records(
    records: Sequence[dict], schema: RecordType, fields: Sequence[str]
) -> tuple[list[dict], list[int]]:
    """Flatten nested records into rows restricted to ``fields``.

    Returns the rows and the per-record row counts (needed to regroup the rows
    back into records if the item later converts to the Parquet layout).
    """
    wanted = set(fields)
    rows: list[dict] = []
    counts: list[int] = []
    for record in records:
        flattened = flatten_record(record, schema)
        counts.append(len(flattened))
        for row in flattened:
            rows.append({k: row.get(k) for k in wanted})
    return rows, counts


def unflatten_rows(
    rows: Sequence[dict],
    schema: RecordType,
    fields: Sequence[str],
    record_row_counts: Sequence[int] | None = None,
) -> list[dict]:
    """Regroup flattened rows into nested records.

    When ``record_row_counts`` is unknown (the rows came from flat relational
    data), each row becomes its own record.  Supports one level of repeated
    nesting, which covers every dataset in the paper's evaluation.
    """
    if record_row_counts is None:
        record_row_counts = [1] * len(rows)
    if sum(record_row_counts) != len(rows):
        raise ValueError(
            f"record_row_counts sums to {sum(record_row_counts)} but there are {len(rows)} rows"
        )

    flat_fields = [f for f in fields if not schema.is_nested_path(f)]
    nested_fields = [f for f in fields if schema.is_nested_path(f)]
    groups: dict[str, list[str]] = {}
    for field in nested_fields:
        prefix = repetition_group(schema, field) or field
        groups.setdefault(prefix, []).append(field)

    records: list[dict] = []
    cursor = 0
    for count in record_row_counts:
        chunk = rows[cursor : cursor + count]
        cursor += count
        record: dict = {}
        first = chunk[0] if chunk else {}
        for field in flat_fields:
            _set_path(record, field, first.get(field))
        for prefix, group_fields in groups.items():
            elements = _rebuild_elements(chunk, prefix, group_fields)
            _set_path(record, prefix, elements)
        records.append(record)
    return records


def _rebuild_elements(chunk: Sequence[dict], prefix: str, group_fields: Sequence[str]) -> list:
    list_of_atoms = list(group_fields) == [prefix]
    # A single row whose nested values are all None represents an empty list.
    if len(chunk) == 1 and all(chunk[0].get(f) is None for f in group_fields):
        return []
    elements: list = []
    for row in chunk:
        if list_of_atoms:
            elements.append(row.get(prefix))
            continue
        element: dict = {}
        for field in group_fields:
            suffix = field[len(prefix) + 1 :]
            _set_path(element, suffix, row.get(field))
        elements.append(element)
    return elements


def _set_path(target: dict, path: str, value) -> None:
    parts = path.split(".")
    current = target
    for part in parts[:-1]:
        current = current.setdefault(part, {})
    current[parts[-1]] = value
