"""Parquet/Dremel-style nested columnar cache layout.

The default layout for caches of nested data (Section 4.2): it is cheap to
*build* (no duplication of parent attributes, hence far fewer memory writes —
Figure 6) and cheap to *scan* when only non-nested attributes are requested
(parent columns are short — Figure 1, second half), but pays a per-value
level-interpretation cost when nested attributes must be reassembled into
rows (Figures 1 and 5).
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.engine.batch import RecordBatch, numeric_column_array
from repro.engine.types import RecordType
from repro.faults import runtime as faults
from repro.layouts.assembly import (
    assemble_columns,
    assemble_records,
    assemble_rows,
    repetition_group,
)
from repro.layouts.base import CacheLayout, estimate_sequence_bytes
from repro.layouts.striping import StripedColumn, prune_schema, stripe_records


class ParquetLayout(CacheLayout):
    """Striped storage of nested records with FSM-based row assembly."""

    layout_name = "parquet"

    def __init__(
        self,
        schema: RecordType,
        fields: Sequence[str],
        columns: dict[str, StripedColumn],
        record_count: int,
    ) -> None:
        super().__init__(schema, fields)
        self._columns = columns
        self._record_count = record_count
        self._nbytes = sum(
            estimate_sequence_bytes(col.values)
            # one byte each for the repetition and definition levels
            + 2 * col.entry_count
            for col in columns.values()
        )
        self._flattened_rows = self._compute_flattened_rows()
        #: lazily built float64 views of *non-nested* columns (one entry per
        #: record), enabling vectorized range filters on parent attributes
        self._numeric_arrays: dict[str, np.ndarray | None] = {}
        #: lazily built object-dtype views of flat columns, enabling vectorized
        #: gathers (NumPy fancy indexing) on the range-filter fast path
        self._object_arrays: dict[str, np.ndarray] = {}
        #: cached single-repetition-group entry plans keyed by the frozenset of
        #: nested paths involved (None = those paths need full assembly)
        self._entry_plans: dict[frozenset, tuple | None] = {}

    @classmethod
    def from_records(
        cls,
        records: Sequence[dict],
        schema: RecordType,
        fields: Sequence[str],
    ) -> "ParquetLayout":
        """Stripe nested records into columns for the requested leaf paths."""
        columns = stripe_records(records, schema, fields)
        return cls(schema, list(fields), columns, len(records))

    # -- CacheLayout API ------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def flattened_row_count(self) -> int:
        return self._flattened_rows

    @property
    def record_count(self) -> int:
        return self._record_count

    def columns(self) -> dict[str, StripedColumn]:
        """Direct access to the striped columns (used by conversion/tests)."""
        return self._columns

    def scan(
        self,
        fields: Sequence[str] | None = None,
        predicate: Callable[[dict], bool] | None = None,
    ) -> Iterator[dict]:
        """Yield flattened rows for ``fields``.

        When every requested field is non-nested, the scan walks only the
        short parent-level columns (one entry per record).  Otherwise it runs
        the full level-interpreting assembly, which is the computationally
        expensive path the layout selector measures as ``C``.
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        missing = [f for f in wanted if f not in self._columns]
        if missing:
            raise KeyError(f"columns not cached: {missing}")
        injector = faults.injector_for("scan.layout", self.layout_name)
        if wanted and all(not self._columns[f].is_nested for f in wanted):
            for row in self._scan_flat(wanted, predicate):
                if injector is not None:
                    injector()
                yield row
            return
        for row in assemble_rows(self._columns, self.schema, wanted):
            if injector is not None:
                injector()
            if predicate is None or predicate(row):
                yield row

    def scan_records(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Reconstruct (partial) nested records — used for layout conversion."""
        wanted = list(fields) if fields is not None else list(self.fields)
        return assemble_records(self._columns, self.schema, wanted)

    def rows(self) -> Iterator[dict]:
        return self.scan()

    def scan_batches(
        self,
        fields: Sequence[str] | None = None,
        batch_size: int = 1024,
        numeric_fields: Sequence[str] | None = None,
    ) -> Iterator[RecordBatch]:
        """Yield the striped columns as :class:`RecordBatch` chunks.

        Projection is pushed into the stripes: only the columns of ``fields``
        are touched, and the schema is pruned to the requested leaf paths
        before any grouping decision.  When every requested field is flat
        (non-repeated), a batch is a set of striped-value list slices — the
        stripe already holds one entry per record with ``None`` at every
        below-max definition level, so no row assembly (and no
        ``assemble_records``/``assemble_rows`` call) happens at all, and the
        layout's cached float64 views are sliced alongside for ``numeric_fields``
        so batch predicates evaluate as NumPy masks over shared arrays.

        Requests touching nested fields take the *striped view* fast path
        when the nested columns form a single aligned repetition group (the
        overwhelmingly common shape): by the striping invariant, one group's
        entries in record order *are* the flattened rows — nested columns are
        raw stripe slices, flat columns are ``np.repeat`` gathers by the
        per-record entry counts, and float64/validity views come straight
        from the cached entry arrays and ``def == max_def`` level masks, so
        no per-record Python structure is ever assembled.  Only multi-group
        (cross-product) or depth>1 misaligned requests fall back to the
        level-interpreting assembly *per column*
        (:func:`~repro.layouts.assembly.assemble_columns`).
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        missing = [f for f in wanted if f not in self._columns]
        if missing:
            raise KeyError(f"columns not cached: {missing}")
        injector = faults.injector_for("scan.layout", self.layout_name)
        flat_columns = {
            f: self._columns[f].flat_values(self._record_count) for f in wanted
        }
        if wanted and all(values is not None for values in flat_columns.values()):
            prime = set(numeric_fields or ())
            arrays = {
                f: self.numeric_array(f) if f in prime else self._numeric_arrays.get(f)
                for f in wanted
            }
            for start in range(0, self._record_count, batch_size):
                if injector is not None:
                    injector()
                stop = min(self._record_count, start + batch_size)
                batch = RecordBatch(
                    {f: values[start:stop] for f, values in flat_columns.items()},
                    row_count=stop - start,
                )
                for name, array in arrays.items():
                    if array is not None:
                        batch.set_numeric_view(name, array[start:stop])
                yield batch
            return
        plan = self._single_group_plan(wanted)
        if plan is not None and all(
            values is not None
            for f, values in flat_columns.items()
            if not self._columns[f].is_nested
        ):
            counts, offsets, _record_ids = plan
            prime = set(numeric_fields or ())
            for start in range(0, self._record_count, batch_size):
                if injector is not None:
                    injector()
                stop = min(self._record_count, start + batch_size)
                entry_start, entry_stop = int(offsets[start]), int(offsets[stop])
                batch_counts = counts[start:stop]
                columns: dict[str, list] = {}
                for f in wanted:
                    column = self._columns[f]
                    if column.is_nested:
                        columns[f] = column.values[entry_start:entry_stop]
                    else:
                        columns[f] = list(
                            np.repeat(self._object_array(f)[start:stop], batch_counts)
                        )
                batch = RecordBatch(
                    columns,
                    row_count=entry_stop - entry_start,
                    record_row_counts=batch_counts,
                )
                for f in wanted:
                    column = self._columns[f]
                    if column.is_nested:
                        numeric = column.numeric_entries() if f in prime else None
                        if numeric is not None:
                            batch.set_numeric_view(f, numeric[entry_start:entry_stop])
                        if f in prime:
                            batch.set_validity_view(
                                f, column.entry_validity()[entry_start:entry_stop]
                            )
                    elif f in prime:
                        numeric = self.numeric_array(f)
                        if numeric is not None:
                            batch.set_numeric_view(
                                f, np.repeat(numeric[start:stop], batch_counts)
                            )
                        batch.set_validity_view(
                            f,
                            np.repeat(
                                column.entry_validity()[start:stop], batch_counts
                            ),
                        )
                yield batch
            return
        pruned = prune_schema(self.schema, wanted)
        columns, row_count = assemble_columns(self._columns, pruned, wanted)
        for start in range(0, row_count, batch_size):
            if injector is not None:
                injector()
            stop = min(row_count, start + batch_size)
            yield RecordBatch(
                {f: col[start:stop] for f, col in columns.items()},
                row_count=stop - start,
            )

    # -- vectorized range filtering (non-nested columns only) ------------------
    def numeric_array(self, name: str) -> np.ndarray | None:  # returns: flat-view
        """A float64 view of a non-nested numeric column (one value per record).

        Definition levels are honored structurally: a flat stripe stores
        ``None`` at exactly the entries whose definition level is below the
        maximum (missing/NULL values), so converting the raw striped values
        turns every NULL into NaN at its own record position — never skipped,
        never shifting later records out of alignment with other columns.
        """
        if name not in self._numeric_arrays:
            column = self._columns.get(name)
            values = (
                None if column is None else column.flat_values(self._record_count)
            )
            self._numeric_arrays[name] = (
                None if values is None else numeric_column_array(values)
            )
        return self._numeric_arrays[name]

    def _object_array(self, name: str) -> np.ndarray:
        """Cached object-dtype view of a flat column, for vectorized gathers.

        Filled cell by cell (once, then cached) rather than via ``np.asarray``
        so sequence-valued cells can never trigger NumPy's shape inference.
        Only valid for columns whose flat view exists — callers gate on the
        numeric-mask check, which already requires it.
        """
        if name not in self._object_arrays:
            values = self._columns[name].flat_values(self._record_count)
            assert values is not None  # guaranteed by the mask's numeric check
            array = np.empty(len(values), dtype=object)
            for index, value in enumerate(values):
                array[index] = value
            self._object_arrays[name] = array
        return self._object_arrays[name]

    def _single_group_plan(self, involved: Sequence[str]) -> tuple | None:
        """The entry plan for the nested columns among ``involved``, or ``None``.

        A plan exists when the nested columns form exactly one repetition
        group at depth 1 and their per-record entry offsets agree — then one
        group entry corresponds to exactly one flattened row and the stripes
        can be read as row-aligned arrays with no level interpretation.
        Returns ``(counts, offsets, record_ids)``: per-record entry counts,
        entry offsets (``record_count + 1``), and the per-entry record
        ordinal used to expand/gather flat per-record arrays.
        """
        nested = sorted(
            f
            for f in set(involved)
            if f in self._columns and self._columns[f].is_nested
        )
        if not nested:
            return None
        key = frozenset(nested)
        if key not in self._entry_plans:
            plan = None
            groups = {repetition_group(self.schema, f) for f in nested}
            first = self._columns[nested[0]]
            if (
                len(groups) == 1
                and all(self._columns[f].max_repetition == 1 for f in nested)
                and all(
                    np.array_equal(
                        first.entry_offsets(), self._columns[f].entry_offsets()
                    )
                    for f in nested[1:]
                )
            ):
                counts = first.entry_counts()
                record_ids = np.repeat(
                    np.arange(self._record_count, dtype=np.int64), counts
                )
                plan = (counts, first.entry_offsets(), record_ids)
            self._entry_plans[key] = plan
        return self._entry_plans[key]

    def supports_range_filter(self, fields: Sequence[str]) -> bool:
        """True when the fields filter/project as vectorized stripe arrays.

        Non-nested numeric columns always qualify (the original contract).
        Nested numeric columns qualify when they form a single aligned
        repetition group (:meth:`_single_group_plan`): the range mask then
        evaluates at entry granularity — one entry per flattened row — which
        is exactly the row set the interpreter's assembled scan filters.
        """
        nested = [
            f
            for f in fields
            if f in self._columns and self._columns[f].is_nested
        ]
        flat_ok = all(
            self.numeric_array(field) is not None
            for field in fields
            if field not in nested
        )
        if not nested:
            return flat_ok
        return (
            flat_ok
            and self._single_group_plan(fields) is not None
            and all(self._columns[f].numeric_entries() is not None for f in nested)
        )

    def scan_range_filtered(
        self,
        ranges: Mapping[str, tuple[float, float]],
        fields: Sequence[str] | None = None,
    ) -> Iterator[dict]:
        """Vectorized range filter over striped columns.

        Callers check :meth:`supports_range_filter` first.  Flat-only plans
        mask the short parent-level columns directly; plans touching nested
        leaves evaluate the range mask at entry granularity over the raw
        striped arrays and gather the matching flattened rows
        (:meth:`_nested_range_selection`).
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        involved = sorted(set(wanted) | set(ranges))
        if any(
            f in self._columns and self._columns[f].is_nested for f in involved
        ):
            plan, index_array = self._nested_range_selection(ranges, involved)
            gathered = [self._entry_gather(name, plan, index_array) for name in wanted]
            for i in range(len(index_array)):
                yield {name: array[i] for name, array in zip(wanted, gathered)}  # rowwise-fallback: row-format exit of the range scan; the batched executor uses range_filtered_batch
            return
        mask = self._range_mask(ranges, wanted)
        projected = [self._columns[name].flat_values(self._record_count) for name in wanted]
        for index in np.nonzero(mask)[0]:
            yield {name: values[index] for name, values in zip(wanted, projected)}  # rowwise-fallback: row-format exit of the range scan; the batched executor uses range_filtered_batch

    def _range_mask(
        self, ranges: Mapping[str, tuple[float, float]], wanted: Sequence[str]
    ) -> np.ndarray:
        """The per-record boolean mask for a conjunction of closed ranges.

        Shared by the row-yielding and batch-yielding filtered scans so the
        two executor fast paths can never drift apart semantically.  Raises
        for nested or non-numeric columns among the filtered *or* projected
        fields (callers check :meth:`supports_range_filter` first).
        """
        injector = faults.injector_for("scan.layout", self.layout_name)
        if injector is not None:
            injector()  # one opportunity per vectorized stripe read
        arrays = {}
        for field in set(wanted) | set(ranges):
            array = self.numeric_array(field)
            if array is None:
                raise ValueError(f"column {field!r} is nested or non-numeric; use scan() instead")
            arrays[field] = array
        mask = np.ones(self._record_count, dtype=bool)
        for field, (low, high) in ranges.items():
            mask &= (arrays[field] >= low) & (arrays[field] <= high)
        return mask

    def _nested_range_selection(
        self, ranges: Mapping[str, tuple[float, float]], involved: Sequence[str]
    ) -> tuple[tuple, np.ndarray]:
        """Entry-granular range selection when nested columns are involved.

        The mask is evaluated directly over the striped entry arrays — one
        entry per flattened row by the single-group invariant — with ``None``
        entries (missing values, empty collections) failing every range
        exactly like the interpreter's null guard.  Shared by the
        row-yielding and batch-yielding exits so the two executor fast paths
        can never drift apart semantically.  Returns the entry plan and the
        sorted indexes of matching entries.
        """
        injector = faults.injector_for("scan.layout", self.layout_name)
        if injector is not None:
            injector()  # one opportunity per vectorized stripe read
        plan = self._single_group_plan(involved)
        if plan is None:
            raise ValueError(
                "nested columns span repetition groups or are misaligned; use scan() instead"
            )
        _counts, offsets, record_ids = plan
        mask = np.ones(int(offsets[-1]), dtype=bool)
        for field, (low, high) in ranges.items():
            column = self._columns[field]
            if column.is_nested:
                array = column.numeric_entries()
            else:
                flat = self.numeric_array(field)
                array = None if flat is None else flat[record_ids]
            if array is None:
                raise ValueError(f"column {field!r} is non-numeric; use scan() instead")
            mask &= (array >= low) & (array <= high)
        return plan, np.nonzero(mask)[0]

    def _entry_gather(self, name: str, plan: tuple, index_array: np.ndarray) -> np.ndarray:
        """Gather one column's values at the selected group entries.

        Nested columns index their entry arrays directly; flat columns hold
        one value per record and are gathered through the per-entry record
        ordinals, which is the vectorized equivalent of repeating the parent
        value across its children.
        """
        _counts, _offsets, record_ids = plan
        column = self._columns[name]
        if column.is_nested:
            return column.object_entries()[index_array]
        return self._object_array(name)[record_ids[index_array]]

    def range_filtered_batch(
        self,
        ranges: Mapping[str, tuple[float, float]],
        fields: Sequence[str] | None = None,
        dedupe_records: bool = False,
    ) -> RecordBatch:
        """One :class:`RecordBatch` of the records satisfying closed numeric ranges.

        The NumPy mask is evaluated on the striped per-record float64 views
        *before* any materialization, then only the matching records' values
        are gathered straight out of the stripes into batch columns (with the
        matching slices of the float64 views pre-seeded).  Parent-level
        columns carry one entry per record, so the output is record-granular
        by construction and ``dedupe_records`` is inherently satisfied.
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        involved = sorted(set(wanted) | set(ranges))
        if any(
            f in self._columns and self._columns[f].is_nested for f in involved
        ):
            plan, index_array = self._nested_range_selection(ranges, involved)
            _counts, _offsets, record_ids = plan
            if dedupe_records and len(index_array):
                # Record-granular semantics: keep the first matching entry of
                # each record (defensive; nested-accessing queries run
                # row-granular and never request dedup).
                _, first_positions = np.unique(
                    record_ids[index_array], return_index=True
                )
                index_array = index_array[first_positions]
            columns = {
                name: list(self._entry_gather(name, plan, index_array))
                for name in wanted
            }
            batch = RecordBatch(columns, row_count=len(index_array))
            for name in wanted:
                column = self._columns[name]
                if column.is_nested:
                    numeric = column.numeric_entries()
                    if numeric is not None:
                        batch.set_numeric_view(name, numeric[index_array])
                    batch.set_validity_view(
                        name, column.entry_validity()[index_array]
                    )
                else:
                    numeric = self.numeric_array(name)
                    if numeric is not None:
                        batch.set_numeric_view(
                            name, numeric[record_ids[index_array]]
                        )
                    batch.set_validity_view(
                        name, column.entry_validity()[record_ids[index_array]]
                    )
            return batch
        index_array = np.nonzero(self._range_mask(ranges, wanted))[0]
        columns = {
            name: list(self._object_array(name)[index_array]) for name in wanted
        }
        batch = RecordBatch(columns, row_count=len(index_array))
        for name in wanted:
            array = self._numeric_arrays.get(name)
            if array is not None:
                batch.set_numeric_view(name, array[index_array])
        return batch

    # -- internals ------------------------------------------------------------
    def _scan_flat(
        self, wanted: Sequence[str], predicate: Callable[[dict], bool] | None
    ) -> Iterator[dict]:
        cols = [self._columns[f].flat_values(self._record_count) for f in wanted]
        if any(values is None for values in cols):  # malformed stripe: level walk
            for row in assemble_rows(self._columns, self.schema, list(wanted)):
                if predicate is None or predicate(row):
                    yield row
            return
        for values in zip(*cols):
            row = dict(zip(wanted, values))
            if predicate is None or predicate(row):
                yield row

    def _compute_flattened_rows(self) -> int:
        """Number of rows the cached data would occupy if flattened (``R``)."""
        nested_columns_by_group: dict[str, StripedColumn] = {}
        for path, column in self._columns.items():
            if column.is_nested:
                group = repetition_group(self.schema, path)
                nested_columns_by_group.setdefault(group or path, column)
        if not nested_columns_by_group:
            return self._record_count
        # Vectorized over records: one (start, end) range array per repetition
        # group, per-record row counts are the product of the group sizes.
        rows = np.ones(self._record_count, dtype=np.int64)
        for column in nested_columns_by_group.values():
            ranges = np.asarray(column.record_ranges, dtype=np.int64).reshape(-1, 2)
            rows *= np.maximum(1, ranges[:, 1] - ranges[:, 0])
        return int(rows.sum())
