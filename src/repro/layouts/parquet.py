"""Parquet/Dremel-style nested columnar cache layout.

The default layout for caches of nested data (Section 4.2): it is cheap to
*build* (no duplication of parent attributes, hence far fewer memory writes —
Figure 6) and cheap to *scan* when only non-nested attributes are requested
(parent columns are short — Figure 1, second half), but pays a per-value
level-interpretation cost when nested attributes must be reassembled into
rows (Figures 1 and 5).
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.engine.batch import numeric_column_array
from repro.engine.types import RecordType
from repro.layouts.assembly import assemble_records, assemble_rows, repetition_group
from repro.layouts.base import CacheLayout, estimate_sequence_bytes
from repro.layouts.striping import StripedColumn, stripe_records


class ParquetLayout(CacheLayout):
    """Striped storage of nested records with FSM-based row assembly."""

    layout_name = "parquet"

    def __init__(
        self,
        schema: RecordType,
        fields: Sequence[str],
        columns: dict[str, StripedColumn],
        record_count: int,
    ) -> None:
        super().__init__(schema, fields)
        self._columns = columns
        self._record_count = record_count
        self._nbytes = sum(
            estimate_sequence_bytes(col.values)
            # one byte each for the repetition and definition levels
            + 2 * col.entry_count
            for col in columns.values()
        )
        self._flattened_rows = self._compute_flattened_rows()
        #: lazily built float64 views of *non-nested* columns (one entry per
        #: record), enabling vectorized range filters on parent attributes
        self._numeric_arrays: dict[str, np.ndarray | None] = {}

    @classmethod
    def from_records(
        cls,
        records: Sequence[dict],
        schema: RecordType,
        fields: Sequence[str],
    ) -> "ParquetLayout":
        """Stripe nested records into columns for the requested leaf paths."""
        columns = stripe_records(records, schema, fields)
        return cls(schema, list(fields), columns, len(records))

    # -- CacheLayout API ------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def flattened_row_count(self) -> int:
        return self._flattened_rows

    @property
    def record_count(self) -> int:
        return self._record_count

    def columns(self) -> dict[str, StripedColumn]:
        """Direct access to the striped columns (used by conversion/tests)."""
        return self._columns

    def scan(
        self,
        fields: Sequence[str] | None = None,
        predicate: Callable[[dict], bool] | None = None,
    ) -> Iterator[dict]:
        """Yield flattened rows for ``fields``.

        When every requested field is non-nested, the scan walks only the
        short parent-level columns (one entry per record).  Otherwise it runs
        the full level-interpreting assembly, which is the computationally
        expensive path the layout selector measures as ``C``.
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        missing = [f for f in wanted if f not in self._columns]
        if missing:
            raise KeyError(f"columns not cached: {missing}")
        if wanted and all(not self._columns[f].is_nested for f in wanted):
            yield from self._scan_flat(wanted, predicate)
            return
        for row in assemble_rows(self._columns, self.schema, wanted):
            if predicate is None or predicate(row):
                yield row

    def scan_records(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Reconstruct (partial) nested records — used for layout conversion."""
        wanted = list(fields) if fields is not None else list(self.fields)
        return assemble_records(self._columns, self.schema, wanted)

    def rows(self) -> Iterator[dict]:
        return self.scan()

    # -- vectorized range filtering (non-nested columns only) ------------------
    def numeric_array(self, name: str) -> np.ndarray | None:
        """A float64 view of a non-nested numeric column (one value per record)."""
        if name not in self._numeric_arrays:
            column = self._columns.get(name)
            if column is None or column.is_nested:
                self._numeric_arrays[name] = None
            else:
                values = []
                for record_index in range(self._record_count):
                    start, end = column.record_entries(record_index)
                    if end > start and column.definition_levels[start] == column.max_definition:
                        values.append(column.values[start])
                    else:
                        values.append(None)
                self._numeric_arrays[name] = numeric_column_array(values)
        return self._numeric_arrays[name]

    def supports_range_filter(self, fields: Sequence[str]) -> bool:
        """True when every field is a non-nested numeric column of this cache."""
        return all(self.numeric_array(field) is not None for field in fields)

    def scan_range_filtered(
        self,
        ranges: Mapping[str, tuple[float, float]],
        fields: Sequence[str] | None = None,
    ) -> Iterator[dict]:
        """Vectorized range filter over the short parent-level columns.

        Only valid when the filtered *and* projected fields are all non-nested
        (callers check :meth:`supports_range_filter` first); nested access goes
        through the level-interpreting :meth:`scan`.
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        arrays = {}
        for field in set(wanted) | set(ranges):
            array = self.numeric_array(field)
            if array is None:
                raise ValueError(f"column {field!r} is nested or non-numeric; use scan() instead")
            arrays[field] = array
        mask = np.ones(self._record_count, dtype=bool)
        for field, (low, high) in ranges.items():
            mask &= (arrays[field] >= low) & (arrays[field] <= high)
        projected = [self._columns[name] for name in wanted]
        for index in np.nonzero(mask)[0]:
            row = {}
            for name, column in zip(wanted, projected):
                start, end = column.record_entries(index)
                if end > start and column.definition_levels[start] == column.max_definition:
                    row[name] = column.values[start]
                else:
                    row[name] = None
            yield row

    # -- internals ------------------------------------------------------------
    def _scan_flat(
        self, wanted: Sequence[str], predicate: Callable[[dict], bool] | None
    ) -> Iterator[dict]:
        cols = [self._columns[f] for f in wanted]
        for record_index in range(self._record_count):
            row: dict = {}
            for name, column in zip(wanted, cols):
                start, end = column.record_entries(record_index)
                if end > start and column.definition_levels[start] == column.max_definition:
                    row[name] = column.values[start]
                else:
                    row[name] = None
            if predicate is None or predicate(row):
                yield row

    def _compute_flattened_rows(self) -> int:
        """Number of rows the cached data would occupy if flattened (``R``)."""
        nested_columns_by_group: dict[str, StripedColumn] = {}
        for path, column in self._columns.items():
            if column.is_nested:
                group = repetition_group(self.schema, path)
                nested_columns_by_group.setdefault(group or path, column)
        if not nested_columns_by_group:
            return self._record_count
        total = 0
        representatives = list(nested_columns_by_group.values())
        for record_index in range(self._record_count):
            rows = 1
            for column in representatives:
                start, end = column.record_entries(record_index)
                rows *= max(1, end - start)
            total += rows
        return total
