"""Relational column-oriented cache layout.

Nested data is first flattened (duplicating parent attributes per nested
element, exactly as in Section 4 of the paper) and then stored one Python list
per column.  Scans touch only the requested columns, which makes reading the
cache cheap in terms of compute — the layout's weakness is that flattening
inflates the number of rows, so queries touching only parent-level attributes
must still iterate over all ``R`` flattened rows.

Because the cached data is already parsed and binary, range predicates over
numeric columns can be evaluated vectorized (:meth:`ColumnarLayout.scan_range_filtered`),
which is what makes reusing a cache substantially cheaper than re-parsing the
raw file — the effect the paper's Figure 13 relies on.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.engine.batch import RecordBatch, numeric_column_array, object_validity_mask
from repro.engine.types import RecordType
from repro.faults import runtime as faults
from repro.layouts.base import CacheLayout, estimate_sequence_bytes


class ColumnarLayout(CacheLayout):
    """Column-major storage of flattened tuples."""

    layout_name = "columnar"

    def __init__(
        self,
        schema: RecordType,
        fields: Sequence[str],
        columns: dict[str, list],
        record_row_counts: Sequence[int] | None = None,
    ) -> None:
        super().__init__(schema, fields)
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self._columns = columns
        self._row_count = lengths.pop() if lengths else 0
        self._record_row_counts = list(record_row_counts) if record_row_counts else None
        self._nbytes = sum(estimate_sequence_bytes(col) for col in columns.values())
        #: lazily built numeric (float64) views of columns, for vectorized filters
        self._numeric_arrays: dict[str, np.ndarray | None] = {}
        #: lazily built object-dtype views of columns, enabling vectorized
        #: gathers (NumPy fancy indexing) on the filter/dedupe fast paths
        self._object_arrays: dict[str, np.ndarray] = {}
        #: lazily built ``value is not None`` masks per column, pre-seeded
        #: into batches so vectorized ``!=`` pays the Python walk once
        self._validity_arrays: dict[str, np.ndarray] = {}
        #: lazily built first-flattened-row-per-record index array
        self._first_row_array: np.ndarray | None = None

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[dict],
        schema: RecordType,
        fields: Sequence[str],
        record_row_counts: Sequence[int] | None = None,
    ) -> "ColumnarLayout":
        """Build the layout from already-flattened rows."""
        columns: dict[str, list] = {f: [] for f in fields}
        for row in rows:
            for field in fields:
                columns[field].append(row.get(field))
        return cls(schema, fields, columns, record_row_counts)

    # -- CacheLayout API ------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def flattened_row_count(self) -> int:
        return self._row_count

    @property
    def record_count(self) -> int:
        if self._record_row_counts is not None:
            return len(self._record_row_counts)
        return self._row_count

    @property
    def record_row_counts(self) -> list[int] | None:
        """Rows contributed by each original nested record (None for flat data)."""
        return self._record_row_counts

    def column(self, name: str) -> list:
        """Direct access to one column's values (used by layout conversion)."""
        return self._columns[name]

    def scan(
        self,
        fields: Sequence[str] | None = None,
        predicate: Callable[[dict], bool] | None = None,
        dedupe_records: bool = False,
    ) -> Iterator[dict]:
        """Yield rows for ``fields``; optionally one row per original record.

        ``dedupe_records`` implements the nested-algebra semantics for queries
        that touch no nested attribute: the scan still walks every flattened
        row (that is the layout's inherent cost), but emits only the first row
        of each original record so parent attributes are not double counted.
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        missing = [f for f in wanted if f not in self._columns]
        if missing:
            raise KeyError(f"columns not cached: {missing}")
        selected = [self._columns[f] for f in wanted]
        first_row_indexes = self._record_first_rows() if dedupe_records else None
        injector = faults.injector_for("scan.layout", self.layout_name)
        for index, values in enumerate(zip(*selected) if selected else []):
            if first_row_indexes is not None and index not in first_row_indexes:
                continue
            if injector is not None:
                injector()
            row = dict(zip(wanted, values))
            if predicate is None or predicate(row):
                yield row

    def rows(self) -> Iterator[dict]:
        """Yield every cached row with all cached fields (no filtering)."""
        return self.scan()

    def scan_batches(
        self,
        fields: Sequence[str] | None = None,
        batch_size: int = 1024,
        dedupe_records: bool = False,
        numeric_fields: Sequence[str] | None = None,
    ) -> Iterator[RecordBatch]:
        """Yield the cached columns as batches by direct slicing.

        The storage is already column-major, so a batch is a set of list
        slices — no per-row work at all.  The layout's cached numeric column
        views are sliced alongside so batch predicates reuse the one-time
        float64 conversion across queries; ``numeric_fields`` names the
        columns worth force-building a view for (the caller's predicate
        columns), while other columns only reuse a view that already exists.
        ``dedupe_records`` restricts the scan to the first flattened row of
        each original record (see :meth:`scan`).
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        missing = [f for f in wanted if f not in self._columns]
        if missing:
            raise KeyError(f"columns not cached: {missing}")
        prime = set(numeric_fields or ())
        arrays = {
            f: self.numeric_array(f) if f in prime else self._numeric_arrays.get(f)
            for f in wanted
        }
        validity = {
            f: self.validity_array(f) if f in prime else self._validity_arrays.get(f)
            for f in wanted
        }
        injector = faults.injector_for("scan.layout", self.layout_name)
        if dedupe_records:
            first_rows = self._record_first_row_array()
            for start in range(0, len(first_rows), batch_size):
                if injector is not None:
                    injector()
                chunk = first_rows[start : start + batch_size]
                batch = RecordBatch(
                    {f: list(self._object_array(f)[chunk]) for f in wanted},
                    row_count=len(chunk),
                )
                for name, array in arrays.items():
                    if array is not None:
                        batch.set_numeric_view(name, array[chunk])
                for name, mask in validity.items():
                    if mask is not None:
                        batch.set_validity_view(name, mask[chunk])
                yield batch
            return
        for start in range(0, self._row_count, batch_size):
            if injector is not None:
                injector()
            stop = min(self._row_count, start + batch_size)
            batch = RecordBatch(
                {f: self._columns[f][start:stop] for f in wanted}, row_count=stop - start
            )
            for name, array in arrays.items():
                if array is not None:
                    batch.set_numeric_view(name, array[start:stop])
            for name, mask in validity.items():
                if mask is not None:
                    batch.set_validity_view(name, mask[start:stop])
            yield batch

    # -- vectorized range filtering -------------------------------------------
    def numeric_array(self, name: str) -> np.ndarray | None:  # returns: flat-view
        """A float64 view of one column (missing values become NaN).

        Returns ``None`` for columns that are not genuinely numeric (digit
        strings stay strings, so string-typed predicates keep their row
        semantics); the view is built lazily on first use and reused by later
        filtered scans.
        """
        if name not in self._numeric_arrays:
            self._numeric_arrays[name] = numeric_column_array(self._columns[name])
        return self._numeric_arrays[name]

    def validity_array(self, name: str) -> np.ndarray:
        """Cached ``value is not None`` mask of one column.

        Pre-seeded into scan batches for predicate columns so vectorized
        ``!=`` evaluates its null guard as one cached boolean array instead
        of re-walking the Python values per batch per query.
        """
        if name not in self._validity_arrays:
            self._validity_arrays[name] = object_validity_mask(self._columns[name])
        return self._validity_arrays[name]

    def _object_array(self, name: str) -> np.ndarray:
        """Cached object-dtype view of one column, for vectorized gathers.

        Filled cell by cell (once, then cached) rather than via ``np.asarray``
        so sequence-valued cells can never trigger NumPy's shape inference.
        """
        if name not in self._object_arrays:
            column = self._columns[name]
            array = np.empty(len(column), dtype=object)
            for index, value in enumerate(column):
                array[index] = value
            self._object_arrays[name] = array
        return self._object_arrays[name]

    def supports_range_filter(self, fields: Sequence[str]) -> bool:
        """True when every given field has a numeric vectorizable column."""
        return all(
            field in self._columns and self.numeric_array(field) is not None for field in fields
        )

    def scan_range_filtered(
        self,
        ranges: Mapping[str, tuple[float, float]],
        fields: Sequence[str] | None = None,
        dedupe_records: bool = False,
    ) -> Iterator[dict]:
        """Yield rows satisfying a conjunction of closed numeric ranges.

        The filter is evaluated vectorized over the numeric column views; row
        dictionaries are materialized only for the matching positions.
        ``dedupe_records`` keeps only the first flattened row of each original
        record (see :meth:`scan`).
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        missing = [f for f in wanted if f not in self._columns]
        if missing:
            raise KeyError(f"columns not cached: {missing}")
        mask = self._range_mask(ranges, dedupe_records)
        selected = [self._columns[f] for f in wanted]
        for index in np.nonzero(mask)[0]:
            yield {name: column[index] for name, column in zip(wanted, selected)}  # rowwise-fallback: row-format exit of the range scan; the batched executor uses range_filtered_batch

    def _range_mask(
        self, ranges: Mapping[str, tuple[float, float]], dedupe_records: bool
    ) -> np.ndarray:
        """The boolean row mask for a conjunction of closed numeric ranges.

        Shared by the row-yielding and batch-yielding filtered scans so the
        two executor fast paths can never drift apart semantically.
        """
        injector = faults.injector_for("scan.layout", self.layout_name)
        if injector is not None:
            injector()  # one opportunity per vectorized stripe read
        mask = np.ones(self._row_count, dtype=bool)
        for field, (low, high) in ranges.items():
            array = self.numeric_array(field)
            if array is None:
                raise ValueError(f"column {field!r} is not numeric; use scan() instead")
            mask &= (array >= low) & (array <= high)
        if dedupe_records:
            keep = np.zeros(self._row_count, dtype=bool)
            keep[self._record_first_row_array()] = True
            mask &= keep
        return mask

    def range_filtered_batch(
        self,
        ranges: Mapping[str, tuple[float, float]],
        fields: Sequence[str] | None = None,
        dedupe_records: bool = False,
    ) -> RecordBatch:
        """One :class:`RecordBatch` of the rows satisfying closed numeric ranges.

        Same filter semantics as :meth:`scan_range_filtered`, but the matching
        rows are gathered into batch columns (and sliced numeric views) instead
        of per-row dictionaries — the cache-hit fast path of the batched
        executor.
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        missing = [f for f in wanted if f not in self._columns]
        if missing:
            raise KeyError(f"columns not cached: {missing}")
        index_array = np.nonzero(self._range_mask(ranges, dedupe_records))[0]
        batch = RecordBatch(
            {f: list(self._object_array(f)[index_array]) for f in wanted},
            row_count=len(index_array),
        )
        for name in wanted:
            array = self._numeric_arrays.get(name)
            if array is not None:
                batch.set_numeric_view(name, array[index_array])
            mask = self._validity_arrays.get(name)
            if mask is not None:
                batch.set_validity_view(name, mask[index_array])
        return batch

    def _record_first_row_array(self) -> np.ndarray:
        """Sorted row indexes of the first flattened row of each record.

        Computed as an exclusive prefix sum over the per-record row counts
        (degenerate zero-row records are clamped to one slot, preserving the
        historical cursor semantics), cached for reuse across dedup scans.
        """
        if self._first_row_array is None:
            if self._record_row_counts is None:
                self._first_row_array = np.arange(self._row_count, dtype=np.int64)
            elif not self._record_row_counts:
                self._first_row_array = np.empty(0, dtype=np.int64)
            else:
                counts = np.maximum(
                    1, np.asarray(self._record_row_counts, dtype=np.int64)
                )
                starts = np.empty(len(counts), dtype=np.int64)
                starts[0] = 0
                np.cumsum(counts[:-1], out=starts[1:])
                self._first_row_array = starts
        return self._first_row_array

    def _record_first_rows(self) -> set[int]:
        """Row indexes holding the first flattened row of each original record."""
        return set(self._record_first_row_array().tolist())
