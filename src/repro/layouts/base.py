"""Common interface for in-memory cache layouts."""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.engine.batch import RecordBatch, batches_from_row_iter
from repro.engine.types import RecordType


def estimate_value_bytes(value: object) -> int:
    """Rough in-memory size of one cached value, used for cache accounting.

    The absolute numbers do not matter for the policies — only relative item
    sizes do — so a simple model (8 bytes per number, one byte per string
    character, 1 byte for missing values) is sufficient and deterministic.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return max(1, len(value))
    if isinstance(value, (list, tuple)):
        return sum(estimate_value_bytes(v) for v in value)
    if isinstance(value, dict):
        return sum(estimate_value_bytes(v) for v in value.values())
    return 16


#: columns at or below this length are sized exactly; longer ones are sampled
EXACT_SIZE_THRESHOLD = 1024
#: approximate number of values sampled from a long column
SIZE_SAMPLE_TARGET = 256


def estimate_sequence_bytes(values: Sequence) -> int:
    """Estimated total size of one column (or tuple list) of cached values.

    Small sequences (up to :data:`EXACT_SIZE_THRESHOLD` values) are summed
    exactly; longer ones extrapolate from a deterministic stride sample of
    ~:data:`SIZE_SAMPLE_TARGET` values.  This removes the O(rows x fields)
    per-value summation from layout constructors while keeping the eviction
    accounting within a few percent of the exact figure (only *relative* item
    sizes matter to the policies).
    """
    count = len(values)
    if count <= EXACT_SIZE_THRESHOLD:
        return sum(estimate_value_bytes(value) for value in values)
    # Evenly spaced fractional positions instead of a fixed stride: the step
    # alternates between floor and ceil of count/target, which avoids locking
    # onto periodic value patterns (a fixed stride divisible by the pattern
    # period would sample only one phase of it).
    total = sum(
        estimate_value_bytes(values[(i * count) // SIZE_SAMPLE_TARGET])
        for i in range(SIZE_SAMPLE_TARGET)
    )
    return int(round(total / SIZE_SAMPLE_TARGET * count))


class CacheLayout:
    """Abstract base class of all cache layouts.

    A layout owns the cached data for one cache entry.  It reports its size and
    cardinalities, and exposes :meth:`scan` which yields flattened rows for the
    requested fields, optionally filtered by a compiled predicate.  The scan is
    what the executor measures to obtain the data-access cost ``D`` and compute
    cost ``C`` used by the layout selector.
    """

    #: canonical layout name ("row", "columnar", "parquet")
    layout_name = "abstract"

    def __init__(self, schema: RecordType, fields: Sequence[str]) -> None:
        self.schema = schema
        self.fields = list(fields)

    # -- size & cardinality -------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Approximate size of the cached data in bytes."""
        raise NotImplementedError

    @property
    def flattened_row_count(self) -> int:
        """Number of rows the data occupies when flattened (the paper's ``R``)."""
        raise NotImplementedError

    @property
    def record_count(self) -> int:
        """Number of top-level (parent) records cached."""
        raise NotImplementedError

    # -- access ---------------------------------------------------------------
    def scan(
        self,
        fields: Sequence[str] | None = None,
        predicate: Callable[[dict], bool] | None = None,
    ) -> Iterator[dict]:
        """Yield flattened rows restricted to ``fields``; filter by ``predicate``."""
        raise NotImplementedError

    def scan_batches(
        self, fields: Sequence[str] | None = None, batch_size: int = 1024
    ) -> Iterator[RecordBatch]:
        """Yield the cached rows as :class:`RecordBatch` chunks.

        The generic implementation chunks :meth:`scan`; layouts whose storage
        is already columnar override it to slice columns directly.
        """
        wanted = list(fields) if fields is not None else list(self.fields)
        return batches_from_row_iter(self.scan(fields=wanted), wanted, batch_size)  # rowwise-fallback: compatibility bridge for layouts without a native batched scan

    def available_fields(self) -> list[str]:
        return list(self.fields)

    def supports_fields(self, fields: Sequence[str]) -> bool:
        """True when every requested field is present in the cached data."""
        available = set(self.fields)
        return all(field in available for field in fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(fields={len(self.fields)}, "
            f"rows={self.flattened_row_count}, bytes={self.nbytes})"
        )
