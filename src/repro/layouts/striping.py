"""Dremel-style column striping for nested records.

Implements the "column striping" half of the Parquet layout described in
Section 4 of the paper: each leaf field of a nested schema is stored in its own
column without duplication, and every column entry carries two small integers —
a *repetition level* (at which repeated ancestor the value repeats) and a
*definition level* (how many of its optional/repeated ancestors are actually
present).  Non-nested columns end up with exactly one entry per record, which
is what makes them "short" and cheap to scan; nested columns carry one entry
per element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.engine.batch import numeric_column_array
from repro.engine.types import (
    AtomType,
    DataType,
    Field,
    ListType,
    RecordType,
)


@dataclass
class StripedColumn:
    """One striped leaf column: values plus repetition/definition levels."""

    path: str
    max_repetition: int
    max_definition: int
    values: list = field(default_factory=list)
    repetition_levels: list[int] = field(default_factory=list)
    definition_levels: list[int] = field(default_factory=list)
    #: per-record (start, end) entry ranges, filled in by ``stripe_records``
    record_ranges: list[tuple[int, int]] = field(default_factory=list)
    #: lazily built NumPy views over the stripe (see the ``*_array`` methods);
    #: excluded from equality so cached and freshly-striped columns compare equal
    _definition_array: object = field(default=None, repr=False, compare=False)
    _entry_validity: object = field(default=None, repr=False, compare=False)
    _numeric_entries: object = field(default=None, repr=False, compare=False)
    _numeric_checked: bool = field(default=False, repr=False, compare=False)
    _object_entries: object = field(default=None, repr=False, compare=False)
    _entry_offsets: object = field(default=None, repr=False, compare=False)

    @property
    def is_nested(self) -> bool:
        return self.max_repetition > 0

    @property
    def entry_count(self) -> int:
        return len(self.values)

    def append(self, value, repetition: int, definition: int) -> None:
        self.values.append(value)
        self.repetition_levels.append(repetition)
        self.definition_levels.append(definition)

    def record_entries(self, record_index: int) -> tuple[int, int]:
        """Return the (start, end) entry range belonging to one record."""
        return self.record_ranges[record_index]

    # ------------------------------------------------------------------
    # Vectorized entry views (built once, cached on the column)
    #
    # These are the raw arrays the nested-predicate vectorizer works on:
    # predicates over ``a.b.c`` evaluate directly against the entry-granular
    # value/definition arrays, so a scan never assembles per-record Python
    # structures just to test a condition.
    # ------------------------------------------------------------------
    def definition_array(self) -> np.ndarray:
        """The definition levels as an int64 array (one slot per entry)."""
        if self._definition_array is None:
            self._definition_array = np.asarray(self.definition_levels, dtype=np.int64)
        return self._definition_array

    def entry_validity(self) -> np.ndarray:
        """Boolean array: entry carries a present value (def level == max).

        By the striping invariant, an entry below the maximum definition
        level always stores ``None`` — so this mask is identical to a
        per-entry ``value is not None`` test, computed from the level array.
        """
        if self._entry_validity is None:
            self._entry_validity = self.definition_array() == self.max_definition
        return self._entry_validity

    def numeric_entries(self) -> np.ndarray | None:  # returns: flat-view
        """Cached float64 view of the raw entry values, or ``None``.

        ``None`` entries (missing/empty collections and NULL atoms) become
        NaN, exactly like :func:`repro.engine.batch.numeric_column_array`;
        string columns return ``None`` and keep the per-row fallback.
        """
        if not self._numeric_checked:
            self._numeric_entries = numeric_column_array(self.values)
            self._numeric_checked = True
        return self._numeric_entries

    def object_entries(self) -> np.ndarray:
        """Cached object-dtype view of the raw entry values (for gathers)."""
        if self._object_entries is None:
            arr = np.empty(len(self.values), dtype=object)
            arr[:] = self.values
            self._object_entries = arr
        return self._object_entries

    def entry_offsets(self) -> np.ndarray:
        """Entry offsets per record: ``offsets[i]:offsets[i+1]`` is record i.

        Length is ``record_count + 1``; valid because ``stripe_records``
        appends entries record by record, so ranges are contiguous.
        """
        if self._entry_offsets is None:
            ranges = np.asarray(self.record_ranges, dtype=np.int64).reshape(-1, 2)
            offsets = np.empty(len(ranges) + 1, dtype=np.int64)
            offsets[:-1] = ranges[:, 0]
            offsets[-1] = self.entry_count
            self._entry_offsets = offsets
        return self._entry_offsets

    def entry_counts(self) -> np.ndarray:
        """Per-record entry counts (``>= 1`` everywhere: empty collections
        stripe one placeholder entry, see ``_emit_nulls``)."""
        offsets = self.entry_offsets()
        return offsets[1:] - offsets[:-1]

    def flat_values(self, record_count: int) -> list | None:  # returns: flat-view
        """The per-record value list of a non-repeated column, or ``None``.

        A flat (non-repeated) column stripes exactly one entry per record, in
        record order, and an entry whose definition level is below the maximum
        always stores ``None`` (see :func:`_stripe_record`) — so the raw
        ``values`` list *is* the per-record column, NULLs included and
        position-aligned with every other flat column.  This is what the
        Parquet layout's vectorized fast paths build batches and float64
        views from without any level interpretation.  Returns ``None`` for
        nested columns (or a malformed stripe whose entry count disagrees
        with the record count), where entries need the level walk.
        """
        if self.is_nested or len(self.values) != record_count:
            return None
        return self.values


def prune_schema(schema: RecordType, paths: Sequence[str]) -> RecordType:
    """Return a copy of ``schema`` containing only the given leaf paths."""
    wanted = set(paths)
    pruned = _prune(schema, "", wanted)
    if pruned is None:
        return RecordType([])
    assert isinstance(pruned, RecordType)
    return pruned


def _prune(dtype: DataType, prefix: str, wanted: set[str]) -> DataType | None:
    if isinstance(dtype, AtomType):
        return dtype if prefix in wanted else None
    if isinstance(dtype, ListType):
        inner = _prune(dtype.element, prefix, wanted)
        return ListType(inner) if inner is not None else None
    if isinstance(dtype, RecordType):
        fields = []
        for f in dtype.fields:
            child_prefix = f"{prefix}.{f.name}" if prefix else f.name
            inner = _prune(f.dtype, child_prefix, wanted)
            if inner is not None:
                fields.append(Field(f.name, inner))
        return RecordType(fields) if fields else None
    raise TypeError(f"unsupported data type: {dtype!r}")


def column_levels(schema: RecordType, path: str) -> tuple[int, int]:
    """Return ``(max_repetition, max_definition)`` for a leaf path."""
    max_rep = 0
    max_def = 0
    current: DataType = schema
    for part in path.split("."):
        while isinstance(current, ListType):
            max_rep += 1
            max_def += 1
            current = current.element
        if not isinstance(current, RecordType):
            raise KeyError(f"path {path!r} descends into non-record type")
        current = current.field(part).dtype
        max_def += 1  # every field is treated as optional
    while isinstance(current, ListType):
        max_rep += 1
        max_def += 1
        current = current.element
    return max_rep, max_def


def stripe_records(
    records: Sequence[dict],
    schema: RecordType,
    fields: Sequence[str] | None = None,
) -> dict[str, StripedColumn]:
    """Shred nested records into striped columns for the requested leaf paths.

    Leaf columns stripe independently of each other, so when every requested
    path crosses at most one repeated level the per-record recursive walk is
    replaced by compiled per-leaf stripers (one flat closure per column) that
    emit identical values, levels and record ranges at a fraction of the
    interpreter overhead.  Any deeper repetition (``max_repetition > 1``)
    falls back to the general recursive shredder.
    """
    if fields is None:
        fields = schema.leaf_paths()
    columns: dict[str, StripedColumn] = {}
    for path in fields:
        max_rep, max_def = column_levels(schema, path)
        columns[path] = StripedColumn(path, max_rep, max_def)

    stripers: list[tuple] | None = []
    for path, column in columns.items():
        fn = _leaf_striper(schema, path)
        if fn is None:
            stripers = None
            break
        stripers.append((column, fn))
    if stripers is not None:
        for column, fn in stripers:
            values = column.values
            reps = column.repetition_levels
            defs = column.definition_levels
            ranges = column.record_ranges
            for record in records:
                start = len(values)
                fn(record, values, reps, defs)
                ranges.append((start, len(values)))
        return columns

    pruned = prune_schema(schema, fields)
    for record in records:
        starts = {path: col.entry_count for path, col in columns.items()}
        _stripe_record(record, pruned, "", 0, 0, 0, columns)
        for path, col in columns.items():
            col.record_ranges.append((starts[path], col.entry_count))
    return columns


def _analyze_stripe_path(schema: RecordType, path: str):
    """Split ``path`` into (record keys, list key, element keys), or None.

    Returns None when the path crosses more than one repeated level — those
    columns keep the recursive shredder.
    """
    prefix: list[str] = []
    suffix: list[str] = []
    list_seen = False
    current: DataType = schema
    for part in path.split("."):
        if isinstance(current, ListType):
            if list_seen:
                return None
            list_seen = True
            current = current.element
            if isinstance(current, ListType):
                return None
        if not isinstance(current, RecordType):
            return None
        (suffix if list_seen else prefix).append(part)
        current = current.field(part).dtype
    if isinstance(current, ListType):
        if list_seen:
            return None
        list_seen = True
        current = current.element
    if not isinstance(current, AtomType):
        return None
    if not list_seen:
        return (prefix, None, [])
    # The repeated field itself is the last prefix part; ``suffix`` holds the
    # element-relative keys (empty for a list of atoms).
    return (prefix[:-1], prefix[-1], suffix)


def _leaf_striper(schema: RecordType, path: str):
    """Compile one leaf path into ``fn(record, values, reps, defs)`` or None.

    Each closure reproduces ``_stripe_record``'s emissions for its column
    exactly: the same ``is not None`` definition increments, the same
    ``isinstance(..., dict)`` record coercion, the same empty/missing-list
    placeholder entry, and the same first-element repetition level rule.
    """
    spec = _analyze_stripe_path(schema, path)
    if spec is None:
        return None
    prefix, list_key, suffix = spec

    if list_key is None:
        inter, leaf = prefix[:-1], prefix[-1]

        def stripe_flat(record, values, reps, defs):
            d = 0
            parent = record
            for k in inter:
                v = parent.get(k)
                if v is not None:
                    d += 1
                parent = v if isinstance(v, dict) else {}
            v = parent.get(leaf)
            values.append(v)
            reps.append(0)
            defs.append(d + 1 if v is not None else d)

        return stripe_flat

    inter = prefix
    if suffix:
        s_inter, s_leaf = suffix[:-1], suffix[-1]

        def stripe_list_of_records(record, values, reps, defs):
            d = 0
            parent = record
            for k in inter:
                v = parent.get(k)
                if v is not None:
                    d += 1
                parent = v if isinstance(v, dict) else {}
            lv = parent.get(list_key)
            if isinstance(lv, (list, tuple)) and lv:
                rep = 0
                for element in lv:
                    dd = d + 1
                    if element is not None:
                        dd += 1
                    cur = element if isinstance(element, dict) else {}
                    for k in s_inter:
                        v = cur.get(k)
                        if v is not None:
                            dd += 1
                        cur = v if isinstance(v, dict) else {}
                    v = cur.get(s_leaf)
                    values.append(v)
                    reps.append(rep)
                    defs.append(dd + 1 if v is not None else dd)
                    rep = 1
            else:
                values.append(None)
                reps.append(0)
                defs.append(d)

        return stripe_list_of_records

    def stripe_list_of_atoms(record, values, reps, defs):
        d = 0
        parent = record
        for k in inter:
            v = parent.get(k)
            if v is not None:
                d += 1
            parent = v if isinstance(v, dict) else {}
        lv = parent.get(list_key)
        if isinstance(lv, (list, tuple)) and lv:
            rep = 0
            for element in lv:
                values.append(element)
                reps.append(rep)
                defs.append(d + 2 if element is not None else d + 1)
                rep = 1
        else:
            values.append(None)
            reps.append(0)
            defs.append(d)

    return stripe_list_of_atoms


def _stripe_record(
    value: object,
    dtype: DataType,
    prefix: str,
    repetition: int,
    definition: int,
    repeated_depth: int,
    columns: dict[str, StripedColumn],
) -> None:
    """Recursively emit striped entries for ``value`` of type ``dtype``."""
    if isinstance(dtype, AtomType):
        column = columns.get(prefix)
        if column is None:
            return
        if value is None:
            column.append(None, repetition, definition)
        else:
            column.append(value, repetition, definition + 1)
        return

    if isinstance(dtype, RecordType):
        if prefix:
            definition = definition + 1 if value is not None else definition
        record = value if isinstance(value, dict) else {}
        for f in dtype.fields:
            child_prefix = f"{f.name}" if not prefix else f"{prefix}.{f.name}"
            _stripe_record(
                record.get(f.name),
                f.dtype,
                child_prefix,
                repetition,
                definition,
                repeated_depth,
                columns,
            )
        return

    if isinstance(dtype, ListType):
        elements = value if isinstance(value, (list, tuple)) and value else None
        if elements is None:
            # Empty or missing list: one placeholder entry at the current
            # definition level for every leaf beneath this path.
            _emit_nulls(dtype.element, prefix, repetition, definition, columns)
            return
        list_rep = repeated_depth + 1
        for index, element in enumerate(elements):
            element_rep = repetition if index == 0 else list_rep
            _stripe_record(
                element,
                dtype.element,
                prefix,
                element_rep,
                definition + 1,
                list_rep,
                columns,
            )
        return

    raise TypeError(f"unsupported data type: {dtype!r}")


def _emit_nulls(
    dtype: DataType,
    prefix: str,
    repetition: int,
    definition: int,
    columns: dict[str, StripedColumn],
) -> None:
    if isinstance(dtype, AtomType):
        column = columns.get(prefix)
        if column is not None:
            column.append(None, repetition, definition)
        return
    if isinstance(dtype, ListType):
        _emit_nulls(dtype.element, prefix, repetition, definition, columns)
        return
    if isinstance(dtype, RecordType):
        for f in dtype.fields:
            child_prefix = f"{f.name}" if not prefix else f"{prefix}.{f.name}"
            _emit_nulls(f.dtype, child_prefix, repetition, definition, columns)
        return
    raise TypeError(f"unsupported data type: {dtype!r}")
