"""Dremel-style column striping for nested records.

Implements the "column striping" half of the Parquet layout described in
Section 4 of the paper: each leaf field of a nested schema is stored in its own
column without duplication, and every column entry carries two small integers —
a *repetition level* (at which repeated ancestor the value repeats) and a
*definition level* (how many of its optional/repeated ancestors are actually
present).  Non-nested columns end up with exactly one entry per record, which
is what makes them "short" and cheap to scan; nested columns carry one entry
per element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.types import (
    AtomType,
    DataType,
    Field,
    ListType,
    RecordType,
)


@dataclass
class StripedColumn:
    """One striped leaf column: values plus repetition/definition levels."""

    path: str
    max_repetition: int
    max_definition: int
    values: list = field(default_factory=list)
    repetition_levels: list[int] = field(default_factory=list)
    definition_levels: list[int] = field(default_factory=list)
    #: per-record (start, end) entry ranges, filled in by ``stripe_records``
    record_ranges: list[tuple[int, int]] = field(default_factory=list)

    @property
    def is_nested(self) -> bool:
        return self.max_repetition > 0

    @property
    def entry_count(self) -> int:
        return len(self.values)

    def append(self, value, repetition: int, definition: int) -> None:
        self.values.append(value)
        self.repetition_levels.append(repetition)
        self.definition_levels.append(definition)

    def record_entries(self, record_index: int) -> tuple[int, int]:
        """Return the (start, end) entry range belonging to one record."""
        return self.record_ranges[record_index]

    def flat_values(self, record_count: int) -> list | None:  # returns: flat-view
        """The per-record value list of a non-repeated column, or ``None``.

        A flat (non-repeated) column stripes exactly one entry per record, in
        record order, and an entry whose definition level is below the maximum
        always stores ``None`` (see :func:`_stripe_record`) — so the raw
        ``values`` list *is* the per-record column, NULLs included and
        position-aligned with every other flat column.  This is what the
        Parquet layout's vectorized fast paths build batches and float64
        views from without any level interpretation.  Returns ``None`` for
        nested columns (or a malformed stripe whose entry count disagrees
        with the record count), where entries need the level walk.
        """
        if self.is_nested or len(self.values) != record_count:
            return None
        return self.values


def prune_schema(schema: RecordType, paths: Sequence[str]) -> RecordType:
    """Return a copy of ``schema`` containing only the given leaf paths."""
    wanted = set(paths)
    pruned = _prune(schema, "", wanted)
    if pruned is None:
        return RecordType([])
    assert isinstance(pruned, RecordType)
    return pruned


def _prune(dtype: DataType, prefix: str, wanted: set[str]) -> DataType | None:
    if isinstance(dtype, AtomType):
        return dtype if prefix in wanted else None
    if isinstance(dtype, ListType):
        inner = _prune(dtype.element, prefix, wanted)
        return ListType(inner) if inner is not None else None
    if isinstance(dtype, RecordType):
        fields = []
        for f in dtype.fields:
            child_prefix = f"{prefix}.{f.name}" if prefix else f.name
            inner = _prune(f.dtype, child_prefix, wanted)
            if inner is not None:
                fields.append(Field(f.name, inner))
        return RecordType(fields) if fields else None
    raise TypeError(f"unsupported data type: {dtype!r}")


def column_levels(schema: RecordType, path: str) -> tuple[int, int]:
    """Return ``(max_repetition, max_definition)`` for a leaf path."""
    max_rep = 0
    max_def = 0
    current: DataType = schema
    for part in path.split("."):
        while isinstance(current, ListType):
            max_rep += 1
            max_def += 1
            current = current.element
        if not isinstance(current, RecordType):
            raise KeyError(f"path {path!r} descends into non-record type")
        current = current.field(part).dtype
        max_def += 1  # every field is treated as optional
    while isinstance(current, ListType):
        max_rep += 1
        max_def += 1
        current = current.element
    return max_rep, max_def


def stripe_records(
    records: Sequence[dict],
    schema: RecordType,
    fields: Sequence[str] | None = None,
) -> dict[str, StripedColumn]:
    """Shred nested records into striped columns for the requested leaf paths."""
    if fields is None:
        fields = schema.leaf_paths()
    pruned = prune_schema(schema, fields)
    columns: dict[str, StripedColumn] = {}
    for path in fields:
        max_rep, max_def = column_levels(schema, path)
        columns[path] = StripedColumn(path, max_rep, max_def)

    for record in records:
        starts = {path: col.entry_count for path, col in columns.items()}
        _stripe_record(record, pruned, "", 0, 0, 0, columns)
        for path, col in columns.items():
            col.record_ranges.append((starts[path], col.entry_count))
    return columns


def _stripe_record(
    value: object,
    dtype: DataType,
    prefix: str,
    repetition: int,
    definition: int,
    repeated_depth: int,
    columns: dict[str, StripedColumn],
) -> None:
    """Recursively emit striped entries for ``value`` of type ``dtype``."""
    if isinstance(dtype, AtomType):
        column = columns.get(prefix)
        if column is None:
            return
        if value is None:
            column.append(None, repetition, definition)
        else:
            column.append(value, repetition, definition + 1)
        return

    if isinstance(dtype, RecordType):
        if prefix:
            definition = definition + 1 if value is not None else definition
        record = value if isinstance(value, dict) else {}
        for f in dtype.fields:
            child_prefix = f"{f.name}" if not prefix else f"{prefix}.{f.name}"
            _stripe_record(
                record.get(f.name),
                f.dtype,
                child_prefix,
                repetition,
                definition,
                repeated_depth,
                columns,
            )
        return

    if isinstance(dtype, ListType):
        elements = value if isinstance(value, (list, tuple)) and value else None
        if elements is None:
            # Empty or missing list: one placeholder entry at the current
            # definition level for every leaf beneath this path.
            _emit_nulls(dtype.element, prefix, repetition, definition, columns)
            return
        list_rep = repeated_depth + 1
        for index, element in enumerate(elements):
            element_rep = repetition if index == 0 else list_rep
            _stripe_record(
                element,
                dtype.element,
                prefix,
                element_rep,
                definition + 1,
                list_rep,
                columns,
            )
        return

    raise TypeError(f"unsupported data type: {dtype!r}")


def _emit_nulls(
    dtype: DataType,
    prefix: str,
    repetition: int,
    definition: int,
    columns: dict[str, StripedColumn],
) -> None:
    if isinstance(dtype, AtomType):
        column = columns.get(prefix)
        if column is not None:
            column.append(None, repetition, definition)
        return
    if isinstance(dtype, ListType):
        _emit_nulls(dtype.element, prefix, repetition, definition, columns)
        return
    if isinstance(dtype, RecordType):
        for f in dtype.fields:
            child_prefix = f"{f.name}" if not prefix else f"{prefix}.{f.name}"
            _emit_nulls(f.dtype, child_prefix, repetition, definition, columns)
        return
    raise TypeError(f"unsupported data type: {dtype!r}")
