"""Relational row-oriented cache layout.

Stores flattened tuples as Python tuples in row order.  Row layouts win when
queries touch most attributes of each tuple (Section 4.3); ReCache's
H2O-style row-vs-column selector estimates data-cache misses to decide when to
use it for flat relational caches.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.engine.batch import RecordBatch
from repro.engine.types import RecordType
from repro.faults import runtime as faults
from repro.layouts.base import CacheLayout, estimate_sequence_bytes


class RowLayout(CacheLayout):
    """Row-major storage of flattened tuples."""

    layout_name = "row"

    def __init__(
        self,
        schema: RecordType,
        fields: Sequence[str],
        rows: Sequence[dict],
        record_row_counts: Sequence[int] | None = None,
    ) -> None:
        super().__init__(schema, fields)
        self._tuples: list[tuple] = [tuple(row.get(f) for f in self.fields) for row in rows]
        self._field_index = {name: i for i, name in enumerate(self.fields)}
        self._record_row_counts = list(record_row_counts) if record_row_counts else None
        self._nbytes = estimate_sequence_bytes(self._tuples)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[dict],
        schema: RecordType,
        fields: Sequence[str],
        record_row_counts: Sequence[int] | None = None,
    ) -> "RowLayout":
        return cls(schema, fields, rows, record_row_counts)

    # -- CacheLayout API ------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def flattened_row_count(self) -> int:
        return len(self._tuples)

    @property
    def record_count(self) -> int:
        if self._record_row_counts is not None:
            return len(self._record_row_counts)
        return len(self._tuples)

    @property
    def record_row_counts(self) -> list[int] | None:
        """Rows contributed by each original nested record (None for flat data)."""
        return self._record_row_counts

    def _record_first_rows(self) -> set[int] | None:
        """Positions of each record's first flattened row (None for flat data)."""
        if self._record_row_counts is None:
            return None
        first_rows: set[int] = set()
        cursor = 0
        for count in self._record_row_counts:
            first_rows.add(cursor)
            cursor += max(1, count)
        return first_rows

    def scan(
        self,
        fields: Sequence[str] | None = None,
        predicate: Callable[[dict], bool] | None = None,
        dedupe_records: bool = False,
    ) -> Iterator[dict]:
        """Yield rows for ``fields``; ``dedupe_records`` keeps one row per record."""
        wanted = list(fields) if fields is not None else list(self.fields)
        indexes = [self._field_index[f] for f in wanted]
        first_rows = self._record_first_rows() if dedupe_records else None
        injector = faults.injector_for("scan.layout", self.layout_name)
        for position, tup in enumerate(self._tuples):
            if first_rows is not None and position not in first_rows:
                continue
            if injector is not None:
                injector()
            row = {name: tup[idx] for name, idx in zip(wanted, indexes)}
            if predicate is None or predicate(row):
                yield row

    def scan_batches(
        self,
        fields: Sequence[str] | None = None,
        batch_size: int = 1024,
        dedupe_records: bool = False,
    ) -> Iterator[RecordBatch]:
        """Yield the cached tuples as batches (columns built by unzipping)."""
        wanted = list(fields) if fields is not None else list(self.fields)
        indexes = [self._field_index[f] for f in wanted]
        first_rows = self._record_first_rows() if dedupe_records else None
        if first_rows is not None:
            tuples = [t for i, t in enumerate(self._tuples) if i in first_rows]
        else:
            tuples = self._tuples
        injector = faults.injector_for("scan.layout", self.layout_name)
        for start in range(0, len(tuples), batch_size):
            if injector is not None:
                injector()
            chunk = tuples[start : start + batch_size]
            columns = {name: [t[i] for t in chunk] for name, i in zip(wanted, indexes)}
            yield RecordBatch(columns, row_count=len(chunk))

    def rows(self) -> Iterator[dict]:
        """Yield every cached row with all cached fields (no filtering)."""
        return self.scan()
