"""In-memory cache layouts.

ReCache caches operator results in one of three layouts and switches between
them reactively (Section 4 of the paper):

* :class:`~repro.layouts.row.RowLayout` — relational row-oriented storage of
  flattened tuples,
* :class:`~repro.layouts.columnar.ColumnarLayout` — relational column-oriented
  storage of flattened tuples,
* :class:`~repro.layouts.parquet.ParquetLayout` — a Dremel/Parquet-style
  striped layout of the original nested records (values plus repetition and
  definition levels, reassembled with a finite-state machine).

All layouts implement the :class:`~repro.layouts.base.CacheLayout` interface so
the cache manager, layout selector and eviction policies can treat them
uniformly.
"""

from repro.layouts.base import CacheLayout, estimate_value_bytes
from repro.layouts.columnar import ColumnarLayout
from repro.layouts.row import RowLayout
from repro.layouts.parquet import ParquetLayout
from repro.layouts.striping import StripedColumn, stripe_records
from repro.layouts.assembly import assemble_rows, assemble_records
from repro.layouts.convert import build_layout, convert_layout, LAYOUT_NAMES

__all__ = [
    "CacheLayout",
    "ColumnarLayout",
    "RowLayout",
    "ParquetLayout",
    "StripedColumn",
    "stripe_records",
    "assemble_rows",
    "assemble_records",
    "build_layout",
    "convert_layout",
    "LAYOUT_NAMES",
    "estimate_value_bytes",
]
