"""Record assembly for the striped (Parquet/Dremel) layout.

The paper points out that Parquet's benefit (short parent columns, no
duplication) comes with a computational price: reconstructing rows requires a
finite-state walk over repetition/definition levels, which adds branches per
value.  The functions here implement that reconstruction:

* :func:`assemble_rows` produces flattened rows (the same rows a
  :class:`~repro.layouts.columnar.ColumnarLayout` would store), interpreting
  levels entry by entry — this is the expensive path used when a query touches
  nested attributes.
* :func:`assemble_records` reconstructs (partial) nested records, used for
  layout conversion and round-trip testing.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Sequence

from repro.engine.types import DataType, ListType, RecordType
from repro.layouts.striping import StripedColumn


def repetition_group(schema: RecordType, path: str) -> str | None:
    """Return the path prefix of the first repeated ancestor of ``path``.

    Columns sharing a repetition group repeat together (they belong to the same
    nested collection); columns with no repeated ancestor return ``None`` and
    have exactly one entry per record.
    """
    current: DataType = schema
    parts = path.split(".")
    prefix_parts: list[str] = []
    for part in parts:
        while isinstance(current, ListType):
            return ".".join(prefix_parts)
        if not isinstance(current, RecordType):
            raise KeyError(f"path {path!r} descends into non-record type")
        current = current.field(part).dtype
        prefix_parts.append(part)
        if isinstance(current, ListType):
            return ".".join(prefix_parts)
    return None


def list_definition_threshold(schema: RecordType, path: str) -> int:
    """Definition level at which the first repeated ancestor of ``path`` has
    at least one element.  Entries below this level represent empty/missing
    collections."""
    current: DataType = schema
    definition = 0
    for part in path.split("."):
        while isinstance(current, ListType):
            definition += 1
            return definition
        if not isinstance(current, RecordType):
            raise KeyError(f"path {path!r} descends into non-record type")
        current = current.field(part).dtype
        definition += 1
        if isinstance(current, ListType):
            definition += 1
            return definition
    return definition


def assemble_rows(
    columns: dict[str, StripedColumn],
    schema: RecordType,
    fields: Sequence[str] | None = None,
) -> Iterator[dict]:
    """Reassemble flattened rows from striped columns.

    Rows follow the same flattening semantics as
    :func:`repro.engine.types.flatten_record`: independent nested collections
    produce a cross product, empty collections contribute a single row with
    ``None`` in their columns.
    """
    if fields is None:
        fields = list(columns)
    missing = [f for f in fields if f not in columns]
    if missing:
        raise KeyError(f"columns not striped: {missing}")
    if not fields:
        return
    record_count = len(next(iter(columns.values())).record_ranges)

    # Partition the requested fields by repetition group once, outside the
    # per-record loop.
    groups: dict[str | None, list[str]] = {}
    for field in fields:
        groups.setdefault(repetition_group(schema, field), []).append(field)
    flat_fields = groups.pop(None, [])
    nested_groups = list(groups.items())

    for record_index in range(record_count):
        row_base: dict = {}
        for field in flat_fields:
            column = columns[field]
            start, end = column.record_entries(record_index)
            if end > start and column.definition_levels[start] == column.max_definition:
                row_base[field] = column.values[start]
            else:
                row_base[field] = None

        if not nested_groups:
            yield dict(row_base)
            continue

        # For every nested group, materialize its per-element slices for this
        # record (the finite-state walk over repetition levels).
        group_rows: list[list[dict]] = []
        for _, group_fields in nested_groups:
            group_rows.append(_group_elements(columns, group_fields, record_index))

        for combo in product(*group_rows):
            row = dict(row_base)
            for part in combo:
                row.update(part)
            yield row


def assemble_columns(  # rowwise-fallback: audited multi-group fallback — scan_batches takes the striped-view fast path for single-group plans; cross-product records need the per-record level walk
    columns: dict[str, StripedColumn],
    schema: RecordType,
    fields: Sequence[str],
) -> tuple[dict[str, list], int]:
    """Column-wise counterpart of :func:`assemble_rows`.

    Produces exactly the same flattened rows — independent nested collections
    cross-product, empty collections contribute one all-``None`` row — but
    builds one value list per column instead of a dictionary per row.  Flat
    fields skip level interpretation entirely (their striped values are
    already the per-record column; see
    :meth:`~repro.layouts.striping.StripedColumn.flat_values`) and are
    repeated per cross-product row; only nested columns pay the per-entry
    level walk, and each pays it once per column, not once per output row.

    Returns ``(columns, row_count)``.
    """
    fields = list(fields)
    missing = [f for f in fields if f not in columns]
    if missing:
        raise KeyError(f"columns not striped: {missing}")
    out: dict[str, list] = {field: [] for field in fields}
    if not fields:
        return out, 0
    record_count = len(next(iter(columns.values())).record_ranges)

    groups: dict[str | None, list[str]] = {}
    for field in fields:
        groups.setdefault(repetition_group(schema, field), []).append(field)
    flat_fields = groups.pop(None, [])
    nested_groups = list(groups.items())

    flat_columns = [
        (field, columns[field].flat_values(record_count)) for field in flat_fields
    ]

    total_rows = 0
    for record_index in range(record_count):
        # Per-element value lists of every nested group (one column slice per
        # field — the level walk happens here, per column).
        group_values: list[tuple[list[str], dict[str, list], int]] = []
        rows_here = 1
        for _, group_fields in nested_groups:
            per_field, count = _group_value_lists(columns, group_fields, record_index)
            group_values.append((group_fields, per_field, count))
            rows_here *= count

        for field, values in flat_columns:
            if values is not None:
                value = values[record_index]
            else:  # malformed stripe: fall back to the guarded entry lookup
                column = columns[field]
                start, end = column.record_entries(record_index)
                defined = (
                    end > start
                    and column.definition_levels[start] == column.max_definition
                )
                value = column.values[start] if defined else None
            if rows_here == 1:
                out[field].append(value)
            else:
                out[field].extend([value] * rows_here)

        # Cross-product expansion, matching product(*group_rows) order in
        # assemble_rows: earlier groups vary slowest.
        inner = rows_here
        outer = 1
        for group_fields, per_field, count in group_values:
            inner //= count
            for field in group_fields:
                values = per_field[field]
                target = out[field]
                if inner == 1 and outer == 1:
                    target.extend(values)
                else:
                    for _ in range(outer):
                        for value in values:
                            target.extend([value] * inner)
            outer *= count
        total_rows += rows_here
    return out, total_rows


def _group_value_lists(  # rowwise-fallback: audited multi-group fallback (see assemble_columns) — per-element slices of one repetition group
    columns: dict[str, StripedColumn],
    group_fields: Sequence[str],
    record_index: int,
) -> tuple[dict[str, list], int]:
    """Per-element values of one repetition group within one record.

    Striped entries already store ``None`` for every below-max definition
    level, so a column slice is the element value list; the pad only guards
    best-effort deep-nesting stripes where a member column runs short.
    """
    first = columns[group_fields[0]]
    start, end = first.record_entries(record_index)
    count = max(1, end - start)
    per_field: dict[str, list] = {}
    for field in group_fields:
        column = columns[field]
        f_start, f_end = column.record_entries(record_index)
        values = column.values[f_start : min(f_end, f_start + count)]
        if len(values) < count:
            values = values + [None] * (count - len(values))
        per_field[field] = values
    return per_field, count


def _group_elements(
    columns: dict[str, StripedColumn],
    group_fields: Sequence[str],
    record_index: int,
) -> list[dict]:
    """Per-element partial rows of one repetition group within one record."""
    first = columns[group_fields[0]]
    start, end = first.record_entries(record_index)
    count = max(1, end - start)
    elements: list[dict] = []
    for position in range(count):
        part: dict = {}
        for field in group_fields:
            column = columns[field]
            f_start, f_end = column.record_entries(record_index)
            index = f_start + position
            if index < f_end and column.definition_levels[index] == column.max_definition:
                part[field] = column.values[index]
            else:
                part[field] = None
        elements.append(part)
    return elements


def assemble_records(
    columns: dict[str, StripedColumn],
    schema: RecordType,
    fields: Sequence[str] | None = None,
) -> Iterator[dict]:
    """Reconstruct (partial) nested records containing the striped fields.

    Supports the nesting shapes used throughout the repository: atoms, records
    of atoms, and a single level of repeated collections (lists of atoms or
    lists of records).  Deeper repeated nesting is reconstructed best-effort by
    collapsing to the first level.
    """
    if fields is None:
        fields = list(columns)
    if not fields:
        return
    record_count = len(next(iter(columns.values())).record_ranges)
    groups: dict[str | None, list[str]] = {}
    for field in fields:
        groups.setdefault(repetition_group(schema, field), []).append(field)
    flat_fields = groups.pop(None, [])
    nested_groups = list(groups.items())
    thresholds = {
        prefix: list_definition_threshold(schema, group_fields[0])
        for prefix, group_fields in nested_groups
    }

    for record_index in range(record_count):
        record: dict = {}
        for field in flat_fields:
            column = columns[field]
            start, end = column.record_entries(record_index)
            value = None
            if end > start and column.definition_levels[start] == column.max_definition:
                value = column.values[start]
            _set_path(record, field, value)

        for prefix, group_fields in nested_groups:
            elements = _assemble_group_elements(
                columns, schema, prefix, group_fields, record_index, thresholds[prefix]
            )
            _set_path(record, prefix, elements)
        yield record


def _assemble_group_elements(
    columns: dict[str, StripedColumn],
    schema: RecordType,
    prefix: str,
    group_fields: Sequence[str],
    record_index: int,
    threshold: int,
) -> list:
    first = columns[group_fields[0]]
    start, end = first.record_entries(record_index)
    # An empty or missing collection stripes as a single entry at the
    # definition level of the list node itself — ``threshold - 2`` (the
    # threshold counts both the field's and the list's level on top of it).
    # A *present but null* element sits one level higher (``threshold - 1``)
    # and must reconstruct as a one-element collection, not an empty one.
    if end - start == 1 and first.definition_levels[start] <= threshold - 2:
        return []
    list_of_atoms = group_fields == [prefix]
    elements: list = []
    for position in range(end - start):
        if list_of_atoms:
            column = columns[prefix]
            f_start, _ = column.record_entries(record_index)
            index = f_start + position
            if column.definition_levels[index] == column.max_definition:
                elements.append(column.values[index])
            else:
                elements.append(None)
            continue
        element: dict = {}
        for field in group_fields:
            column = columns[field]
            f_start, f_end = column.record_entries(record_index)
            index = f_start + position
            value = None
            if index < f_end and column.definition_levels[index] == column.max_definition:
                value = column.values[index]
            suffix = field[len(prefix) + 1 :]
            _set_path(element, suffix, value)
        elements.append(element)
    return elements


def _set_path(target: dict, path: str, value) -> None:
    parts = path.split(".")
    current = target
    for part in parts[:-1]:
        current = current.setdefault(part, {})
    current[parts[-1]] = value
