"""Record assembly for the striped (Parquet/Dremel) layout.

The paper points out that Parquet's benefit (short parent columns, no
duplication) comes with a computational price: reconstructing rows requires a
finite-state walk over repetition/definition levels, which adds branches per
value.  The functions here implement that reconstruction:

* :func:`assemble_rows` produces flattened rows (the same rows a
  :class:`~repro.layouts.columnar.ColumnarLayout` would store), interpreting
  levels entry by entry — this is the expensive path used when a query touches
  nested attributes.
* :func:`assemble_records` reconstructs (partial) nested records, used for
  layout conversion and round-trip testing.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Sequence

from repro.engine.types import DataType, ListType, RecordType
from repro.layouts.striping import StripedColumn


def repetition_group(schema: RecordType, path: str) -> str | None:
    """Return the path prefix of the first repeated ancestor of ``path``.

    Columns sharing a repetition group repeat together (they belong to the same
    nested collection); columns with no repeated ancestor return ``None`` and
    have exactly one entry per record.
    """
    current: DataType = schema
    parts = path.split(".")
    prefix_parts: list[str] = []
    for part in parts:
        while isinstance(current, ListType):
            return ".".join(prefix_parts)
        if not isinstance(current, RecordType):
            raise KeyError(f"path {path!r} descends into non-record type")
        current = current.field(part).dtype
        prefix_parts.append(part)
        if isinstance(current, ListType):
            return ".".join(prefix_parts)
    return None


def list_definition_threshold(schema: RecordType, path: str) -> int:
    """Definition level at which the first repeated ancestor of ``path`` has
    at least one element.  Entries below this level represent empty/missing
    collections."""
    current: DataType = schema
    definition = 0
    for part in path.split("."):
        while isinstance(current, ListType):
            definition += 1
            return definition
        if not isinstance(current, RecordType):
            raise KeyError(f"path {path!r} descends into non-record type")
        current = current.field(part).dtype
        definition += 1
        if isinstance(current, ListType):
            definition += 1
            return definition
    return definition


def assemble_rows(
    columns: dict[str, StripedColumn],
    schema: RecordType,
    fields: Sequence[str] | None = None,
) -> Iterator[dict]:
    """Reassemble flattened rows from striped columns.

    Rows follow the same flattening semantics as
    :func:`repro.engine.types.flatten_record`: independent nested collections
    produce a cross product, empty collections contribute a single row with
    ``None`` in their columns.
    """
    if fields is None:
        fields = list(columns)
    missing = [f for f in fields if f not in columns]
    if missing:
        raise KeyError(f"columns not striped: {missing}")
    if not fields:
        return
    record_count = len(next(iter(columns.values())).record_ranges)

    # Partition the requested fields by repetition group once, outside the
    # per-record loop.
    groups: dict[str | None, list[str]] = {}
    for field in fields:
        groups.setdefault(repetition_group(schema, field), []).append(field)
    flat_fields = groups.pop(None, [])
    nested_groups = list(groups.items())

    for record_index in range(record_count):
        row_base: dict = {}
        for field in flat_fields:
            column = columns[field]
            start, end = column.record_entries(record_index)
            if end > start and column.definition_levels[start] == column.max_definition:
                row_base[field] = column.values[start]
            else:
                row_base[field] = None

        if not nested_groups:
            yield dict(row_base)
            continue

        # For every nested group, materialize its per-element slices for this
        # record (the finite-state walk over repetition levels).
        group_rows: list[list[dict]] = []
        for _, group_fields in nested_groups:
            group_rows.append(_group_elements(columns, group_fields, record_index))

        for combo in product(*group_rows):
            row = dict(row_base)
            for part in combo:
                row.update(part)
            yield row


def _group_elements(
    columns: dict[str, StripedColumn],
    group_fields: Sequence[str],
    record_index: int,
) -> list[dict]:
    """Per-element partial rows of one repetition group within one record."""
    first = columns[group_fields[0]]
    start, end = first.record_entries(record_index)
    count = max(1, end - start)
    elements: list[dict] = []
    for position in range(count):
        part: dict = {}
        for field in group_fields:
            column = columns[field]
            f_start, f_end = column.record_entries(record_index)
            index = f_start + position
            if index < f_end and column.definition_levels[index] == column.max_definition:
                part[field] = column.values[index]
            else:
                part[field] = None
        elements.append(part)
    return elements


def assemble_records(
    columns: dict[str, StripedColumn],
    schema: RecordType,
    fields: Sequence[str] | None = None,
) -> Iterator[dict]:
    """Reconstruct (partial) nested records containing the striped fields.

    Supports the nesting shapes used throughout the repository: atoms, records
    of atoms, and a single level of repeated collections (lists of atoms or
    lists of records).  Deeper repeated nesting is reconstructed best-effort by
    collapsing to the first level.
    """
    if fields is None:
        fields = list(columns)
    if not fields:
        return
    record_count = len(next(iter(columns.values())).record_ranges)
    groups: dict[str | None, list[str]] = {}
    for field in fields:
        groups.setdefault(repetition_group(schema, field), []).append(field)
    flat_fields = groups.pop(None, [])
    nested_groups = list(groups.items())
    thresholds = {
        prefix: list_definition_threshold(schema, group_fields[0])
        for prefix, group_fields in nested_groups
    }

    for record_index in range(record_count):
        record: dict = {}
        for field in flat_fields:
            column = columns[field]
            start, end = column.record_entries(record_index)
            value = None
            if end > start and column.definition_levels[start] == column.max_definition:
                value = column.values[start]
            _set_path(record, field, value)

        for prefix, group_fields in nested_groups:
            elements = _assemble_group_elements(
                columns, schema, prefix, group_fields, record_index, thresholds[prefix]
            )
            _set_path(record, prefix, elements)
        yield record


def _assemble_group_elements(
    columns: dict[str, StripedColumn],
    schema: RecordType,
    prefix: str,
    group_fields: Sequence[str],
    record_index: int,
    threshold: int,
) -> list:
    first = columns[group_fields[0]]
    start, end = first.record_entries(record_index)
    # An empty or missing collection stripes as a single below-threshold entry.
    if end - start == 1 and first.definition_levels[start] < threshold:
        return []
    list_of_atoms = group_fields == [prefix]
    elements: list = []
    for position in range(end - start):
        if list_of_atoms:
            column = columns[prefix]
            f_start, _ = column.record_entries(record_index)
            index = f_start + position
            if column.definition_levels[index] == column.max_definition:
                elements.append(column.values[index])
            else:
                elements.append(None)
            continue
        element: dict = {}
        for field in group_fields:
            column = columns[field]
            f_start, f_end = column.record_entries(record_index)
            index = f_start + position
            value = None
            if index < f_end and column.definition_levels[index] == column.max_definition:
                value = column.values[index]
            suffix = field[len(prefix) + 1 :]
            _set_path(element, suffix, value)
        elements.append(element)
    return elements


def _set_path(target: dict, path: str, value) -> None:
    parts = path.split(".")
    current = target
    for part in parts[:-1]:
        current = current.setdefault(part, {})
    current[parts[-1]] = value
