"""Reactive cache admission (Section 5.2 of the paper).

For data the cache has no history about, ReCache starts caching a small sample
of records both eagerly and lazily while measuring (a) the total time spent on
the query so far and (b) the time spent specifically on caching work.  At the
end of the sample it *extrapolates* both to the end of the file — this is the
``to1/tc1 .. to2/tc2`` scheme the paper introduces to avoid being fooled by
expensive upstream operators such as joins — and compares the projected caching
overhead ``tc / to`` against a user threshold.  Above the threshold the entry
is downgraded to lazy caching (record offsets only); otherwise eager caching
continues.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AdmissionDecision(enum.Enum):
    """Outcome of the admission check for one materializer."""

    EAGER = "eager"
    LAZY = "lazy"


@dataclass
class AdmissionSample:
    """The four timestamps captured around the admission sample.

    ``to1``/``to2`` are total elapsed query times at the start and end of the
    sample; ``tc1``/``tc2`` are cumulative caching times at the same points.
    ``sample_records`` records were processed in between, out of an estimated
    ``total_records`` in the file.
    """

    to1: float
    tc1: float
    to2: float
    tc2: float
    sample_records: int
    total_records: int

    def __post_init__(self) -> None:
        if self.sample_records <= 0:
            raise ValueError("sample_records must be positive")
        if self.total_records < self.sample_records:
            # A file smaller than the sample: treat the sample as the file.
            self.total_records = self.sample_records


class AdmissionController:
    """Decides between eager and lazy caching for previously unseen data."""

    def __init__(self, overhead_threshold: float = 0.10, sample_records: int = 200) -> None:
        if not 0.0 < overhead_threshold <= 1.0:
            raise ValueError("overhead_threshold must be in (0, 1]")
        if sample_records <= 0:
            raise ValueError("sample_records must be positive")
        self.overhead_threshold = overhead_threshold
        self.sample_records = sample_records

    # ------------------------------------------------------------------
    # The paper's extrapolating estimator
    # ------------------------------------------------------------------
    def projected_overhead(self, sample: AdmissionSample) -> float:
        """Projected caching overhead ``tc / to`` at the end of the file."""
        scale = sample.total_records / sample.sample_records
        to_end = sample.to1 + scale * (sample.to2 - sample.to1)
        tc_end = sample.tc1 + scale * (sample.tc2 - sample.tc1)
        if to_end <= 0.0:
            return 0.0
        return max(0.0, tc_end / to_end)

    def decide(self, sample: AdmissionSample) -> AdmissionDecision:
        """Admission decision from an extrapolated overhead estimate."""
        overhead = self.projected_overhead(sample)
        if overhead > self.overhead_threshold:
            return AdmissionDecision.LAZY
        return AdmissionDecision.EAGER

    # ------------------------------------------------------------------
    # Naive sample-local estimator (ablation baseline)
    # ------------------------------------------------------------------
    def naive_overhead(self, sample: AdmissionSample) -> float:
        """Caching overhead measured only within the sample (no extrapolation).

        This is the estimator the paper argues against: when an expensive
        upstream operator (e.g. a join) dominates ``to`` before the sample
        starts, the sample-local ratio looks deceptively small.
        """
        to_sample = sample.to2
        tc_sample = sample.tc2
        if to_sample <= 0.0:
            return 0.0
        return max(0.0, tc_sample / to_sample)

    def decide_naive(self, sample: AdmissionSample) -> AdmissionDecision:
        overhead = self.naive_overhead(sample)
        if overhead > self.overhead_threshold:
            return AdmissionDecision.LAZY
        return AdmissionDecision.EAGER

    # ------------------------------------------------------------------
    # Working-set shortcuts (Section 5.2, last paragraph)
    # ------------------------------------------------------------------
    @staticmethod
    def should_skip_sampling(source_has_live_entries: bool) -> bool:
        """Skip the sampling phase and cache eagerly when the file is "hot".

        As long as at least one cached item originating from the same file has
        not been evicted, ReCache assumes the file is still part of the working
        set and eagerly caches further accesses to it.
        """
        return source_has_live_entries
