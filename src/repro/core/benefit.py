"""The ReCache benefit metric (Figure 8 / Section 5.1 of the paper).

Given the timing measurements of a cached item — operator execution time ``t``,
caching time ``c``, cache scan time ``s``, lookup time ``l``, reuse count ``n``
and size ``B`` — the benefit of keeping the item cached is

    b(p) = n * (t + c - s - l) / log(B)

The metric is non-negative as long as reusing the cache is cheaper than
rebuilding it; we clamp at zero to guard against measurement noise on very
small items, mirroring the paper's assumption that lookup and scan costs are
small.
"""

from __future__ import annotations

import math

from repro.core.cache_entry import CacheEntry


def benefit_metric(entry: CacheEntry) -> float:
    """Compute ``b(p)`` for a cache entry from its current statistics."""
    stats = entry.stats
    return benefit_from_measurements(
        reuse_count=stats.reuse_count,
        operator_time=stats.operator_time,
        caching_time=stats.caching_time,
        scan_time=stats.scan_time,
        lookup_time=stats.lookup_time,
        size_bytes=entry.nbytes,
    )


def benefit_from_measurements(
    reuse_count: int,
    operator_time: float,
    caching_time: float,
    scan_time: float,
    lookup_time: float,
    size_bytes: int,
) -> float:
    """Benefit metric from raw measurements (used directly in unit tests).

    Items that have not been reused yet still carry the benefit of a single
    (re)use — evicting them would force the full ``t + c`` to be paid again —
    so ``n`` is floored at one, matching the admission-time use of the metric.
    """
    n = max(1, reuse_count)
    saved = operator_time + caching_time - (scan_time + lookup_time)
    if saved < 0.0:
        saved = 0.0
    # log(B): dampen the preference for small items; guard tiny sizes so the
    # denominator stays >= 1.
    denominator = math.log2(max(2.0, float(size_bytes)))
    return n * saved / denominator
