"""Baseline eviction policies compared against ReCache in Figure 14.

* :class:`LRUPolicy` / :class:`LFUPolicy` — the classic history-based policies.
* :class:`ProteusLRUPolicy` — Proteus' heuristic [28]: LRU, but JSON-derived
  caches are assumed to be costlier than CSV-derived ones, so CSV items are
  evicted first.
* :class:`VectorwisePolicy` — the cost-based recycler of Nagel et al. [37]:
  items are ranked by saved-cost-per-byte times reuse frequency.
* :class:`MonetDBPolicy` — the intermediate-recycling policy of Ivanova et
  al. [26]: frequency times weight, with the per-item weight capped so one
  pathological measurement cannot dominate.
* :class:`OfflineFarthestFirstPolicy` — Belady's clairvoyant policy: evict the
  item whose next access lies farthest in the future (optimal for unit-cost
  items).
* :class:`OfflineLogOptimalPolicy` — Irani's size-aware offline heuristic,
  which groups items into power-of-two size classes and applies farthest-first
  weighted by size class.

The offline policies need to be told the future: the workload runner calls
:meth:`OfflinePolicy.set_future_accesses` with the full access sequence before
execution starts.  With a sharded cache each shard owns its own policy
instance; the runner installs the full schedule on every instance (keys outside
a shard are simply never consulted).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence

from repro.core.cache_entry import CacheEntry
from repro.core.eviction import EvictionPolicy, ReCacheGreedyDualPolicy


def _greedy_take(ordered: Sequence[CacheEntry], bytes_to_free: int) -> list[CacheEntry]:
    """Take entries from ``ordered`` until enough bytes are covered."""
    victims: list[CacheEntry] = []
    freed = 0
    for entry in ordered:
        if freed >= bytes_to_free:
            break
        victims.append(entry)
        freed += entry.nbytes
    return victims


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used entries first."""

    name = "lru"

    def choose_victims(
        self, entries: Sequence[CacheEntry], bytes_to_free: int
    ) -> list[CacheEntry]:
        ordered = sorted(entries, key=lambda e: e.stats.last_access)
        return _greedy_take(ordered, bytes_to_free)


class LFUPolicy(EvictionPolicy):
    """Evict the least frequently used entries first (ties broken by recency)."""

    name = "lfu"

    def choose_victims(
        self, entries: Sequence[CacheEntry], bytes_to_free: int
    ) -> list[CacheEntry]:
        ordered = sorted(entries, key=lambda e: (e.stats.access_count, e.stats.last_access))
        return _greedy_take(ordered, bytes_to_free)


class ProteusLRUPolicy(EvictionPolicy):
    """LRU with the static assumption that JSON caches are costlier than CSV.

    CSV-derived entries are always preferred as victims; within each format
    class ordering is by recency.
    """

    name = "proteus-lru"

    def choose_victims(
        self, entries: Sequence[CacheEntry], bytes_to_free: int
    ) -> list[CacheEntry]:
        ordered = sorted(
            entries,
            key=lambda e: (0 if e.source_format == "csv" else 1, e.stats.last_access),
        )
        return _greedy_take(ordered, bytes_to_free)


class VectorwisePolicy(EvictionPolicy):
    """Cost-based recycling in the style of Vectorwise [37].

    Each item is scored by the cost it saves per byte of cache space, scaled by
    how often it has been reused; the lowest scores are evicted first.
    """

    name = "vectorwise"

    @staticmethod
    def score(entry: CacheEntry) -> float:
        saved = entry.stats.operator_time + entry.stats.caching_time
        frequency = max(1, entry.stats.access_count)
        return saved * frequency / max(1, entry.nbytes)

    def choose_victims(
        self, entries: Sequence[CacheEntry], bytes_to_free: int
    ) -> list[CacheEntry]:
        ordered = sorted(entries, key=self.score)
        return _greedy_take(ordered, bytes_to_free)


class MonetDBPolicy(EvictionPolicy):
    """Frequency-and-weight recycling in the style of MonetDB [26].

    The per-item weight (its reconstruction cost) is capped at a multiple of
    the median weight across resident items, which bounds the worst case and —
    as the paper observes — makes the policy competitive with ReCache for most
    cache sizes.
    """

    name = "monetdb"

    def __init__(self, weight_cap_factor: float = 4.0) -> None:
        self.weight_cap_factor = weight_cap_factor

    def choose_victims(
        self, entries: Sequence[CacheEntry], bytes_to_free: int
    ) -> list[CacheEntry]:
        weights = sorted(
            entry.stats.operator_time + entry.stats.caching_time for entry in entries
        )
        median = weights[len(weights) // 2] if weights else 0.0
        cap = self.weight_cap_factor * median if median > 0 else float("inf")

        def score(entry: CacheEntry) -> float:
            weight = min(cap, entry.stats.operator_time + entry.stats.caching_time)
            frequency = max(1, entry.stats.access_count)
            return weight * frequency / max(1, entry.nbytes)

        ordered = sorted(entries, key=score)
        return _greedy_take(ordered, bytes_to_free)


class OfflinePolicy(EvictionPolicy):
    """Shared machinery for the clairvoyant policies: future access knowledge."""

    def __init__(self) -> None:
        #: for each cache-key string, the ascending list of query sequence
        #: numbers at which the key will be accessed.
        self._future: dict[str, list[int]] = {}
        self._now = 0

    def set_future_accesses(self, accesses: dict[str, list[int]]) -> None:
        """Install the full access schedule (key string -> sorted positions)."""
        self._future = {key: sorted(positions) for key, positions in accesses.items()}

    def advance_to(self, sequence: int) -> None:
        """Tell the policy what the current query sequence number is.

        Monotone: the sharded cache pushes the global sequence to every shard
        and pushes may arrive out of order, so the clock never moves backwards.
        """
        self._now = max(self._now, sequence)

    def next_access(self, entry: CacheEntry) -> float:
        """Position of the entry's next access after now; +inf if never again."""
        positions = self._future.get(entry.key.as_string(), [])
        index = bisect_right(positions, self._now)
        if index >= len(positions):
            return math.inf
        return positions[index]


class OfflineFarthestFirstPolicy(OfflinePolicy):
    """Belady's algorithm: evict the item accessed farthest in the future."""

    name = "offline-farthest"

    def choose_victims(
        self, entries: Sequence[CacheEntry], bytes_to_free: int
    ) -> list[CacheEntry]:
        ordered = sorted(entries, key=self.next_access, reverse=True)
        return _greedy_take(ordered, bytes_to_free)


class OfflineLogOptimalPolicy(OfflinePolicy):
    """Irani's size-class heuristic for weighted offline caching [24].

    Items are bucketed by ``floor(log2(size))``; within a bucket the farthest
    next access is the most evictable.  Across buckets, larger classes are
    preferred as victims because evicting one large item frees as much space as
    evicting many small ones, which is how the algorithm achieves its
    logarithmic approximation factor.
    """

    name = "offline-log-optimal"

    def choose_victims(
        self, entries: Sequence[CacheEntry], bytes_to_free: int
    ) -> list[CacheEntry]:
        def key(entry: CacheEntry) -> tuple[float, float]:
            size_class = math.floor(math.log2(max(2, entry.nbytes)))
            return (self.next_access(entry), size_class)

        ordered = sorted(entries, key=key, reverse=True)
        return _greedy_take(ordered, bytes_to_free)


_POLICY_FACTORIES = {
    "recache": ReCacheGreedyDualPolicy,
    "lru": LRUPolicy,
    "lfu": LFUPolicy,
    "proteus-lru": ProteusLRUPolicy,
    "vectorwise": VectorwisePolicy,
    "monetdb": MonetDBPolicy,
    "offline-farthest": OfflineFarthestFirstPolicy,
    "offline-log-optimal": OfflineLogOptimalPolicy,
}


def make_policy(name: str, recompute_benefit: bool = True) -> EvictionPolicy:
    """Instantiate an eviction policy by its configuration name."""
    try:
        factory = _POLICY_FACTORIES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown eviction policy {name!r}; expected one of {sorted(_POLICY_FACTORIES)}"
        ) from exc
    if name == "recache":
        return ReCacheGreedyDualPolicy(recompute_benefit=recompute_benefit)
    return factory()
