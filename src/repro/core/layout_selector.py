"""Automatic cache layout selection (Section 4 of the paper).

Two selectors live here:

* :class:`LayoutSelector` — decides, per cached item of nested data, whether to
  keep the Parquet-style striped layout or switch to the flattened relational
  columnar layout (and back), using the cost model of Section 4.2.
* :class:`RowColumnSelector` — the H2O-style chooser between relational row and
  column layouts for flat data (Section 4.3), driven by an estimate of the
  number of data-cache misses each layout would incur for the observed
  workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.cache_entry import CacheEntry, LayoutObservation
from repro.core.cost_model import LayoutCostModel, SwitchEstimate, closest_compute_cost


@dataclass
class LayoutDecision:
    """The outcome of a layout-selection check for one cached item."""

    target_layout: str | None
    estimate: SwitchEstimate | None

    @property
    def should_switch(self) -> bool:
        return self.target_layout is not None


class LayoutSelector:
    """Chooses between Parquet and relational columnar layouts per cached item."""

    def __init__(
        self,
        cost_model: LayoutCostModel | None = None,
        fallback_compute_factor: float = 1.0,
        window_size: int = 60,
    ) -> None:
        self.cost_model = cost_model or LayoutCostModel()
        #: when no Parquet history exists, estimate Parquet's compute cost as
        #: this multiple of the query's data-access cost (a conservative guess
        #: standing in for the paper's ComputeCost history lookup).
        self.fallback_compute_factor = fallback_compute_factor
        #: the observation window is reset whenever a switch happens (as in the
        #: paper) and additionally bounded to the most recent ``window_size``
        #: queries, so that a sustained change in the workload can overturn an
        #: arbitrarily long history while short bursts still cannot cause
        #: oscillation.  See DESIGN.md for the rationale of this refinement.
        self.window_size = window_size

    def observe(self, entry: CacheEntry, observation: LayoutObservation) -> None:
        """Record one query's measured scan costs against a cached item."""
        entry.add_observation(observation)
        if self.window_size and len(entry.observations) > self.window_size:
            del entry.observations[: len(entry.observations) - self.window_size]

    def decide(self, entry: CacheEntry) -> LayoutDecision:
        """Evaluate the switch condition for ``entry`` given its window."""
        if entry.is_lazy or entry.layout is None:
            return LayoutDecision(None, None)
        # Flat relational data never benefits from the Parquet layout; the
        # row-vs-column decision for it is handled by RowColumnSelector.
        if not entry.layout.schema.nested_paths():
            return LayoutDecision(None, None)

        flattened_rows = entry.layout.flattened_row_count
        if entry.layout.layout_name == "parquet":
            estimate = self.cost_model.evaluate_parquet_to_relational(
                entry.observations, flattened_rows
            )
            target = "columnar" if estimate.should_switch else None
            return LayoutDecision(target, estimate)

        if entry.layout.layout_name in ("columnar", "row"):
            record_count = entry.layout.record_count
            estimate = self.cost_model.evaluate_relational_to_parquet(
                entry.observations,
                flattened_rows,
                parquet_rows_for=lambda obs: (
                    flattened_rows if obs.accessed_nested else record_count
                ),
                compute_cost_estimator=lambda rows, cols: self._estimate_compute(
                    entry, rows, cols
                ),
            )
            target = "parquet" if estimate.should_switch else None
            return LayoutDecision(target, estimate)

        return LayoutDecision(None, None)

    def after_switch(self, entry: CacheEntry) -> None:
        """Move the observation window forward once a switch has happened."""
        entry.reset_observation_window()

    # ------------------------------------------------------------------
    def _estimate_compute(self, entry: CacheEntry, rows: int, columns: int) -> float:
        historical = closest_compute_cost(entry.parquet_history, rows, columns)
        if historical is not None:
            return historical
        # No Parquet history: approximate the compute cost from the average
        # per-row data cost of the current window, scaled to ``rows``.
        window = entry.observations
        if not window:
            return 0.0
        per_row = [
            obs.data_cost / max(1, obs.rows_accessed) for obs in window if obs.data_cost > 0
        ]
        if not per_row:
            return 0.0
        return self.fallback_compute_factor * (sum(per_row) / len(per_row)) * rows


@dataclass
class ColumnAccessProfile:
    """Workload statistics for one flat relation (input to RowColumnSelector)."""

    #: per-column width in bytes
    column_widths: dict[str, int]
    #: total number of rows in the cached relation
    row_count: int
    #: one entry per observed query: the set of columns it accessed
    query_column_sets: list[frozenset[str]]

    def record_query(self, columns: Sequence[str]) -> None:
        self.query_column_sets.append(frozenset(columns))


class RowColumnSelector:
    """H2O-style row-vs-column chooser for flat relational caches (Section 4.3).

    Both layouts' costs are estimated as the number of CPU data-cache misses
    the observed queries would incur: a row layout pulls whole tuples through
    the cache regardless of how many attributes a query touches, while a
    columnar layout touches only the accessed columns.
    """

    def __init__(self, cache_line_bytes: int = 64, reconstruction_attrs_per_line: int = 8) -> None:
        if cache_line_bytes <= 0:
            raise ValueError("cache_line_bytes must be positive")
        self.cache_line_bytes = cache_line_bytes
        #: how many attributes' worth of tuple reconstruction amortize into one
        #: extra cache line per row when a column store materializes wide tuples
        self.reconstruction_attrs_per_line = reconstruction_attrs_per_line

    def estimated_row_misses(self, profile: ColumnAccessProfile) -> float:
        row_width = sum(profile.column_widths.values())
        lines_per_tuple = math.ceil(row_width / self.cache_line_bytes) if row_width else 0
        return len(profile.query_column_sets) * profile.row_count * lines_per_tuple

    def estimated_column_misses(self, profile: ColumnAccessProfile) -> float:
        total = 0.0
        for columns in profile.query_column_sets:
            for column in columns:
                width = profile.column_widths.get(column, 8)
                total += math.ceil(profile.row_count * width / self.cache_line_bytes)
            # Tuple reconstruction: a query touching many columns gathers each
            # output tuple from that many separate memory regions, which costs
            # additional misses a row store does not pay.
            total += (
                profile.row_count * max(0, len(columns) - 1)
            ) // self.reconstruction_attrs_per_line
        return total

    def choose(self, profile: ColumnAccessProfile) -> str:
        """Return ``"row"`` or ``"columnar"``, whichever minimizes cache misses."""
        if not profile.query_column_sets:
            return "columnar"
        row_misses = self.estimated_row_misses(profile)
        column_misses = self.estimated_column_misses(profile)
        return "row" if row_misses < column_misses else "columnar"
