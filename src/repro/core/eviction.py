"""Cost-based cache eviction (Section 5.1, Algorithm 1 of the paper).

:class:`EvictionPolicy` is the interface every policy implements — the ReCache
Greedy-Dual variant below as well as the baselines in
:mod:`repro.core.policies`.  A policy is consulted by the cache manager with
the full set of resident entries and the number of bytes that must be freed; it
returns the entries to evict.

The ReCache policy follows Algorithm 1 faithfully:

1. recompute the benefit metric ``b(p)`` of every cached item from its current
   measurements (unless benefit recomputation is disabled, the ablation the
   paper reports costs up to 6%),
2. set ``H(p) = L(p) + b(p)`` and walk items in ascending ``H(p)`` order,
   collecting candidates until enough space would be reclaimed, updating the
   global baseline ``L``,
3. then actually evict the collected candidates in *descending size* order,
   stopping as soon as the space target is met — the knapsack-style heuristic
   that avoids evicting many more items than necessary — finishing with the
   smallest candidate that alone covers any remaining deficit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.benefit import benefit_metric
from repro.core.cache_entry import CacheEntry


class EvictionPolicy:
    """Interface shared by all eviction policies.

    Policies are not synchronized on their own: every callback runs under the
    owning :class:`~repro.core.cache_manager.ReCache` instance's lock (one
    policy instance per shard in the sharded cache), which is what keeps
    mutable policy state such as the Greedy-Dual baseline consistent.
    """

    name = "abstract"

    def on_admit(self, entry: CacheEntry, sequence: int) -> None:
        """Called when ``entry`` is inserted into the cache."""

    def on_access(self, entry: CacheEntry, sequence: int) -> None:
        """Called when ``entry`` is reused by a query."""

    def on_evict(self, entry: CacheEntry) -> None:
        """Called after ``entry`` has been removed from the cache."""

    def choose_victims(
        self, entries: Sequence[CacheEntry], bytes_to_free: int
    ) -> list[CacheEntry]:
        """Return the entries to evict so that at least ``bytes_to_free`` bytes
        are reclaimed.  Implementations may return more than strictly needed
        (they must never return fewer bytes than requested unless the cache
        simply does not contain enough evictable data)."""
        raise NotImplementedError


def total_bytes(entries: Iterable[CacheEntry]) -> int:
    return sum(entry.nbytes for entry in entries)


def size_aware_victims(
    candidates: Sequence[CacheEntry], bytes_to_free: int
) -> list[CacheEntry]:
    """The phase-2 size-aware trim shared by all benefit-ranked evictions.

    Among candidates the ranking phase already marked evictable, evict in
    descending size order so that far fewer items are actually removed.  After
    each eviction, if a single smaller candidate covers the remaining deficit
    on its own, evict that one (the smallest such candidate, since the pool is
    kept in ascending size order) and stop — the paper's final refinement step.
    """
    pool = sorted(candidates, key=lambda e: e.nbytes)
    victims: list[CacheEntry] = []
    remaining = bytes_to_free
    while remaining > 0 and pool:
        largest = pool.pop()  # largest remaining candidate
        victims.append(largest)
        remaining -= largest.nbytes
        if remaining <= 0:
            break
        closer = next((e for e in pool if e.nbytes >= remaining), None)
        if closer is not None:
            victims.append(closer)
            remaining -= closer.nbytes
            break
    return victims


def choose_global_victims(
    entries: Sequence[CacheEntry], bytes_to_free: int
) -> list[CacheEntry]:
    """Pick eviction victims across *all* shards of a sharded cache.

    The cross-shard admission-balancing round cannot use the per-shard
    Greedy-Dual ``H(p)`` values — each shard maintains its own baseline ``L``,
    so ``H`` values from different shards are not comparable.  Instead rank
    every resident entry by the global benefit metric ``b(p)`` alone (the
    single-pool view of Algorithm 1), collect the lowest-benefit candidates
    until the deficit is covered, then apply the same size-aware phase-2 trim
    the per-shard policy uses.
    """
    if bytes_to_free <= 0 or not entries:
        return []
    ranked = sorted(entries, key=benefit_metric)
    candidates: list[CacheEntry] = []
    freed = 0
    for entry in ranked:
        if freed >= bytes_to_free:
            break
        candidates.append(entry)
        freed += entry.nbytes
    if freed < bytes_to_free:
        # Not enough evictable data anywhere: everything goes.
        return candidates
    return size_aware_victims(candidates, bytes_to_free)


class ReCacheGreedyDualPolicy(EvictionPolicy):
    """ReCache's Greedy-Dual variant with the size-aware eviction heuristic."""

    name = "recache"

    def __init__(self, recompute_benefit: bool = True, size_aware: bool = True) -> None:
        #: the Greedy-Dual global baseline ``L``
        self.baseline = 0.0
        self.recompute_benefit = recompute_benefit
        #: disable the descending-size phase-2 heuristic to fall back to the
        #: plain Greedy-Dual eviction order (ablation bench)
        self.size_aware = size_aware

    # ------------------------------------------------------------------
    # Greedy-Dual bookkeeping
    # ------------------------------------------------------------------
    def on_admit(self, entry: CacheEntry, sequence: int) -> None:
        entry.gd_baseline = self.baseline
        if not self.recompute_benefit:
            entry.frozen_benefit = benefit_metric(entry)

    def on_access(self, entry: CacheEntry, sequence: int) -> None:
        # Accessing an item refreshes its baseline: its H value regains the
        # full benefit on top of the current global L.
        entry.gd_baseline = self.baseline
        if not self.recompute_benefit and entry.frozen_benefit is None:
            entry.frozen_benefit = benefit_metric(entry)

    def _benefit(self, entry: CacheEntry) -> float:
        if self.recompute_benefit or entry.frozen_benefit is None:
            return benefit_metric(entry)
        return entry.frozen_benefit

    def h_value(self, entry: CacheEntry) -> float:
        """``H(p) = L(p) + b(p)`` for one cached item."""
        return entry.gd_baseline + self._benefit(entry)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def choose_victims(
        self, entries: Sequence[CacheEntry], bytes_to_free: int
    ) -> list[CacheEntry]:
        if bytes_to_free <= 0 or not entries:
            return []

        # Phase 1: walk items in ascending H(p) order, collecting candidates
        # until their combined size covers the deficit; L advances to the
        # largest H(p) among the collected candidates.
        ranked = sorted(entries, key=self.h_value)
        candidates: list[CacheEntry] = []
        freed = 0
        new_baseline = self.baseline
        for entry in ranked:
            if freed >= bytes_to_free:
                break
            candidates.append(entry)
            freed += entry.nbytes
            h = self.h_value(entry)
            if h > new_baseline:
                new_baseline = h
        if freed < bytes_to_free:
            # Not enough evictable data: everything goes.
            self.baseline = new_baseline
            return candidates
        self.baseline = new_baseline
        if not self.size_aware:
            return candidates

        # Phase 2: among the candidates (all of which the original algorithm
        # would have evicted), apply the shared size-aware trim.
        return size_aware_victims(candidates, bytes_to_free)
