"""ReCache core: the paper's primary contribution.

The cache manager (:class:`~repro.core.cache_manager.ReCache`) coordinates

* cost-based **eviction** using a Greedy-Dual variant whose benefit metric is
  ``b(p) = n * (t + c - s - l) / log(B)`` (Section 5.1, Algorithm 1),
* reactive **admission** that starts eager and downgrades to lazy (offsets
  only) when the extrapolated caching overhead exceeds a threshold
  (Section 5.2),
* automatic **layout selection** between Parquet-style nested columnar,
  relational columnar and relational row layouts, driven by measured data and
  compute costs (Section 4),
* **exact matching and range-predicate subsumption** of cached operator
  results, backed by per-(source, field) R-trees (Section 3.2–3.3).
"""

from repro.core.config import ReCacheConfig
from repro.core.cache_entry import CacheEntry, CacheKey, CacheStats, LayoutObservation
from repro.core.benefit import benefit_metric
from repro.core.cache_manager import CacheManagerStats, CacheMatch, ReCache
from repro.core.sharded_cache import AtomicCounter, ShardedReCache, shard_limits
from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.layout_selector import LayoutSelector, RowColumnSelector
from repro.core.cost_model import LayoutCostModel
from repro.core.eviction import EvictionPolicy, ReCacheGreedyDualPolicy
from repro.core.policies import (
    LFUPolicy,
    LRUPolicy,
    MonetDBPolicy,
    OfflineFarthestFirstPolicy,
    OfflineLogOptimalPolicy,
    ProteusLRUPolicy,
    VectorwisePolicy,
    make_policy,
)
from repro.core.subsumption import SubsumptionIndex

__all__ = [
    "ReCacheConfig",
    "CacheEntry",
    "CacheKey",
    "CacheStats",
    "LayoutObservation",
    "benefit_metric",
    "CacheManagerStats",
    "CacheMatch",
    "ReCache",
    "ShardedReCache",
    "AtomicCounter",
    "shard_limits",
    "AdmissionController",
    "AdmissionDecision",
    "LayoutSelector",
    "RowColumnSelector",
    "LayoutCostModel",
    "EvictionPolicy",
    "ReCacheGreedyDualPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "ProteusLRUPolicy",
    "VectorwisePolicy",
    "MonetDBPolicy",
    "OfflineFarthestFirstPolicy",
    "OfflineLogOptimalPolicy",
    "make_policy",
    "SubsumptionIndex",
]
