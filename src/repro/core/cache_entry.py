"""Cache entries: keys, per-entry statistics and layout observations.

A :class:`CacheEntry` represents one cached operator result — either an
*eager* entry holding a fully materialized :class:`~repro.layouts.base.CacheLayout`,
or a *lazy* entry holding only the ordinals of the satisfying raw records
(Section 5.2's low-overhead caching mode).  The entry carries the timing
statistics the benefit metric needs (t, c, s, l, n, B) and the per-query layout
observations the layout selector consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.engine.expressions import Expression
from repro.layouts.base import CacheLayout

_entry_ids = itertools.count(1)


@dataclass(frozen=True)
class CacheKey:
    """Identity of a cached operator: the source it reads and its predicate.

    Two select operators match when they read the same source and evaluate the
    same algebraic expression (Section 3.2); expression identity is structural,
    via :meth:`~repro.engine.expressions.Expression.signature`.
    """

    source: str
    predicate_signature: str
    operation: str = "select"

    @classmethod
    def for_select(cls, source: str, predicate: Expression | None) -> "CacheKey":
        signature = predicate.signature() if predicate is not None else "true"
        return cls(source=source, predicate_signature=signature, operation="select")

    def as_string(self) -> str:
        return f"{self.operation}:{self.source}:{self.predicate_signature}"


@dataclass
class CacheStats:
    """The measurements feeding the benefit metric (Figure 8 of the paper)."""

    #: number of times the cached item has been reused (``n``)
    reuse_count: int = 0
    #: time spent executing the operator over raw data, including parsing (``t``)
    operator_time: float = 0.0
    #: time spent building the cache (``c``)
    caching_time: float = 0.0
    #: most recent time spent scanning the cache on reuse (``s``)
    scan_time: float = 0.0
    #: most recent time spent looking up a matching cache (``l``)
    lookup_time: float = 0.0
    #: logical sequence number of the last access (for recency-based policies)
    last_access: int = 0
    #: logical sequence number at creation
    created_at: int = 0
    #: total number of accesses including the creating query
    access_count: int = 1

    def record_access(self, sequence: int, scan_time: float, lookup_time: float) -> None:
        self.reuse_count += 1
        self.access_count += 1
        self.last_access = sequence
        # Keep running averages so that one noisy measurement does not dominate.
        if self.scan_time == 0.0:
            self.scan_time = scan_time
        else:
            self.scan_time = 0.5 * self.scan_time + 0.5 * scan_time
        if self.lookup_time == 0.0:
            self.lookup_time = lookup_time
        else:
            self.lookup_time = 0.5 * self.lookup_time + 0.5 * lookup_time


@dataclass
class LayoutObservation:
    """One query's measured cost of scanning a cached item (Section 4.2).

    ``data_cost`` is the paper's :math:`D_i` (time loading values from the
    cache), ``compute_cost`` its :math:`C_i` (branching / level interpretation
    / predicate evaluation), ``rows_accessed`` :math:`r_i` and
    ``columns_accessed`` :math:`c_i`.
    """

    query_index: int
    layout_name: str
    data_cost: float
    compute_cost: float
    rows_accessed: int
    columns_accessed: int
    accessed_nested: bool = False


class CacheEntry:
    """One cached operator result plus all of its bookkeeping."""

    def __init__(
        self,
        key: CacheKey,
        source: str,
        source_format: str,
        predicate: Expression | None,
        fields: list[str],
        mode: str = "eager",
        layout: CacheLayout | None = None,
        lazy_offsets: list[int] | None = None,
    ) -> None:
        if mode not in ("eager", "lazy"):
            raise ValueError(f"mode must be 'eager' or 'lazy', got {mode!r}")
        if mode == "eager" and layout is None:
            raise ValueError("eager entries require a layout")
        if mode == "lazy" and lazy_offsets is None:
            raise ValueError("lazy entries require record offsets")
        self.entry_id = next(_entry_ids)
        self.key = key
        self.source = source
        self.source_format = source_format
        self.predicate = predicate
        self.fields = list(fields)
        self.mode = mode
        self.layout = layout
        self.lazy_offsets = list(lazy_offsets) if lazy_offsets is not None else None
        self.stats = CacheStats()
        #: layout observations since the last layout switch (the selector's window)
        self.observations: list[LayoutObservation] = []
        #: all parquet-layout observations ever recorded, used by
        #: ``ComputeCost(rows, cols)`` when estimating a switch back to Parquet
        self.parquet_history: list[LayoutObservation] = []
        #: Greedy-Dual bookkeeping: the L value at the last access
        self.gd_baseline: float = 0.0
        #: cached H value computed during the previous eviction pass (used when
        #: benefit recomputation is disabled — the ablation of Section 5.1)
        self.frozen_benefit: float | None = None
        self.layout_switches: int = 0
        #: set when an eager upgrade was rejected because the materialized
        #: layout cannot fit the byte budget — stops every later reuse from
        #: re-parsing and rebuilding a layout that will be rejected again
        self.upgrade_blocked: bool = False

    # ------------------------------------------------------------------
    # Size and layout helpers
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Size of the cached data (``B`` in the benefit metric)."""
        if self.mode == "lazy":
            return 8 * len(self.lazy_offsets or [])
        assert self.layout is not None
        return self.layout.nbytes

    @property
    def layout_name(self) -> str:
        if self.mode == "lazy":
            return "lazy"
        assert self.layout is not None
        return self.layout.layout_name

    @property
    def is_lazy(self) -> bool:
        return self.mode == "lazy"

    def supports_fields(self, fields: list[str]) -> bool:
        """True when the cached data can answer a query over ``fields``."""
        if self.mode == "lazy":
            # Lazy caches go back to the raw file, so any field is available.
            return True
        assert self.layout is not None
        return self.layout.supports_fields(fields)

    # ------------------------------------------------------------------
    # Statistics updates
    # ------------------------------------------------------------------
    def record_creation(self, sequence: int, operator_time: float, caching_time: float) -> None:
        self.stats.created_at = sequence
        self.stats.last_access = sequence
        self.stats.operator_time = operator_time
        self.stats.caching_time = caching_time

    def record_reuse(self, sequence: int, scan_time: float, lookup_time: float) -> None:
        self.stats.record_access(sequence, scan_time, lookup_time)

    def add_observation(self, observation: LayoutObservation) -> None:
        self.observations.append(observation)
        if observation.layout_name == "parquet":
            self.parquet_history.append(observation)

    def reset_observation_window(self) -> None:
        """Move the layout-selection window forward after a switch (Section 4.2)."""
        self.observations = []

    def replace_layout(self, layout: CacheLayout) -> None:
        """Install a converted layout (after a layout switch or lazy upgrade)."""
        self.layout = layout
        self.mode = "eager"
        self.lazy_offsets = None
        self.layout_switches += 1

    def upgrade_to_eager(self, layout: CacheLayout, caching_time: float) -> None:
        """Replace a lazy entry's offsets with a fully materialized layout."""
        self.layout = layout
        self.mode = "eager"
        self.lazy_offsets = None
        self.stats.caching_time += caching_time

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CacheEntry(id={self.entry_id}, key={self.key.as_string()!r}, "
            f"mode={self.mode}, layout={self.layout_name}, bytes={self.nbytes})"
        )
