"""Shared-memory export registry for cached flat columnar views.

The process-pool execution path (``repro.engine.procpool``) cannot share
Python objects with worker processes, but the hot cache entries it serves
are exactly the ones whose columns are already flat and numeric.  This
module publishes those columns zero-copy(ish) into POSIX shared memory so
workers can map them with ``np.ndarray(buffer=...)`` and run the same
vectorized batch pipeline the coordinator threads use.

Lifecycle invariants (machine-checked by the recheck-lint ``shm-lifecycle``
rule and the procpool lifecycle tests):

* every segment created here has a paired unlink path — the failure branch
  of the builder, :meth:`ShmRegistry.retire` (wired into cache eviction),
  and :meth:`ShmRegistry.unlink_all` (wired into engine shutdown and a
  process-exit hook);
* segment names are generation-stamped (``rcshm-<pid>-<registry>-<serial>``,
  where ``<registry>`` is a process-wide instance counter so engines sharing
  a process never collide) and never reused, so a worker holding a stale
  descriptor attaches a dead name and gets a typed failure instead of
  silently reading evicted bytes;
* the registry untracks its segments from ``multiprocessing``'s resource
  tracker — ownership is explicit here, not in the tracker daemon, so
  spawn-mode children do not double-unlink coordinator segments.

Only eager, flat (no nested ``record_row_counts``) :class:`ColumnarLayout`
entries whose columns are pure ``float``/``int`` are exportable; anything
else returns ``None`` and the caller falls back to in-process execution.

# recheck-lint: check-shm-lifecycle
"""

from __future__ import annotations

import atexit
import contextlib
import itertools
import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.cache_entry import CacheEntry
from repro.layouts.columnar import ColumnarLayout


@dataclass(frozen=True)
class ShmColumnRef:
    """One column's region inside a shared segment (picklable descriptor)."""

    field: str
    dtype: str  # numpy dtype string: "float64" or "int64"
    offset: int
    count: int


@dataclass(frozen=True)
class EntryExport:
    """A cache entry's complete shared-memory descriptor.

    ``generation`` equals the registry serial baked into ``segment`` — a
    worker that attaches a retired generation gets ``FileNotFoundError``
    (the name is never reused), which the coordinator treats as a cache
    miss for offload purposes and re-executes locally.
    """

    segment: str
    generation: int
    row_count: int
    fields: tuple[str, ...]
    columns: tuple[ShmColumnRef, ...]


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Remove ``shm`` from the resource tracker; this registry owns cleanup."""
    with contextlib.suppress(KeyError, ValueError):  # tracker internals vary
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001


def _discard_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink one segment; tolerant of an already-unlinked name."""
    shm.close()
    # FileNotFoundError: raced with process exit, already unlinked.
    with contextlib.suppress(FileNotFoundError):
        # ``unlink()`` sends an UNREGISTER for a name this registry already
        # untracked at creation; re-register first so the tracker daemon's
        # bookkeeping stays balanced (otherwise it prints KeyError noise).
        resource_tracker.register(shm._name, "shared_memory")  # noqa: SLF001
        shm.unlink()


_LIVE_REGISTRIES: weakref.WeakSet = weakref.WeakSet()

#: process-wide instance counter: registries of distinct engines in one
#: process must mint segment names in disjoint namespaces.
_REGISTRY_SEQ = itertools.count(1)


def _unlink_registries_at_exit() -> None:
    for registry in list(_LIVE_REGISTRIES):
        registry.unlink_all()


atexit.register(_unlink_registries_at_exit)


class ShmRegistry:
    """Publishes exportable cache entries into shared memory, once each.

    The registry is attached to the cache (``ReCache.attach_shm_registry``)
    so eviction retires the segment in the same critical section that drops
    the entry — a worker can then only ever observe "segment present with
    live generation" or "name gone", never stale bytes under a live name.
    """

    GUARDED_BY = {
        "_exports": "_lock",
        "_ineligible": "_lock",
        "_serial": "_lock",
        "_closed": "_lock",
    }

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._namespace = f"rcshm-{os.getpid()}-{next(_REGISTRY_SEQ)}"
        #: entry_id -> (entry, segment handle, export descriptor)
        self._exports: dict[int, tuple[CacheEntry, shared_memory.SharedMemory, EntryExport]] = {}
        #: entry_ids whose *column typing* failed — stable across layout
        #: switches (values survive conversion), so safe to cache forever
        self._ineligible: set[int] = set()
        self._serial = 0
        self._closed = False
        _LIVE_REGISTRIES.add(self)

    # -- export ---------------------------------------------------------------
    def export_for(self, entry: CacheEntry) -> EntryExport | None:
        """The entry's shared-memory descriptor, building it on first use.

        Returns ``None`` when the entry is not exportable (lazy, non-columnar,
        nested, or non-numeric columns) or the registry is closed.  Cheap
        structural gates are re-checked every call — a lazy entry may be
        upgraded to eager and a layout switch may make it columnar later;
        only the typing verdict is cached.
        """
        with self._lock:
            if self._closed:
                return None
            cached = self._exports.get(entry.entry_id)
            if cached is not None:
                return cached[2]
            if entry.entry_id in self._ineligible:
                return None
        layout = entry.layout
        if entry.mode != "eager" or not isinstance(layout, ColumnarLayout):
            return None
        if layout.record_row_counts is not None:
            return None
        arrays: dict[str, np.ndarray] = {}
        for field in layout.fields:
            arr = _typed_column(layout.column(field))
            if arr is None:
                with self._lock:
                    self._ineligible.add(entry.entry_id)
                return None
            arrays[field] = arr
        with self._lock:
            if self._closed:
                return None
            self._serial += 1
            serial = self._serial
        shm, refs = self._build_segment(serial, arrays)
        export = EntryExport(
            segment=shm.name,
            generation=serial,
            row_count=layout.flattened_row_count,
            fields=tuple(layout.fields),
            columns=refs,
        )
        with self._lock:
            existing = self._exports.get(entry.entry_id)
            if existing is None and not self._closed:
                self._exports[entry.entry_id] = (entry, shm, export)
                return export
            installed = existing[2] if existing is not None else None
        # Lost a concurrent-build race (or the registry closed underneath
        # us): our fresh segment was never published, discard it.
        _discard_segment(shm)
        return installed

    def _build_segment(
        self, serial: int, arrays: dict[str, np.ndarray]
    ) -> tuple[shared_memory.SharedMemory, tuple[ShmColumnRef, ...]]:
        """Create one generation-stamped segment holding every column."""
        total = sum(arr.nbytes for arr in arrays.values())
        shm = shared_memory.SharedMemory(
            name=f"{self._namespace}-{serial}", create=True, size=max(total, 1)
        )
        _untrack(shm)
        try:
            refs = []
            offset = 0
            for field, arr in arrays.items():
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset)
                view[:] = arr
                refs.append(ShmColumnRef(field, str(arr.dtype), offset, int(arr.shape[0])))
                offset += arr.nbytes
        except BaseException:
            _discard_segment(shm)
            raise
        return shm, tuple(refs)

    # -- retirement -----------------------------------------------------------
    def retire(self, entry: CacheEntry) -> None:
        """Unlink the entry's segment (idempotent; called on eviction)."""
        with self._lock:
            record = self._exports.pop(entry.entry_id, None)
        if record is not None:
            _discard_segment(record[1])

    def unlink_all(self) -> None:
        """Unlink every live segment (idempotent; shutdown + exit hook)."""
        with self._lock:
            records = list(self._exports.values())
            self._exports.clear()
        for record in records:
            _discard_segment(record[1])

    def close(self) -> None:
        """Stop accepting exports and unlink everything."""
        with self._lock:
            self._closed = True
        self.unlink_all()

    # -- introspection --------------------------------------------------------
    def live_segment_names(self) -> list[str]:
        with self._lock:
            return [record[1].name for record in self._exports.values()]

    @property
    def export_count(self) -> int:
        with self._lock:
            return len(self._exports)


def _typed_column(values: list) -> np.ndarray | None:
    """A float64/int64 array for a pure-typed column, else ``None``.

    ``type(v) is`` checks (not ``isinstance``) keep ``bool`` out of int
    columns and reject None/str/mixed columns — the exported bytes must
    round-trip to the exact Python values the thread path would scan, or
    parity with in-process execution breaks.
    """
    if not values:
        return np.empty(0, dtype=np.float64)
    first = type(values[0])
    if first is float:
        if any(type(v) is not float for v in values):
            return None
        return np.asarray(values, dtype=np.float64)
    if first is int:
        if any(type(v) is not int for v in values):
            return None
        try:
            return np.asarray(values, dtype=np.int64)
        except OverflowError:
            return None
    return None
