"""Per-source circuit breaker: route around caching after repeated faults.

Each raw source accumulates a consecutive-failure count; once it reaches
``failure_threshold`` the breaker *opens* for that source and the planner
stops consulting/populating the cache for it (queries run as plain raw
scans, which is the degraded-but-correct path).  After ``cooldown``
seconds the breaker half-opens: the next query probes the normal path
again, and one success closes the breaker.

The breaker is a leaf lock: it is only consulted from the planning path
with no other lock held, and its critical sections are dictionary updates.
"""

from __future__ import annotations

import threading
import time


class SourceCircuitBreaker:
    """Consecutive-failure breaker keyed by source name."""

    GUARDED_BY = {"_failures": "_lock", "_opened_at": "_lock"}

    def __init__(self, failure_threshold: int = 3, cooldown: float = 30.0) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._failures: dict[str, int] = {}  # guarded-by: self._lock
        self._opened_at: dict[str, float] = {}  # guarded-by: self._lock

    def record_failure(self, source: str) -> bool:
        """Count one fault against ``source``; True when the breaker opens."""
        now = time.monotonic()
        with self._lock:
            count = self._failures.get(source, 0) + 1
            self._failures[source] = count
            if count >= self.failure_threshold and source not in self._opened_at:
                self._opened_at[source] = now
            return source in self._opened_at

    def record_success(self, source: str) -> None:
        """A healthy query against ``source`` closes/resets the breaker."""
        with self._lock:
            self._failures.pop(source, None)
            self._opened_at.pop(source, None)

    def is_open(self, source: str) -> bool:
        """True while queries against ``source`` should bypass the cache.

        After ``cooldown`` the source half-opens: this returns False so one
        probe query takes the normal path; its success closes the breaker,
        its failure re-opens it immediately (the failure count is intact).
        """
        now = time.monotonic()
        with self._lock:
            opened = self._opened_at.get(source)
            if opened is None:
                return False
            if now - opened >= self.cooldown:
                del self._opened_at[source]  # half-open: allow one probe
                return False
            return True

    def open_sources(self) -> list[str]:
        with self._lock:
            return sorted(self._opened_at)
