"""Query subsumption support for range predicates (Section 3.3).

ReCache reuses a cached selection result for a *different* query when the
cached predicate's range fully covers the new predicate's range.  To avoid a
linear scan over all cached items, the index below keeps one R-tree per
(source, numeric field) pair and inserts the bounding interval of every cached
range predicate.  A lookup then asks each field's tree for the cached entries
whose interval contains the new interval and intersects the candidate sets —
logarithmic in the number of cached predicates.

The index can also operate without the R-tree (``use_rtree=False``), falling
back to the naive linear scan; the ablation bench compares the two.

The index itself is not synchronized: every call happens under the owning
:class:`~repro.core.cache_manager.ReCache` instance's lock (one lock per shard
in the sharded cache), which also keeps the timing counters consistent.
"""

from __future__ import annotations

import math
import time

from repro.core.cache_entry import CacheEntry
from repro.engine.expressions import Expression, extract_ranges, predicate_subsumes
from repro.rtree import Rect, RTree

#: numeric stand-ins for unbounded interval ends when building R-tree boxes
_NEG_BOUND = -1e18
_POS_BOUND = 1e18


def _interval_rect(low: float, high: float) -> Rect:
    low = _NEG_BOUND if math.isinf(low) and low < 0 else low
    high = _POS_BOUND if math.isinf(high) and high > 0 else high
    return Rect.from_interval(low, high)


class SubsumptionIndex:
    """Finds cached entries whose predicate subsumes a new predicate."""

    def __init__(self, use_rtree: bool = True, max_entries: int = 8) -> None:
        self.use_rtree = use_rtree
        self._max_entries = max_entries
        #: (source, field) -> R-tree of (interval rect, entry)
        self._trees: dict[tuple[str, str], RTree] = {}
        #: per-source entries whose predicate has no analysable range (e.g.
        #: full scans); they subsume everything over the same source.
        self._unconstrained: dict[str, list[CacheEntry]] = {}
        #: all registered entries per source (the linear-scan fallback)
        self._by_source: dict[str, list[CacheEntry]] = {}
        #: cumulative seconds spent inserting into the index (the paper reports
        #: 2-15 microseconds per insertion)
        self.insert_seconds = 0.0
        self.lookup_seconds = 0.0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, entry: CacheEntry) -> None:
        """Add a cached entry's predicate ranges to the index."""
        started = time.perf_counter()
        self._by_source.setdefault(entry.source, []).append(entry)
        ranges = extract_ranges(entry.predicate)
        if not ranges:
            self._unconstrained.setdefault(entry.source, []).append(entry)
        elif self.use_rtree:
            for field, interval in ranges.items():
                tree = self._trees.setdefault(
                    (entry.source, field), RTree(max_entries=self._max_entries)
                )
                tree.insert(_interval_rect(interval.low, interval.high), entry)
        self.insert_seconds += time.perf_counter() - started

    def unregister(self, entry: CacheEntry) -> None:
        """Remove an evicted entry from the index."""
        if entry in self._by_source.get(entry.source, []):
            self._by_source[entry.source].remove(entry)
        if entry in self._unconstrained.get(entry.source, []):
            self._unconstrained[entry.source].remove(entry)
        if not self.use_rtree:
            return
        for field, interval in extract_ranges(entry.predicate).items():
            tree = self._trees.get((entry.source, field))
            if tree is not None:
                tree.delete(_interval_rect(interval.low, interval.high), entry)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find_subsuming(
        self,
        source: str,
        predicate: Expression | None,
        fields: list[str],
        exclude_key: str | None = None,
    ) -> list[CacheEntry]:
        """Entries over ``source`` whose predicate subsumes ``predicate`` and
        whose cached data can answer a query over ``fields``.

        ``exclude_key`` drops the entry with that cache-key string (the exact
        match, which the caller probes separately) from the result.
        """
        started = time.perf_counter()
        try:
            if not self.use_rtree:
                return self._linear_lookup(source, predicate, fields, exclude_key)
            candidates = self._rtree_candidates(source, predicate)
            return self._verify(candidates, predicate, fields, exclude_key)
        finally:
            self.lookup_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rtree_candidates(self, source: str, predicate: Expression | None) -> list[CacheEntry]:
        candidates: list[CacheEntry] = list(self._unconstrained.get(source, []))
        ranges = extract_ranges(predicate)
        if not ranges:
            # A full scan can only be answered by unconstrained caches.
            return candidates
        # For each constrained field of the new predicate, collect entries whose
        # cached interval for that field contains the new interval; an entry
        # constrained on some field must appear in that field's tree, so taking
        # the union of per-field hits plus the unconstrained entries is a safe
        # superset, which _verify then narrows down.
        seen: set[int] = {id(entry) for entry in candidates}
        for field, interval in ranges.items():
            tree = self._trees.get((source, field))
            if tree is None:
                continue
            rect = _interval_rect(interval.low, interval.high)
            for entry in tree.search_containing(rect):
                if id(entry) not in seen:
                    seen.add(id(entry))
                    candidates.append(entry)
        return candidates

    def _linear_lookup(
        self,
        source: str,
        predicate: Expression | None,
        fields: list[str],
        exclude_key: str | None = None,
    ) -> list[CacheEntry]:
        return self._verify(self._by_source.get(source, []), predicate, fields, exclude_key)

    @staticmethod
    def _verify(
        candidates: list[CacheEntry],
        predicate: Expression | None,
        fields: list[str],
        exclude_key: str | None = None,
    ) -> list[CacheEntry]:
        matches = []
        for entry in candidates:
            if exclude_key is not None and entry.key.as_string() == exclude_key:
                continue
            if not predicate_subsumes(entry.predicate, predicate):
                continue
            if not entry.supports_fields(fields):
                continue
            matches.append(entry)
        return matches
