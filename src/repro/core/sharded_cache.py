"""A sharded, thread-safe ReCache for the concurrent serving layer.

:class:`ShardedReCache` partitions cache entries by ``hash(CacheKey)`` across N
independently locked :class:`~repro.core.cache_manager.ReCache` shards.  Each
shard owns its own :class:`~repro.core.subsumption.SubsumptionIndex`, eviction
policy instance (including Greedy-Dual baseline state) and statistics, so the
hot path — an exact-match lookup followed by a cache scan — touches exactly one
shard lock and scales with cores instead of serializing on a single mutex.

Byte budget: the global ``cache_size_limit`` is one shared pool — a
:class:`SharedBudget` tracks the global occupancy (an O(1) read that takes no
shard lock), the hard limit and in-flight admission reservations.  Shards keep
a *nominal* proportional share (``shard_limits``) for accounting, but the
binding constraint is the global limit: a shard admitting an item larger than
its share simply *borrows* global headroom (counted in
``stats.extras["borrowed_admissions"]``), and when no single shard can free
enough space a cross-shard eviction round picks victims across all shards by
the global benefit metric (:func:`repro.core.eviction.choose_global_victims`).
This restores the paper's single-pool Greedy-Dual semantics (Section 5.1,
Algorithm 1): the static split's fragmentation — an item larger than one
shard's share rejected while the cache is mostly empty — cannot happen.

What is and is not atomic:

* exact lookups, admissions, evictions and reuse bookkeeping are atomic *per
  shard* (the entry's home shard lock covers them); a layout *switch* decides
  and installs under the shard lock but performs the conversion itself outside
  it (see :meth:`~repro.core.cache_manager.ReCache.record_reuse`), so a shard
  serving a layout rebuild keeps answering lookups meanwhile;
* a subsumption lookup probes the home shard first and then the other shards
  one at a time — it never holds two shard locks at once, so the candidate set
  is a consistent-per-shard snapshot rather than a global snapshot;
* the query sequence number is issued globally (one atomic increment per
  query) and pushed to every shard, keeping recency stamps comparable across
  shards;
* aggregate ``stats`` are a merged snapshot: per-shard counters are summed at
  read time, and lookup counters (which the wrapper tracks itself, since a
  subsumption probe spans shards) are added on top.

With ``shard_count=1`` the behaviour — entry placement, eviction order,
statistics — is identical to a plain ``ReCache``.
"""

from __future__ import annotations

import threading
import time
import zlib

from repro.core.benefit import benefit_metric
from repro.core.cache_entry import CacheEntry, CacheKey, LayoutObservation
from repro.core.cache_manager import CacheManagerStats, CacheMatch, ReCache
from repro.core.config import ReCacheConfig
from repro.core.eviction import EvictionPolicy, choose_global_victims
from repro.engine.expressions import Expression
from repro.faults import runtime as faults
from repro.layouts.base import CacheLayout


class AtomicCounter:
    """A lock-protected integer counter (CPython has no atomic int add)."""

    __slots__ = ("_lock", "_value")

    GUARDED_BY = {"_value": "_lock"}

    def __init__(self, initial: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = initial

    def add(self, delta: int) -> int:
        with self._lock:
            self._value += delta
            return self._value

    @property
    def value(self) -> int:
        return self._value  # unguarded-read: GIL-atomic int; monitoring path


class SharedBudget(AtomicCounter):
    """The single global byte budget all shards draw from.

    The counter part mirrors the global occupancy (shards feed every byte
    delta into it), and on top of that the budget carries the hard ``limit``
    and in-flight admission *reservations*.  An admission first reserves its
    bytes — which can only succeed while ``occupancy + reserved + nbytes``
    stays within the limit — then installs the entry (occupancy grows) and
    releases the reservation.  Because concurrent admissions on different
    shards each hold a reservation while they install, the global invariant
    ``total_bytes <= cache_size_limit`` holds at every instant without any
    shard ever taking another shard's lock.

    This is what lets a shard *borrow* headroom beyond its proportional share:
    the binding constraint is the global limit, so an item larger than
    ``cache_size_limit / shard_count`` is admissible whenever the cache as a
    whole has room — exactly the fragmentation-free behaviour of the paper's
    single-pool Greedy-Dual eviction (Section 5.1).
    """

    __slots__ = ("limit", "_reserved")

    GUARDED_BY = {"_value": "_lock", "_reserved": "_lock"}

    def __init__(self, limit: int | None = None, initial: int = 0) -> None:
        super().__init__(initial)
        #: the global ``cache_size_limit`` (None = unlimited)
        self.limit = limit
        self._reserved = 0

    def headroom(self) -> int | None:
        """Unreserved bytes left under the limit (None when unlimited)."""
        if self.limit is None:
            return None
        with self._lock:
            return self.limit - self._value - self._reserved

    def deficit_for(self, nbytes: int) -> int:
        """Bytes that must be freed before ``nbytes`` can be reserved."""
        if self.limit is None:
            return 0
        with self._lock:
            return max(0, self._value + self._reserved + nbytes - self.limit)

    def try_reserve(self, nbytes: int) -> bool:
        """Reserve headroom for an admission; False when it would not fit."""
        injector = faults.injector_for("budget.reserve")
        if injector is not None and injector.fires():
            return False  # injected budget exhaustion: admission denied
        with self._lock:
            if self.limit is not None and self._value + self._reserved + nbytes > self.limit:
                return False
            self._reserved += nbytes
            return True

    def release(self, nbytes: int) -> None:
        """Return a reservation (after install, or an abandoned admission)."""
        with self._lock:
            self._reserved -= nbytes

    @property
    def reserved(self) -> int:
        return self._reserved  # unguarded-read: GIL-atomic int; test/monitoring path


def shard_limits(limit: int | None, shard_count: int) -> list[int | None]:
    """Split a global byte budget into proportional per-shard shares.

    The remainder bytes of an uneven division go to the first shards, so the
    shares always sum to exactly ``limit``.  Since the shared-budget protocol
    these are *nominal* shares: enforcement is global (see
    :class:`SharedBudget`), and a shard occupying more than its share is
    simply counted as borrowing.
    """
    if limit is None:
        return [None] * shard_count
    base, remainder = divmod(limit, shard_count)
    return [base + (1 if i < remainder else 0) for i in range(shard_count)]


class ShardedReCache:
    """Thread-safe cache manager presenting the ``ReCache`` API over N shards."""

    #: Lock discipline, machine-checked by ``python -m repro.analysis.lint``.
    #: Per-shard entry state is guarded by each shard's own ``ReCache._lock``;
    #: the wrapper only guards its global sequence and its cross-shard and
    #: lookup counters (a subsumption probe spans shards).
    GUARDED_BY = {
        "_sequence": "_sequence_lock",
        "_cross_shard_rounds": "_balance_lock",
        "_cross_shard_evicted_bytes": "_balance_lock",
        "_lookups": "_lookup_lock",
        "_exact_hits": "_lookup_lock",
        "_subsumption_hits": "_lookup_lock",
        "_misses": "_lookup_lock",
    }

    def __init__(self, config: ReCacheConfig | None = None, shard_count: int | None = None) -> None:
        self.config = config or ReCacheConfig()
        count = shard_count if shard_count is not None else self.config.shard_count
        if count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = count
        self._budget = SharedBudget(self.config.cache_size_limit)
        limits = shard_limits(self.config.cache_size_limit, count)
        self.shards: list[ReCache] = []
        for limit in limits:
            # Each shard keeps its proportional share in its config (for
            # introspection and borrow accounting), but byte enforcement goes
            # through the shared budget: the global limit is the binding one.
            shard_config = self.config.with_overrides(cache_size_limit=limit)
            self.shards.append(ReCache(shard_config, shared_budget=self._budget))
        self._sequence = 0
        self._sequence_lock = threading.Lock()
        # Cross-shard admission-balancing counters (surfaced via stats.extras).
        self._balance_lock = threading.Lock()
        self._cross_shard_rounds = 0
        self._cross_shard_evicted_bytes = 0
        # Lookup counters live on the wrapper: a subsumption probe spans
        # shards, so no single shard could account for it consistently.
        self._lookup_lock = threading.Lock()
        self._lookups = 0
        self._exact_hits = 0
        self._subsumption_hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, key: CacheKey) -> ReCache:
        """The home shard of a cache key.

        Uses a process-independent hash (CRC32 of the key string) rather than
        ``hash()`` so shard placement is reproducible run-to-run despite
        Python's per-process string-hash randomization.
        """
        return self.shards[zlib.crc32(key.as_string().encode("utf-8")) % self.shard_count]

    def _home(self, source: str, predicate: Expression | None) -> ReCache:
        return self.shard_for(CacheKey.for_select(source, predicate))

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def begin_query(self) -> int:
        """Issue a global query sequence number and push it to every shard."""
        with self._sequence_lock:
            self._sequence += 1
            sequence = self._sequence
        for shard in self.shards:
            shard.advance_sequence(sequence)
        return sequence

    @property
    def sequence(self) -> int:
        return self._sequence  # unguarded-read: GIL-atomic int; monitoring path

    @property
    def policy(self) -> EvictionPolicy:
        """The first shard's policy (for introspection; each shard has its own)."""
        return self.shards[0].policy

    def eviction_policies(self) -> list[EvictionPolicy]:
        """All per-shard policy instances (e.g. to install offline schedules)."""
        return [shard.policy for shard in self.shards]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        collected: list[CacheEntry] = []
        for shard in self.shards:
            collected.extend(shard.entries())
        return collected

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def total_bytes(self) -> int:
        return self._budget.value

    @property
    def budget(self) -> SharedBudget:
        """The shared global byte budget all shards draw from."""
        return self._budget

    def has_live_entries(self, source: str) -> bool:
        return any(shard.has_live_entries(source) for shard in self.shards)

    def has_hot_entries(self, source: str) -> bool:
        return any(shard.has_hot_entries(source) for shard in self.shards)

    def get_exact(self, source: str, predicate: Expression | None) -> CacheEntry | None:
        return self._home(source, predicate).get_exact(source, predicate)

    @property
    def stats(self) -> CacheManagerStats:
        """A merged snapshot of all shard counters plus the wrapper's lookups."""
        merged = CacheManagerStats()
        for shard in self.shards:
            merged.merge(shard.stats)
        with self._lookup_lock:
            merged.lookups += self._lookups
            merged.exact_hits += self._exact_hits
            merged.subsumption_hits += self._subsumption_hits
            merged.misses += self._misses
        with self._balance_lock:
            if self._cross_shard_rounds:
                merged.extras["cross_shard_rounds"] = (
                    merged.extras.get("cross_shard_rounds", 0) + self._cross_shard_rounds
                )
                merged.extras["cross_shard_evicted_bytes"] = (
                    merged.extras.get("cross_shard_evicted_bytes", 0)
                    + self._cross_shard_evicted_bytes
                )
        return merged

    @property
    def admission(self):
        """The home of the admission controller is per-shard; expose shard 0's
        (the controller is stateless apart from its configured thresholds)."""
        return self.shards[0].admission

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(
        self, source: str, predicate: Expression | None, fields: list[str]
    ) -> CacheMatch | None:
        """Find an exactly matching or subsuming cache for a select operator.

        The exact probe touches only the key's home shard; subsumption probes
        every shard (one lock at a time) because a subsuming entry's key hashes
        to an arbitrary shard.
        """
        if not self.config.caching_enabled:
            return None
        started = time.perf_counter()
        key = CacheKey.for_select(source, predicate)
        home = self.shard_for(key)

        entry = home.exact_match(source, predicate, fields)
        if entry is not None:
            lookup_time = time.perf_counter() - started
            self._count_lookup("exact")
            return CacheMatch(entry=entry, exact=True, lookup_time=lookup_time)

        if self.config.enable_subsumption:
            key_string = key.as_string()
            matches: list[CacheEntry] = []
            for shard in self.shards:
                matches.extend(
                    shard.subsuming_matches(source, predicate, fields, exclude_key=key_string)
                )
            if matches:
                best = min(matches, key=lambda e: e.nbytes)
                lookup_time = time.perf_counter() - started
                self._count_lookup("subsumption")
                return CacheMatch(entry=best, exact=False, lookup_time=lookup_time)

        self._count_lookup("miss")
        return None

    def _count_lookup(self, outcome: str) -> None:
        with self._lookup_lock:
            self._lookups += 1
            if outcome == "exact":
                self._exact_hits += 1
            elif outcome == "subsumption":
                self._subsumption_hits += 1
            else:
                self._misses += 1

    # ------------------------------------------------------------------
    # Cross-shard admission balancing
    # ------------------------------------------------------------------
    def _balance_for(self, nbytes: int, home: ReCache, exclude: CacheEntry | None = None) -> None:
        """Free global headroom for an admission of ``nbytes``, if needed.

        Runs *before* the admission is routed to its home shard, while this
        thread holds no shard lock: the cross-shard eviction round takes one
        shard lock at a time (snapshot, then per-victim eviction), so two
        concurrent over-share admissions on different shards can never
        deadlock.  The round only fires when the home shard cannot cover the
        deficit from its own entries — the common full-cache admission keeps
        the cheap local path (home policy, home lock), and the global round
        is reserved for the case no single shard can absorb (the over-share
        item the static split used to reject).  Items larger than the whole
        budget are left for the home shard to reject; ``exclude`` (a lazy
        entry being upgraded in place) is never chosen as a victim.
        """
        if nbytes <= 0:
            return
        limit = self._budget.limit
        if limit is not None and nbytes > limit:
            return
        deficit = self._budget.deficit_for(nbytes)
        if deficit <= 0:
            return
        locally_evictable = home.total_bytes - (exclude.nbytes if exclude is not None else 0)
        if deficit > locally_evictable:
            self._cross_shard_evict(deficit, exclude=exclude)

    def _cross_shard_evict(self, bytes_to_free: int, exclude: CacheEntry | None = None) -> int:
        """One cross-shard eviction round; returns the bytes actually freed.

        Victims are chosen across *all* shards by the global benefit metric.
        The candidate snapshot is taken without holding any lock, so a victim
        may already be gone when its home shard is asked to evict it —
        :meth:`ReCache.evict_if_resident` makes that a no-op.
        """
        candidates = [
            entry
            for shard in self.shards
            for entry in shard.entries()
            if entry is not exclude
        ]
        victims = choose_global_victims(candidates, bytes_to_free)
        freed = 0
        for victim in victims:
            freed += self.shard_for(victim.key).evict_if_resident(victim)
        with self._balance_lock:
            self._cross_shard_rounds += 1
            self._cross_shard_evicted_bytes += freed
        return freed

    # ------------------------------------------------------------------
    # Admission / reuse / eviction: route to the entry's home shard
    # ------------------------------------------------------------------
    def admit_eager(
        self,
        source: str,
        source_format: str,
        predicate: Expression | None,
        fields: list[str],
        layout: CacheLayout,
        operator_time: float,
        caching_time: float,
    ) -> CacheEntry | None:
        home = self._home(source, predicate)
        self._balance_for(layout.nbytes, home)
        return home.admit_eager(
            source, source_format, predicate, fields, layout, operator_time, caching_time
        )

    def admit_lazy(
        self,
        source: str,
        source_format: str,
        predicate: Expression | None,
        fields: list[str],
        offsets: list[int],
        operator_time: float,
        caching_time: float,
    ) -> CacheEntry | None:
        home = self._home(source, predicate)
        self._balance_for(8 * len(offsets), home)  # mirrors CacheEntry.nbytes for lazy mode
        return home.admit_lazy(
            source, source_format, predicate, fields, offsets, operator_time, caching_time
        )

    def note_skipped_admission(
        self, source: str | None = None, predicate: Expression | None = None
    ) -> None:
        if source is None:
            self.shards[0].note_skipped_admission()
        else:
            self._home(source, predicate).note_skipped_admission(source, predicate)

    def record_reuse(
        self,
        entry: CacheEntry,
        scan_time: float,
        lookup_time: float,
        observation: LayoutObservation | None = None,
    ) -> str | None:
        return self.shard_for(entry.key).record_reuse(
            entry, scan_time, lookup_time, observation=observation
        )

    def upgrade_lazy(self, entry: CacheEntry, layout: CacheLayout, caching_time: float) -> bool:
        home = self.shard_for(entry.key)
        self._balance_for(layout.nbytes - entry.nbytes, home, exclude=entry)
        return home.upgrade_lazy(entry, layout, caching_time)

    def evict_entry(self, entry: CacheEntry) -> None:
        self.shard_for(entry.key).evict_entry(entry)

    def attach_shm_registry(self, registry) -> None:
        """Wire the shared-memory export registry into every shard's eviction."""
        for shard in self.shards:
            shard.attach_shm_registry(registry)

    def is_resident(self, entry: CacheEntry) -> bool:
        """Whether this exact entry is still cached on its home shard."""
        return self.shard_for(entry.key).is_resident(entry)

    def quarantine(self, entry: CacheEntry) -> bool:
        """Invalidate a poisoned entry on its home shard (see ReCache.quarantine)."""
        return self.shard_for(entry.key).quarantine(entry)

    def recent_evicted_bytes(self) -> int:
        return sum(shard.recent_evicted_bytes() for shard in self.shards)

    def eviction_pressure(self) -> float:
        """Recent evicted bytes across all shards over the global byte budget."""
        limit = self.budget.limit if self.budget.limit is not None else self.config.cache_size_limit
        if not limit:
            return 0.0
        return self.recent_evicted_bytes() / limit

    def benefit_of(self, entry: CacheEntry) -> float:
        return benefit_metric(entry)
