"""A sharded, thread-safe ReCache for the concurrent serving layer.

:class:`ShardedReCache` partitions cache entries by ``hash(CacheKey)`` across N
independently locked :class:`~repro.core.cache_manager.ReCache` shards.  Each
shard owns its own :class:`~repro.core.subsumption.SubsumptionIndex`, eviction
policy instance (including Greedy-Dual baseline state) and statistics, so the
hot path — an exact-match lookup followed by a cache scan — touches exactly one
shard lock and scales with cores instead of serializing on a single mutex.

Byte budget: the global ``cache_size_limit`` is split proportionally across
shards (each shard enforces its share locally, which keeps the global invariant
``total_bytes <= cache_size_limit`` without any cross-shard coordination), and
an :class:`AtomicCounter` shared by all shards mirrors the global occupancy so
``total_bytes`` is an O(1) read that takes no shard lock.

What is and is not atomic:

* exact lookups, admissions, evictions and reuse bookkeeping are atomic *per
  shard* (the entry's home shard lock covers them); a layout *switch* decides
  and installs under the shard lock but performs the conversion itself outside
  it (see :meth:`~repro.core.cache_manager.ReCache.record_reuse`), so a shard
  serving a layout rebuild keeps answering lookups meanwhile;
* a subsumption lookup probes the home shard first and then the other shards
  one at a time — it never holds two shard locks at once, so the candidate set
  is a consistent-per-shard snapshot rather than a global snapshot;
* the query sequence number is issued globally (one atomic increment per
  query) and pushed to every shard, keeping recency stamps comparable across
  shards;
* aggregate ``stats`` are a merged snapshot: per-shard counters are summed at
  read time, and lookup counters (which the wrapper tracks itself, since a
  subsumption probe spans shards) are added on top.

With ``shard_count=1`` the behaviour — entry placement, eviction order,
statistics — is identical to a plain ``ReCache``.
"""

from __future__ import annotations

import threading
import time
import zlib

from repro.core.benefit import benefit_metric
from repro.core.cache_entry import CacheEntry, CacheKey, LayoutObservation
from repro.core.cache_manager import CacheManagerStats, CacheMatch, ReCache
from repro.core.config import ReCacheConfig
from repro.core.eviction import EvictionPolicy
from repro.engine.expressions import Expression
from repro.layouts.base import CacheLayout


class AtomicCounter:
    """A lock-protected integer counter (CPython has no atomic int add)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, initial: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = initial

    def add(self, delta: int) -> int:
        with self._lock:
            self._value += delta
            return self._value

    @property
    def value(self) -> int:
        return self._value


def shard_limits(limit: int | None, shard_count: int) -> list[int | None]:
    """Split a global byte budget into proportional per-shard limits.

    The remainder bytes of an uneven division go to the first shards, so the
    shares always sum to exactly ``limit``.
    """
    if limit is None:
        return [None] * shard_count
    base, remainder = divmod(limit, shard_count)
    return [base + (1 if i < remainder else 0) for i in range(shard_count)]


class ShardedReCache:
    """Thread-safe cache manager presenting the ``ReCache`` API over N shards."""

    def __init__(self, config: ReCacheConfig | None = None, shard_count: int | None = None) -> None:
        self.config = config or ReCacheConfig()
        count = shard_count if shard_count is not None else self.config.shard_count
        if count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = count
        self._budget = AtomicCounter()
        limits = shard_limits(self.config.cache_size_limit, count)
        self.shards: list[ReCache] = []
        for limit in limits:
            shard_config = self.config.with_overrides(cache_size_limit=limit)
            self.shards.append(ReCache(shard_config, shared_budget=self._budget))
        self._sequence = 0
        self._sequence_lock = threading.Lock()
        # Lookup counters live on the wrapper: a subsumption probe spans
        # shards, so no single shard could account for it consistently.
        self._lookup_lock = threading.Lock()
        self._lookups = 0
        self._exact_hits = 0
        self._subsumption_hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, key: CacheKey) -> ReCache:
        """The home shard of a cache key.

        Uses a process-independent hash (CRC32 of the key string) rather than
        ``hash()`` so shard placement is reproducible run-to-run despite
        Python's per-process string-hash randomization.
        """
        return self.shards[zlib.crc32(key.as_string().encode("utf-8")) % self.shard_count]

    def _home(self, source: str, predicate: Expression | None) -> ReCache:
        return self.shard_for(CacheKey.for_select(source, predicate))

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def begin_query(self) -> int:
        """Issue a global query sequence number and push it to every shard."""
        with self._sequence_lock:
            self._sequence += 1
            sequence = self._sequence
        for shard in self.shards:
            shard.advance_sequence(sequence)
        return sequence

    @property
    def sequence(self) -> int:
        return self._sequence

    @property
    def policy(self) -> EvictionPolicy:
        """The first shard's policy (for introspection; each shard has its own)."""
        return self.shards[0].policy

    def eviction_policies(self) -> list[EvictionPolicy]:
        """All per-shard policy instances (e.g. to install offline schedules)."""
        return [shard.policy for shard in self.shards]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        collected: list[CacheEntry] = []
        for shard in self.shards:
            collected.extend(shard.entries())
        return collected

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def total_bytes(self) -> int:
        return self._budget.value

    def has_live_entries(self, source: str) -> bool:
        return any(shard.has_live_entries(source) for shard in self.shards)

    def has_hot_entries(self, source: str) -> bool:
        return any(shard.has_hot_entries(source) for shard in self.shards)

    def get_exact(self, source: str, predicate: Expression | None) -> CacheEntry | None:
        return self._home(source, predicate).get_exact(source, predicate)

    @property
    def stats(self) -> CacheManagerStats:
        """A merged snapshot of all shard counters plus the wrapper's lookups."""
        merged = CacheManagerStats()
        for shard in self.shards:
            merged.merge(shard.stats)
        with self._lookup_lock:
            merged.lookups += self._lookups
            merged.exact_hits += self._exact_hits
            merged.subsumption_hits += self._subsumption_hits
            merged.misses += self._misses
        return merged

    @property
    def admission(self):
        """The home of the admission controller is per-shard; expose shard 0's
        (the controller is stateless apart from its configured thresholds)."""
        return self.shards[0].admission

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(
        self, source: str, predicate: Expression | None, fields: list[str]
    ) -> CacheMatch | None:
        """Find an exactly matching or subsuming cache for a select operator.

        The exact probe touches only the key's home shard; subsumption probes
        every shard (one lock at a time) because a subsuming entry's key hashes
        to an arbitrary shard.
        """
        if not self.config.caching_enabled:
            return None
        started = time.perf_counter()
        key = CacheKey.for_select(source, predicate)
        home = self.shard_for(key)

        entry = home.exact_match(source, predicate, fields)
        if entry is not None:
            lookup_time = time.perf_counter() - started
            self._count_lookup("exact")
            return CacheMatch(entry=entry, exact=True, lookup_time=lookup_time)

        if self.config.enable_subsumption:
            key_string = key.as_string()
            matches: list[CacheEntry] = []
            for shard in self.shards:
                matches.extend(
                    shard.subsuming_matches(source, predicate, fields, exclude_key=key_string)
                )
            if matches:
                best = min(matches, key=lambda e: e.nbytes)
                lookup_time = time.perf_counter() - started
                self._count_lookup("subsumption")
                return CacheMatch(entry=best, exact=False, lookup_time=lookup_time)

        self._count_lookup("miss")
        return None

    def _count_lookup(self, outcome: str) -> None:
        with self._lookup_lock:
            self._lookups += 1
            if outcome == "exact":
                self._exact_hits += 1
            elif outcome == "subsumption":
                self._subsumption_hits += 1
            else:
                self._misses += 1

    # ------------------------------------------------------------------
    # Admission / reuse / eviction: route to the entry's home shard
    # ------------------------------------------------------------------
    def admit_eager(
        self,
        source: str,
        source_format: str,
        predicate: Expression | None,
        fields: list[str],
        layout: CacheLayout,
        operator_time: float,
        caching_time: float,
    ) -> CacheEntry | None:
        return self._home(source, predicate).admit_eager(
            source, source_format, predicate, fields, layout, operator_time, caching_time
        )

    def admit_lazy(
        self,
        source: str,
        source_format: str,
        predicate: Expression | None,
        fields: list[str],
        offsets: list[int],
        operator_time: float,
        caching_time: float,
    ) -> CacheEntry | None:
        return self._home(source, predicate).admit_lazy(
            source, source_format, predicate, fields, offsets, operator_time, caching_time
        )

    def note_skipped_admission(
        self, source: str | None = None, predicate: Expression | None = None
    ) -> None:
        if source is None:
            self.shards[0].note_skipped_admission()
        else:
            self._home(source, predicate).note_skipped_admission(source, predicate)

    def record_reuse(
        self,
        entry: CacheEntry,
        scan_time: float,
        lookup_time: float,
        observation: LayoutObservation | None = None,
    ) -> str | None:
        return self.shard_for(entry.key).record_reuse(
            entry, scan_time, lookup_time, observation=observation
        )

    def upgrade_lazy(self, entry: CacheEntry, layout: CacheLayout, caching_time: float) -> bool:
        return self.shard_for(entry.key).upgrade_lazy(entry, layout, caching_time)

    def evict_entry(self, entry: CacheEntry) -> None:
        self.shard_for(entry.key).evict_entry(entry)

    def benefit_of(self, entry: CacheEntry) -> float:
        return benefit_metric(entry)
