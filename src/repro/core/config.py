"""Configuration knobs of the ReCache cache manager.

Every configurable behaviour from the paper is exposed here so that the
benchmarks can turn individual mechanisms on and off (the four configurations
of Figure 15, the threshold sweep of Figure 12b, the policy comparison of
Figure 14, and the ablation benches).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field


#: query-output representations accepted by the ``result_format`` knobs
RESULT_FORMATS = ("rows", "columnar")

#: execution strategies accepted by the ``execution_mode`` knobs
EXECUTION_MODES = ("threads", "processes")


def validate_execution_mode(value: "str | None", allow_none: bool = False) -> None:
    """Shared membership check for every ``execution_mode`` entry point."""
    if value is None and allow_none:
        return
    if value not in EXECUTION_MODES:
        expected = " or ".join(repr(mode) for mode in EXECUTION_MODES)
        if allow_none:
            expected = f"None, {expected}"
        raise ValueError(f"execution_mode must be {expected}, got {value!r}")


def validate_result_format(value: "str | None", allow_none: bool = False) -> None:
    """Shared membership check for every ``result_format`` entry point.

    One helper keeps the accepted values and the error wording identical
    across the config, per-query, per-call and serving-tier knobs.
    """
    if value is None and allow_none:
        return
    if value not in RESULT_FORMATS:
        expected = " or ".join(repr(fmt) for fmt in RESULT_FORMATS)
        if allow_none:
            expected = f"None, {expected}"
        raise ValueError(f"unknown result format {value!r}; expected {expected}")


#: eviction policy identifiers accepted by :func:`repro.core.policies.make_policy`
EVICTION_POLICIES = (
    "recache",
    "lru",
    "lfu",
    "proteus-lru",
    "vectorwise",
    "monetdb",
    "offline-farthest",
    "offline-log-optimal",
)


@dataclass
class ReCacheConfig:
    """Tunable parameters of a :class:`~repro.core.cache_manager.ReCache` instance."""

    #: cache capacity in bytes; ``None`` means unlimited (used to isolate the
    #: layout-selection experiments from eviction effects).
    cache_size_limit: int | None = None

    #: eviction policy name; see :data:`EVICTION_POLICIES`.
    eviction_policy: str = "recache"

    #: maximum fraction of query time the caching work may add before the
    #: admission controller downgrades to lazy caching (the paper's default
    #: threshold is 10%).
    admission_threshold: float = 0.10

    #: number of records cached both eagerly and lazily at the start of a scan
    #: before the admission decision is made.
    admission_sample_records: int = 200

    #: if False, every cache is built eagerly (the "Eager Caching" baseline).
    adaptive_admission: bool = True

    #: use the paper's to1/tc1..to2/tc2 extrapolation when estimating caching
    #: overhead; False falls back to the naive sample-local ratio (ablation).
    admission_extrapolation: bool = True

    #: if True, only record offsets are ever cached (the "Lazy Caching" baseline).
    always_lazy: bool = False

    #: disable caching entirely (the "No Caching" baseline of Figure 13).
    caching_enabled: bool = True

    #: default layout for caches of nested data (the paper defaults to Parquet
    #: because it is cheaper to build, Figure 6).
    default_nested_layout: str = "parquet"

    #: default layout for caches of flat relational data.
    default_flat_layout: str = "columnar"

    #: if False the layout is never switched after creation (the static
    #: "Parquet" / "Rel. Columnar" baselines of Figures 9, 10 and 15).
    layout_selection: bool = True

    #: if False row-vs-column selection for flat data is skipped.
    row_column_selection: bool = True

    #: fraction of records on which timing system calls are issued
    #: (Section 5.1 recommends < 1%).
    timing_sample_rate: float = 0.01

    #: enable reuse of subsuming caches for range predicates (Section 3.3).
    enable_subsumption: bool = True

    #: look up subsuming caches with the R-tree; False falls back to a linear
    #: scan over cached predicates (ablation).
    use_rtree_index: bool = True

    #: recompute the benefit metric from fresh measurements at every eviction
    #: pass (Section 5.1 reports up to 6% regression when this is disabled).
    recompute_benefit: bool = True

    #: upgrade a lazy cache to an eager one the first time it is reused.
    upgrade_lazy_on_reuse: bool = True

    #: execute plans over :class:`~repro.engine.batch.RecordBatch` chunks with
    #: NumPy predicate masks; False falls back to the row-at-a-time
    #: interpreter (the parity baseline the batch-pipeline bench compares).
    vectorized_execution: bool = True

    #: number of records per :class:`~repro.engine.batch.RecordBatch` produced
    #: by scans in the vectorized pipeline.
    batch_size: int = 1024

    #: query-output representation: ``"rows"`` returns the classic list of row
    #: dictionaries, ``"columnar"`` returns a
    #: :class:`~repro.engine.types.ColumnarResult` backed by the batched
    #: pipeline's record batches (no per-row dict assembly at the pipeline
    #: exit).  Overridable per query via ``Query.result_format`` or
    #: ``QueryEngine.execute(..., result_format=...)``; execution, reports and
    #: cache accounting are identical in both formats.
    result_format: str = "rows"

    #: number of independently locked cache shards; 1 keeps the classic
    #: single-``ReCache`` behaviour, >1 makes the engine build a
    #: :class:`~repro.core.sharded_cache.ShardedReCache` so concurrent queries
    #: stop serializing on one lock.
    shard_count: int = 1

    #: worker threads of the :class:`~repro.engine.server.EngineServer`
    #: thread pool (the concurrent serving layer's degree of parallelism).
    max_workers: int = 4

    #: how cache-hit scans are executed: ``"threads"`` (the default) runs
    #: everything in-process; ``"processes"`` offloads eligible flat
    #: columnar cache hits to a spawn-mode worker-process pool mapping the
    #: columns from shared memory (escaping the GIL), with automatic
    #: fallback to the in-process path for everything else.  Overridable per
    #: query via ``Query.execution_mode`` or ``QueryEngine.execute(...,
    #: execution_mode=...)``.  Defaults from the ``RECACHE_EXECUTION_MODE``
    #: environment variable so CI can re-run whole suites under the pool.
    execution_mode: str = field(
        default_factory=lambda: os.environ.get("RECACHE_EXECUTION_MODE", "threads")
    )

    #: worker processes of the process-pool execution path; ``None`` (the
    #: default) follows ``max_workers``.
    process_workers: int | None = None

    #: backpressure bound of the server's submission queue: a ``submit`` /
    #: ``submit_batch`` call blocks while this many queries are already
    #: pending (queued or executing).  A batch is admitted atomically once
    #: the depth falls below the bound, so the queue may transiently exceed
    #: it by one batch.
    max_pending_queries: int = 256

    #: fault-injection plan spec (see :mod:`repro.faults.plan` for the
    #: grammar, e.g. ``"scan.raw:io_error:rate=0.05"``).  Installed
    #: process-wide by :class:`~repro.engine.session.QueryEngine` on
    #: construction; ``None`` (the default) injects nothing and the fault
    #: hooks cost one ``None`` check per scan.
    faults: str | None = None

    #: default per-query deadline in seconds (wall clock from submission /
    #: execute start); ``None`` disables deadlines.  Overridable per query
    #: via ``Query.deadline``.  An elapsed deadline surfaces as a typed
    #: :class:`~repro.core.errors.DeadlineExceeded`.
    default_deadline: float | None = None

    #: bounded retry for transient scan faults: how many times
    #: ``QueryEngine.execute`` re-runs a query after a
    #: :class:`~repro.core.errors.TransientScanError` before letting it
    #: propagate.
    scan_retry_limit: int = 2

    #: base of the jittered exponential backoff between scan retries, in
    #: seconds (attempt ``n`` sleeps ``backoff * 2^n * uniform(0.5, 1.0)``).
    scan_retry_backoff: float = 0.005

    #: consecutive per-source faults before the circuit breaker opens and
    #: queries against that source route around the cache entirely.
    breaker_failure_threshold: int = 3

    #: seconds an open breaker waits before half-opening for a probe query.
    breaker_cooldown: float = 30.0

    #: eviction-pressure load shedding: when the server's submission queue
    #: is full AND the fraction of the cache budget evicted within the
    #: recent query window reaches this threshold, new submissions are
    #: rejected with a typed :class:`~repro.core.errors.QueryRejected`
    #: instead of queueing (``None`` disables shedding — the default keeps
    #: the pre-existing block-until-capacity behaviour).
    shed_pressure_threshold: float | None = None

    #: number of recent queries (by cache sequence) over which eviction
    #: pressure is measured.
    shed_pressure_window: int = 64

    #: deterministic seed for the sampling RNG used by timers.
    seed: int = 7

    #: free-form labels attached by benchmarks (not interpreted by the cache).
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.eviction_policy not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.eviction_policy!r}; "
                f"expected one of {EVICTION_POLICIES}"
            )
        if not 0.0 < self.admission_threshold <= 1.0:
            raise ValueError("admission_threshold must be in (0, 1]")
        if self.cache_size_limit is not None and self.cache_size_limit <= 0:
            raise ValueError("cache_size_limit must be positive or None")
        if self.default_nested_layout not in ("parquet", "columnar", "row"):
            raise ValueError(f"unknown layout {self.default_nested_layout!r}")
        if self.default_flat_layout not in ("columnar", "row"):
            raise ValueError(f"unknown flat layout {self.default_flat_layout!r}")
        if not 0.0 < self.timing_sample_rate <= 1.0:
            raise ValueError("timing_sample_rate must be in (0, 1]")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        validate_result_format(self.result_format)
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        validate_execution_mode(self.execution_mode)
        if self.process_workers is not None and self.process_workers < 1:
            raise ValueError("process_workers must be >= 1 or None")
        if self.max_pending_queries < 1:
            raise ValueError("max_pending_queries must be >= 1")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be positive or None")
        if self.scan_retry_limit < 0:
            raise ValueError("scan_retry_limit must be >= 0")
        if self.scan_retry_backoff < 0:
            raise ValueError("scan_retry_backoff must be >= 0")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be >= 0")
        if self.shed_pressure_threshold is not None and self.shed_pressure_threshold <= 0:
            raise ValueError("shed_pressure_threshold must be positive or None")
        if self.shed_pressure_window < 1:
            raise ValueError("shed_pressure_window must be >= 1")

    def with_overrides(self, **overrides) -> "ReCacheConfig":
        """A copy of this configuration with the given fields replaced."""
        return dataclasses.replace(self, **overrides)

    @classmethod
    def unlimited(cls, **overrides) -> "ReCacheConfig":
        """A configuration with no capacity limit (layout-selection experiments)."""
        return cls(cache_size_limit=None, **overrides)

    @classmethod
    def baseline_lru_columnar(cls, cache_size_limit: int | None = None) -> "ReCacheConfig":
        """The Columnar/LRU baseline configuration of Figure 15."""
        return cls(
            cache_size_limit=cache_size_limit,
            eviction_policy="lru",
            layout_selection=False,
            default_nested_layout="columnar",
            adaptive_admission=False,
        )

    @classmethod
    def baseline_parquet_greedy(cls, cache_size_limit: int | None = None) -> "ReCacheConfig":
        """The Parquet/Greedy baseline configuration of Figure 15."""
        return cls(
            cache_size_limit=cache_size_limit,
            eviction_policy="recache",
            layout_selection=False,
            default_nested_layout="parquet",
            adaptive_admission=False,
        )

    @classmethod
    def baseline_columnar_greedy(cls, cache_size_limit: int | None = None) -> "ReCacheConfig":
        """The Columnar/Greedy baseline configuration of Figure 15."""
        return cls(
            cache_size_limit=cache_size_limit,
            eviction_policy="recache",
            layout_selection=False,
            default_nested_layout="columnar",
            adaptive_admission=False,
        )

    @classmethod
    def full_recache(cls, cache_size_limit: int | None = None, **overrides) -> "ReCacheConfig":
        """The full ReCache configuration (all reactive mechanisms enabled)."""
        return cls(cache_size_limit=cache_size_limit, **overrides)
