"""Cost model for layout selection (equations (1)-(5) of Section 4.2).

Given the window of :class:`~repro.core.cache_entry.LayoutObservation` records
collected since the last layout switch, the model compares the observed cost of
answering those queries in the current layout against the *estimated* cost of
answering them in the alternative layout, plus the estimated one-off
transformation cost ``T``.

The same machinery doubles as the predictor whose accuracy Figure 7 reports:
:func:`percentage_error` compares a predicted scan cost against the cost
actually measured once the cache is stored in the other layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.cache_entry import LayoutObservation


@dataclass
class SwitchEstimate:
    """Outcome of evaluating the switch condition for one cached item."""

    current_layout: str
    candidate_layout: str
    current_cost: float
    candidate_cost: float
    transformation_cost: float
    should_switch: bool


class LayoutCostModel:
    """Implements the Parquet <-> relational-columnar switch conditions."""

    def __init__(self, minimum_observations: int = 2) -> None:
        #: a switch decision is only attempted once at least this many queries
        #: have touched the cached item since the previous switch, so a single
        #: noisy measurement cannot flip the layout back and forth.
        self.minimum_observations = minimum_observations

    # ------------------------------------------------------------------
    # Parquet -> relational columnar (equations 1-3)
    # ------------------------------------------------------------------
    def evaluate_parquet_to_relational(
        self,
        observations: Sequence[LayoutObservation],
        flattened_rows: int,
    ) -> SwitchEstimate:
        """Compare Parquet's observed cost with the relational estimate.

        ``flattened_rows`` is the paper's ``R``: the number of rows the cached
        item occupies once flattened into a relational columnar layout.
        """
        window = [o for o in observations if o.layout_name == "parquet"]
        cost_parquet = sum(o.data_cost + o.compute_cost for o in window)
        cost_relational = 0.0
        transformation = 0.0
        for obs in window:
            rows = max(1, obs.rows_accessed)
            scale = flattened_rows / rows
            cost_relational += obs.data_cost * scale
            transformation = max(transformation, (obs.data_cost + obs.compute_cost) * scale)
        should_switch = (
            len(window) >= self.minimum_observations
            and cost_parquet > cost_relational + transformation
        )
        return SwitchEstimate(
            current_layout="parquet",
            candidate_layout="columnar",
            current_cost=cost_parquet,
            candidate_cost=cost_relational,
            transformation_cost=transformation,
            should_switch=should_switch,
        )

    # ------------------------------------------------------------------
    # Relational columnar -> Parquet (equations 4-5)
    # ------------------------------------------------------------------
    def evaluate_relational_to_parquet(
        self,
        observations: Sequence[LayoutObservation],
        flattened_rows: int,
        parquet_rows_for: Callable[[LayoutObservation], int],
        compute_cost_estimator: Callable[[int, int], float],
    ) -> SwitchEstimate:
        """Compare the relational layout's observed cost with the Parquet estimate.

        The relational layout has negligible computational cost, so Parquet's
        compute cost cannot be extrapolated from the current measurements;
        instead ``compute_cost_estimator(rows, cols)`` supplies the paper's
        ``ComputeCost`` — the compute cost of the historical Parquet query
        closest to the given rows/columns footprint.

        ``parquet_rows_for(observation)`` returns the number of rows the query
        *would* touch under Parquet (the short parent columns when the query
        only accesses non-nested attributes, all flattened rows otherwise).
        """
        window = [o for o in observations if o.layout_name in ("columnar", "row")]
        cost_relational = sum(o.data_cost for o in window)
        cost_parquet = 0.0
        transformation = 0.0
        for obs in window:
            parquet_rows = max(1, parquet_rows_for(obs))
            compute = compute_cost_estimator(parquet_rows, obs.columns_accessed)
            scale = parquet_rows / max(1, flattened_rows)
            cost_parquet += (obs.data_cost + compute) * scale
            relational_rows = max(1, obs.rows_accessed)
            transformation = max(
                transformation,
                (obs.data_cost + obs.compute_cost) * flattened_rows / relational_rows,
            )
        should_switch = (
            len(window) >= self.minimum_observations
            and cost_relational > cost_parquet + transformation
        )
        return SwitchEstimate(
            current_layout="columnar",
            candidate_layout="parquet",
            current_cost=cost_relational,
            candidate_cost=cost_parquet,
            transformation_cost=transformation,
            should_switch=should_switch,
        )

    # ------------------------------------------------------------------
    # Per-query cost prediction (Figure 7)
    # ------------------------------------------------------------------
    def predict_relational_scan_cost(
        self, observation: LayoutObservation, flattened_rows: int
    ) -> float:
        """Predicted cost of answering one query if the cache were relational."""
        rows = max(1, observation.rows_accessed)
        return observation.data_cost * flattened_rows / rows

    def predict_parquet_scan_cost(
        self,
        observation: LayoutObservation,
        parquet_rows: int,
        compute_cost: float,
    ) -> float:
        """Predicted cost of answering one query if the cache were Parquet."""
        rows = max(1, observation.rows_accessed)
        return (observation.data_cost * parquet_rows / rows) + compute_cost


def percentage_error(predicted: float, actual: float) -> float:
    """Absolute percentage error of a cost prediction (Figure 7's x-axis)."""
    if actual <= 0.0:
        return 0.0 if predicted <= 0.0 else 100.0
    return abs(predicted - actual) / actual * 100.0


def closest_compute_cost(
    history: Sequence[LayoutObservation], rows: int, columns: int
) -> float | None:
    """The paper's ``ComputeCost(rows, cols)``: compute cost of the historical
    Parquet-layout query closest to the given rows/columns footprint.

    When the closest historical query has a different footprint — which is the
    common case right after a layout switch, because the history only contains
    queries of the other access pattern — its measured compute cost is scaled
    linearly to the requested number of values (rows x columns), so the
    estimate remains meaningful.

    Returns ``None`` when no Parquet history exists yet (the selector then
    falls back to a conservative estimate).
    """
    best: LayoutObservation | None = None
    best_distance = float("inf")
    for obs in history:
        if obs.layout_name != "parquet":
            continue
        distance = abs(obs.rows_accessed - rows) + abs(obs.columns_accessed - columns) * 1000.0
        if distance < best_distance:
            best_distance = distance
            best = obs
    if best is None:
        return None
    observed_values = max(1, best.rows_accessed * best.columns_accessed)
    requested_values = max(1, rows * columns)
    return best.compute_cost * requested_values / observed_values
