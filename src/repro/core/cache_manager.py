"""The ReCache cache manager: the coordination point of all reactive decisions.

The query engine interacts with this class at four points of a query's life:

1. :meth:`ReCache.lookup` — before executing a select operator, ask whether an
   exactly matching or subsuming cache exists (measuring lookup time ``l``).
2. :meth:`ReCache.admit_eager` / :meth:`ReCache.admit_lazy` — after a cache
   miss, admit the materialized result (or just the satisfying offsets) under
   the admission controller's decision, evicting older items if capacity is
   exceeded.
3. :meth:`ReCache.record_reuse` — after reusing a cache, update its statistics
   and layout observations, and let the layout selector switch its layout if
   the observed workload warrants it.
4. :meth:`ReCache.upgrade_lazy` — replace a lazy entry with an eager one the
   first time it is reused.

Concurrency model: every public method takes the instance's re-entrant lock,
so one ``ReCache`` may be shared by many threads — the metadata operations
(lookup, admission bookkeeping, eviction, statistics) serialize on the lock
while the expensive work (raw scans, cache scans, layout construction *and*
layout conversion) happens outside it; :meth:`ReCache.record_reuse` decides a
layout switch under the lock, converts outside it, then re-validates liveness
and budget on re-acquire before installing.  For lock-free scaling across
cores, partition the
cache with :class:`~repro.core.sharded_cache.ShardedReCache`, which gives every
shard its own ``ReCache`` (and therefore its own lock, subsumption index and
eviction-policy state).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.admission import AdmissionController
from repro.core.benefit import benefit_metric
from repro.core.cache_entry import CacheEntry, CacheKey, LayoutObservation
from repro.core.config import ReCacheConfig
from repro.core.eviction import EvictionPolicy
from repro.core.layout_selector import LayoutSelector
from repro.core.policies import OfflinePolicy, make_policy
from repro.core.subsumption import SubsumptionIndex
from repro.engine.expressions import Expression
from repro.layouts import convert_layout
from repro.layouts.base import CacheLayout


@dataclass
class CacheMatch:
    """The result of a successful cache lookup."""

    entry: CacheEntry
    exact: bool
    lookup_time: float


@dataclass
class CacheManagerStats:
    """Aggregate counters exposed for reporting and tests."""

    lookups: int = 0
    exact_hits: int = 0
    subsumption_hits: int = 0
    misses: int = 0
    admissions_eager: int = 0
    admissions_lazy: int = 0
    admissions_skipped: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    layout_switches: int = 0
    lazy_upgrades: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def hits(self) -> int:
        return self.exact_hits + self.subsumption_hits

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheManagerStats") -> None:
        """Accumulate another stats object into this one (shard aggregation)."""
        self.lookups += other.lookups
        self.exact_hits += other.exact_hits
        self.subsumption_hits += other.subsumption_hits
        self.misses += other.misses
        self.admissions_eager += other.admissions_eager
        self.admissions_lazy += other.admissions_lazy
        self.admissions_skipped += other.admissions_skipped
        self.evictions += other.evictions
        self.evicted_bytes += other.evicted_bytes
        self.layout_switches += other.layout_switches
        self.lazy_upgrades += other.lazy_upgrades
        for key, value in other.extras.items():
            # Accumulator convention, as in TimingBreakdown.merge: numeric
            # extras sum across shards, anything else keeps the latest value.
            existing = self.extras.get(key)
            if isinstance(value, (int, float)) and isinstance(existing, (int, float)):
                self.extras[key] = existing + value
            else:
                self.extras[key] = value


class ReCache:
    """Reactive cache of intermediate operator results over raw data.

    ``shared_budget``, when given, is an atomic counter mirroring this cache's
    byte occupancy; :class:`~repro.core.sharded_cache.ShardedReCache` passes one
    counter to all shards so the global occupancy is readable in O(1) without
    touching any shard lock.

    When the shared budget carries a hard ``limit`` (a
    :class:`~repro.core.sharded_cache.SharedBudget`), byte enforcement is
    *pooled*: admissions, lazy upgrades and layout switches check and reserve
    headroom against the global limit instead of this shard's
    ``config.cache_size_limit``, which then only marks the shard's nominal
    proportional share (occupancy beyond it counts as borrowing in
    ``stats.extras``).  With one shard the two protocols make identical
    decisions.
    """

    #: Lock discipline, machine-checked by ``python -m repro.analysis.lint``:
    #: every load/store of these fields must hold the declared lock (methods
    #: below the "Internals" banner document ``# caller-holds: self._lock``).
    GUARDED_BY = {
        "_entries": "_lock",
        "_sequence": "_lock",
        "_switches_in_progress": "_lock",
        "_occupancy": "_lock",
        "_reservation": "_lock",
        "_recent_evictions": "_lock",
        "stats": "_lock",
    }

    def __init__(self, config: ReCacheConfig | None = None, shared_budget=None) -> None:
        self.config = config or ReCacheConfig()
        #: bytes reserved in the shared budget by the admission currently in
        #: flight on this shard (always settled before the shard lock drops)
        self._reservation = 0
        self.policy: EvictionPolicy = make_policy(
            self.config.eviction_policy, recompute_benefit=self.config.recompute_benefit
        )
        self.admission = AdmissionController(
            overhead_threshold=self.config.admission_threshold,
            sample_records=self.config.admission_sample_records,
        )
        self.layout_selector = LayoutSelector()
        self.subsumption = SubsumptionIndex(use_rtree=self.config.use_rtree_index)
        self.stats = CacheManagerStats()
        self._entries: dict[str, CacheEntry] = {}
        self._sequence = 0
        self._lock = threading.RLock()
        #: keys whose layout conversion is currently running outside the lock;
        #: concurrent reuses of the same entry skip the (expensive) conversion
        #: instead of racing N rebuilds of which all but one would be dropped.
        self._switches_in_progress: set[str] = set()
        #: incrementally maintained byte occupancy (sum of entry.nbytes)
        self._occupancy = 0
        self._shared_budget = shared_budget
        #: shared-memory export registry (process-pool execution); attached
        #: post-construction so eviction retires published segments in the
        #: same critical section that drops the entry
        self._shm_registry = None
        #: (sequence, nbytes) of recent capacity evictions, pruned to the
        #: configured shed_pressure_window; feeds eviction-pressure shedding
        self._recent_evictions: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def begin_query(self) -> int:
        """Advance the logical clock; returns the new query sequence number."""
        with self._lock:
            self._sequence += 1
            if isinstance(self.policy, OfflinePolicy):
                self.policy.advance_to(self._sequence)
            return self._sequence

    def advance_sequence(self, sequence: int) -> None:
        """Fast-forward the logical clock to an externally issued sequence.

        The sharded cache issues one global sequence per query and pushes it to
        every shard, so per-shard recency/creation stamps stay comparable.
        """
        with self._lock:
            if sequence > self._sequence:
                self._sequence = sequence
                if isinstance(self.policy, OfflinePolicy):
                    self.policy.advance_to(sequence)

    @property
    def sequence(self) -> int:
        return self._sequence  # unguarded-read: GIL-atomic int; monitoring path

    def eviction_policies(self) -> list[EvictionPolicy]:
        """All policy instances managed by this cache (one, unless sharded)."""
        return [self.policy]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return self._occupancy  # unguarded-read: GIL-atomic int; monitoring path

    def has_live_entries(self, source: str) -> bool:
        """True when at least one cached item from ``source`` is resident."""
        with self._lock:
            return any(entry.source == source for entry in self._entries.values())

    def has_hot_entries(self, source: str) -> bool:
        """True when a cached item from ``source`` has already been reused.

        This drives the admission controller's working-set shortcut
        (Section 5.2): once caching a file has demonstrably paid off, further
        accesses to the same file are cached eagerly without re-sampling.
        """
        with self._lock:
            return any(
                entry.source == source and entry.stats.reuse_count > 0
                for entry in self._entries.values()
            )

    def get_exact(self, source: str, predicate: Expression | None) -> CacheEntry | None:
        key = CacheKey.for_select(source, predicate)
        with self._lock:
            return self._entries.get(key.as_string())

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(
        self, source: str, predicate: Expression | None, fields: list[str]
    ) -> CacheMatch | None:
        """Find an exactly matching or subsuming cache for a select operator."""
        if not self.config.caching_enabled:
            return None
        started = time.perf_counter()
        key = CacheKey.for_select(source, predicate)
        with self._lock:
            self.stats.lookups += 1

            entry = self._entries.get(key.as_string())
            if entry is not None and entry.supports_fields(fields):
                lookup_time = time.perf_counter() - started
                self.stats.exact_hits += 1
                return CacheMatch(entry=entry, exact=True, lookup_time=lookup_time)

            if self.config.enable_subsumption:
                matches = self.subsumption.find_subsuming(
                    source, predicate, fields, exclude_key=key.as_string()
                )
                if matches:
                    # Prefer the smallest subsuming cache: cheapest to scan.
                    best = min(matches, key=lambda e: e.nbytes)
                    lookup_time = time.perf_counter() - started
                    self.stats.subsumption_hits += 1
                    return CacheMatch(entry=best, exact=False, lookup_time=lookup_time)

            self.stats.misses += 1
            return None

    def exact_match(
        self, source: str, predicate: Expression | None, fields: list[str]
    ) -> CacheEntry | None:
        """The exactly matching usable entry, if any — no statistics updates.

        Used by the sharded cache, which routes the exact probe to the key's
        home shard and accounts for the lookup itself.
        """
        key = CacheKey.for_select(source, predicate)
        with self._lock:
            entry = self._entries.get(key.as_string())
            if entry is not None and entry.supports_fields(fields):
                return entry
            return None

    def subsuming_matches(
        self,
        source: str,
        predicate: Expression | None,
        fields: list[str],
        exclude_key: str | None = None,
    ) -> list[CacheEntry]:
        """Subsuming entries resident in this cache — no statistics updates."""
        with self._lock:
            return self.subsumption.find_subsuming(
                source, predicate, fields, exclude_key=exclude_key
            )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit_eager(
        self,
        source: str,
        source_format: str,
        predicate: Expression | None,
        fields: list[str],
        layout: CacheLayout,
        operator_time: float,
        caching_time: float,
    ) -> CacheEntry | None:
        """Admit a fully materialized cache entry."""
        if not self.config.caching_enabled:
            return None
        key = CacheKey.for_select(source, predicate)
        entry = CacheEntry(
            key=key,
            source=source,
            source_format=source_format,
            predicate=predicate,
            fields=fields,
            mode="eager",
            layout=layout,
        )
        with self._lock:
            entry.record_creation(self._sequence, operator_time, caching_time)
            if not self._make_room_for(entry):
                self.stats.admissions_skipped += 1
                return None
            try:
                self._install(entry)
            finally:
                # Settle on the exception edge too: a policy/subsumption hook
                # raising mid-install must not strand the pooled reservation.
                self._settle_reservation()
            self.stats.admissions_eager += 1
            return entry

    def admit_lazy(
        self,
        source: str,
        source_format: str,
        predicate: Expression | None,
        fields: list[str],
        offsets: list[int],
        operator_time: float,
        caching_time: float,
    ) -> CacheEntry | None:
        """Admit a lazy (offsets-only) cache entry."""
        if not self.config.caching_enabled:
            return None
        key = CacheKey.for_select(source, predicate)
        entry = CacheEntry(
            key=key,
            source=source,
            source_format=source_format,
            predicate=predicate,
            fields=fields,
            mode="lazy",
            lazy_offsets=offsets,
        )
        with self._lock:
            entry.record_creation(self._sequence, operator_time, caching_time)
            if not self._make_room_for(entry):
                self.stats.admissions_skipped += 1
                return None
            try:
                self._install(entry)
            finally:
                self._settle_reservation()
            self.stats.admissions_lazy += 1
            return entry

    def note_skipped_admission(
        self, source: str | None = None, predicate: Expression | None = None
    ) -> None:
        """Count an admission the executor abandoned before reaching the cache
        (e.g. a layout build that failed on a degenerate result).  The source
        and predicate are routing hints for the sharded cache."""
        with self._lock:
            self.stats.admissions_skipped += 1

    # ------------------------------------------------------------------
    # Reuse
    # ------------------------------------------------------------------
    def record_reuse(
        self,
        entry: CacheEntry,
        scan_time: float,
        lookup_time: float,
        observation: LayoutObservation | None = None,
    ) -> str | None:
        """Update statistics after reusing ``entry``; maybe switch its layout.

        Returns the name of the new layout if a switch was performed.

        The switch *decision* happens under the lock, but the conversion — the
        expensive part, a full rebuild of the cached data in the target layout
        — runs outside it, so concurrent queries on this cache (or shard) are
        not serialized behind a layout rebuild.  The install step re-acquires
        the lock and re-validates entry liveness and the byte budget before
        publishing the converted layout.
        """
        with self._lock:
            entry.record_reuse(self._sequence, scan_time, lookup_time)
            self.policy.on_access(entry, self._sequence)
            if observation is not None:
                self.layout_selector.observe(entry, observation)
            if not self.config.layout_selection or entry.is_lazy:
                return None
            if not self._is_resident(entry):
                # The entry was evicted while this query was scanning it (the
                # scan itself stays valid — it holds the layout reference).
                # Switching a ghost's layout would corrupt the byte accounting.
                return None
            decision = self.layout_selector.decide(entry)
            if not decision.should_switch:
                return None
            target = decision.target_layout
            old_layout = entry.layout
            if target is None or old_layout is None:
                return None
            key = entry.key.as_string()
            if key in self._switches_in_progress:
                # Another thread is already converting this entry; its install
                # will publish the result — a second rebuild would be wasted.
                return None
            self._switches_in_progress.add(key)
        try:
            try:
                converted, conversion_time = convert_layout(
                    old_layout, target, old_layout.schema
                )
            except Exception:
                # The rebuild re-reads the cached bytes, so a conversion
                # failure means the entry itself is suspect: quarantine it
                # instead of leaking a raw scan/corruption error past the
                # reuse path (record_reuse's contract is "raises nothing").
                self.quarantine(entry)
                return None
            with self._lock:
                return self._install_switched_layout(
                    entry, old_layout, converted, conversion_time, target
                )
        finally:
            with self._lock:
                self._switches_in_progress.discard(key)

    def upgrade_lazy(self, entry: CacheEntry, layout: CacheLayout, caching_time: float) -> bool:
        """Replace a lazy entry's offsets with a materialized layout.

        Returns False when the upgrade was skipped: another thread already
        upgraded the entry, the entry was evicted mid-scan, or the eager
        layout cannot fit in the byte budget even after eviction (the entry
        then stays lazy).
        """
        with self._lock:
            if not entry.is_lazy or not self._is_resident(entry):
                return False
            size_delta = layout.nbytes - entry.nbytes
            if self._pooled():
                budget = self._shared_budget
                if layout.nbytes > budget.limit:
                    # The eager form can never fit this budget: remember that,
                    # so reuses stop rebuilding a layout that will be rejected.
                    entry.upgrade_blocked = True
                    return False
                if size_delta > 0:
                    deficit = budget.deficit_for(size_delta)
                    # Local eviction only if this shard (minus the upgrading
                    # entry) can cover the deficit; see _make_room_pooled.
                    if 0 < deficit <= self._occupancy - entry.nbytes:
                        self._evict_until_available(deficit, exclude=entry)
                    if not budget.try_reserve(size_delta):
                        return False
                    self._reservation = size_delta
            else:
                limit = self.config.cache_size_limit
                if limit is not None:
                    if layout.nbytes > limit:
                        entry.upgrade_blocked = True
                        return False
                    self._free_overage(size_delta, exclude=entry)
                    if self._occupancy + size_delta > limit:
                        return False
            try:
                entry.upgrade_to_eager(layout, caching_time)
                self._adjust_occupancy(size_delta)
            finally:
                self._settle_reservation()
            self.stats.lazy_upgrades += 1
            return True

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evict_entry(self, entry: CacheEntry) -> None:
        with self._lock:
            key = entry.key.as_string()
            if key in self._entries and self._entries[key] is entry:
                del self._entries[key]
                self._adjust_occupancy(-entry.nbytes)
            self.subsumption.unregister(entry)
            self.policy.on_evict(entry)
            self.stats.evictions += 1
            self.stats.evicted_bytes += entry.nbytes
            self._recent_evictions.append((self._sequence, entry.nbytes))
            if self._shm_registry is not None:
                # Retire inside the same critical section that drops the
                # entry: a process worker can then never attach a live
                # segment name whose entry is already gone (generation
                # stamping makes the stale name a typed attach failure).
                self._shm_registry.retire(entry)

    def quarantine(self, entry: CacheEntry) -> bool:
        """Invalidate a poisoned entry whose layout scan raised mid-query.

        The entry is removed under the lock with its occupancy (and shared
        budget share) released through the normal eviction path, so a
        corrupted cache can never be served again and never strands bytes.
        Returns False for ghosts (already evicted/replaced) so concurrent
        quarantines of the same entry count it once.
        """
        with self._lock:
            if not self._is_resident(entry):
                return False
            self.evict_entry(entry)
            self.stats.extras["quarantined"] = self.stats.extras.get("quarantined", 0) + 1
            return True

    def recent_evicted_bytes(self) -> int:
        """Bytes evicted within the last ``shed_pressure_window`` queries."""
        window = self.config.shed_pressure_window
        with self._lock:
            horizon = self._sequence - window
            if self._recent_evictions and self._recent_evictions[0][0] <= horizon:
                self._recent_evictions = [
                    (seq, nbytes) for seq, nbytes in self._recent_evictions if seq > horizon
                ]
            return sum(nbytes for _, nbytes in self._recent_evictions)

    def eviction_pressure(self) -> float:
        """Recent evicted bytes as a fraction of the byte budget (0 when unlimited).

        A value near/above 1 means the cache churned through its whole
        capacity within the recent query window — admitting more work will
        thrash, which is the signal the server's load shedding keys off.
        """
        pooled_limit = getattr(self._shared_budget, "limit", None)
        limit = pooled_limit if pooled_limit is not None else self.config.cache_size_limit
        if not limit:
            return 0.0
        return self.recent_evicted_bytes() / limit

    def evict_if_resident(self, entry: CacheEntry) -> int:
        """Evict ``entry`` if it is still resident; returns the bytes freed.

        The cross-shard eviction round snapshots candidates without holding
        any shard lock, so a chosen victim may already be gone (or replaced)
        by the time its home shard is asked to evict it — a ghost eviction
        must not double-count stats or corrupt the byte accounting.
        """
        with self._lock:
            if not self._is_resident(entry):
                return 0
            self.evict_entry(entry)
            return entry.nbytes

    def benefit_of(self, entry: CacheEntry) -> float:
        """The current benefit metric of a cached entry (for reporting)."""
        return benefit_metric(entry)

    def attach_shm_registry(self, registry) -> None:
        """Wire the shared-memory export registry into eviction."""
        self._shm_registry = registry

    def is_resident(self, entry: CacheEntry) -> bool:
        """Whether this exact entry object is still cached (public probe).

        The process-pool offload path re-checks residency *after* exporting
        an entry to shared memory: an eviction racing the export has already
        retired the segment, so serving from it would be a stale read.
        """
        with self._lock:
            return self._is_resident(entry)

    # ------------------------------------------------------------------
    # Internals (all called with the lock held)
    # ------------------------------------------------------------------
    def _is_resident(self, entry: CacheEntry) -> bool:  # caller-holds: self._lock
        return self._entries.get(entry.key.as_string()) is entry

    def _pooled(self) -> bool:  # caller-holds: self._lock
        """True when byte enforcement goes through a shared global budget."""
        return getattr(self._shared_budget, "limit", None) is not None

    def _settle_reservation(self) -> None:  # caller-holds: self._lock
        """Return the in-flight admission's reservation after its install.

        Between the occupancy adjustment and this release the shared budget
        transiently double-counts the admitted bytes, which can only make a
        concurrent reservation fail spuriously — never admit too much.
        """
        if self._reservation:
            self._shared_budget.release(self._reservation)
            self._reservation = 0

    def _adjust_occupancy(self, delta: int) -> None:  # caller-holds: self._lock
        self._occupancy += delta
        if self._shared_budget is not None:
            self._shared_budget.add(delta)

    def _install(self, entry: CacheEntry) -> None:  # caller-holds: self._lock
        key = entry.key.as_string()
        existing = self._entries.get(key)
        if existing is not None:
            # A re-admission with (for example) a wider field set replaces the
            # previous entry for the same operator.
            self.evict_entry(existing)
            self.stats.evictions -= 1  # replacement, not a capacity eviction
            self.stats.evicted_bytes -= existing.nbytes
            self._recent_evictions.pop()  # replacement adds no eviction pressure
        self._entries[key] = entry
        self._adjust_occupancy(entry.nbytes)
        self.policy.on_admit(entry, self._sequence)
        self.subsumption.register(entry)

    def _make_room_for(self, entry: CacheEntry) -> bool:  # caller-holds: self._lock; caller-settles: reservation
        """Ensure the new entry fits; returns False when it cannot fit.

        On success under a pooled budget, the entry's bytes are left reserved
        in the shared budget — the caller installs the entry and settles the
        reservation via :meth:`_settle_reservation` before the lock drops.
        """
        if self._pooled():
            return self._make_room_pooled(entry)
        limit = self.config.cache_size_limit
        if limit is None:
            return True
        if entry.nbytes > limit:
            # The item is larger than the entire cache: never admit it.
            return False
        needed = self._occupancy + entry.nbytes - limit
        if needed > 0:
            self._evict_until_available(needed, exclude=entry)
            if self._occupancy + entry.nbytes > limit:
                # The policy freed fewer bytes than requested (e.g. returned
                # too few victims); admitting now would blow the byte budget.
                return False
        return True

    def _make_room_pooled(self, entry: CacheEntry) -> bool:  # caller-holds: self._lock; caller-settles: reservation
        """Shared-budget admission: the *global* limit is the binding one.

        An entry larger than this shard's proportional share is admissible by
        borrowing global headroom — the fragmentation a statically split
        budget causes cannot happen.  Any global deficit left after the
        coordinator's cross-shard round is covered from this shard's own
        entries (its policy, its lock); the reservation makes the global
        invariant race-free against admissions on other shards.
        """
        budget = self._shared_budget
        nbytes = entry.nbytes
        if nbytes > budget.limit:
            # Larger than the entire global cache: never admit it.
            return False
        deficit = budget.deficit_for(nbytes)
        # Evict locally only when this shard alone can cover the global
        # deficit — flushing every resident for a reservation that would
        # still fail destroys good entries for nothing (the coordinator's
        # cross-shard round already ran if other shards had to contribute).
        if 0 < deficit <= self._occupancy:
            self._evict_until_available(deficit, exclude=entry)
        if not budget.try_reserve(nbytes):
            return False
        self._reservation = nbytes
        share = self.config.cache_size_limit
        if share is not None and self._occupancy + nbytes > share:
            extras = self.stats.extras
            extras["borrowed_admissions"] = extras.get("borrowed_admissions", 0) + 1
            # Only the newly borrowed increment: bytes of this admission that
            # land beyond the share, not the shard's whole standing overage.
            previous_overage = max(0, self._occupancy - share)
            extras["borrowed_bytes"] = (
                extras.get("borrowed_bytes", 0)
                + self._occupancy + nbytes - share - previous_overage
            )
        return True

    def _evict_until_available(self, bytes_to_free: int, exclude: CacheEntry | None = None) -> None:  # caller-holds: self._lock
        candidates = [e for e in self._entries.values() if e is not exclude]
        victims = self.policy.choose_victims(candidates, bytes_to_free)
        for victim in victims:
            self.evict_entry(victim)

    def _free_overage(self, size_delta: int, exclude: CacheEntry) -> None:  # caller-holds: self._lock
        """Evict enough to absorb ``size_delta`` extra bytes, if a limit is set."""
        limit = self.config.cache_size_limit
        if limit is None or size_delta <= 0:
            return
        needed = self._occupancy + size_delta - limit
        if needed > 0:
            self._evict_until_available(needed, exclude=exclude)

    def _install_switched_layout(  # caller-holds: self._lock
        self,
        entry: CacheEntry,
        old_layout: CacheLayout,
        converted: CacheLayout,
        conversion_time: float,
        target: str,
    ) -> str | None:
        """Publish a layout converted outside the lock (lock held by caller).

        The world may have moved while the conversion ran, so everything is
        re-validated: the entry must still be resident and still hold the
        layout the conversion started from (a concurrent switch, upgrade or
        re-admission loses the race and the converted layout is dropped), and
        the converted size must still fit the byte budget after eviction.
        """
        if not self._is_resident(entry) or entry.layout is not old_layout:
            return None
        size_delta = converted.nbytes - entry.nbytes
        if self._pooled():
            budget = self._shared_budget
            if converted.nbytes > budget.limit:
                # The converted layout would not fit at all; keep the old one.
                return None
            if size_delta > 0:
                deficit = budget.deficit_for(size_delta)
                # A reuse-triggered switch gets no cross-shard balancing round
                # (its size is unknown until the conversion finishes), so a
                # global deficit larger than this shard's other residents must
                # fail here WITHOUT evicting: flushing the whole shard for a
                # reservation that still fails would destroy good entries.
                if 0 < deficit <= self._occupancy - entry.nbytes:
                    self._evict_until_available(deficit, exclude=entry)
                if not budget.try_reserve(size_delta):
                    # Eviction could not absorb the growth; keep the old
                    # layout rather than blowing the byte budget.
                    return None
                self._reservation = size_delta
        else:
            limit = self.config.cache_size_limit
            if limit is not None and converted.nbytes > limit:
                # The converted layout would not fit at all; keep the old one.
                return None
            self._free_overage(size_delta, exclude=entry)
            if limit is not None and self._occupancy + size_delta > limit:
                # Eviction could not absorb the growth; keep the old layout
                # rather than blowing the byte budget.
                return None
        try:
            entry.replace_layout(converted)
            self._adjust_occupancy(size_delta)
        finally:
            self._settle_reservation()
        # Converting the cache is additional caching work: fold it into ``c`` so
        # the benefit metric keeps reflecting the true reconstruction cost.
        entry.stats.caching_time += conversion_time
        self.layout_selector.after_switch(entry)
        self.stats.layout_switches += 1
        return target
