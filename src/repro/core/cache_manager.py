"""The ReCache cache manager: the coordination point of all reactive decisions.

The query engine interacts with this class at four points of a query's life:

1. :meth:`ReCache.lookup` — before executing a select operator, ask whether an
   exactly matching or subsuming cache exists (measuring lookup time ``l``).
2. :meth:`ReCache.admit_eager` / :meth:`ReCache.admit_lazy` — after a cache
   miss, admit the materialized result (or just the satisfying offsets) under
   the admission controller's decision, evicting older items if capacity is
   exceeded.
3. :meth:`ReCache.record_reuse` — after reusing a cache, update its statistics
   and layout observations, and let the layout selector switch its layout if
   the observed workload warrants it.
4. :meth:`ReCache.upgrade_lazy` — replace a lazy entry with an eager one the
   first time it is reused.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.admission import AdmissionController
from repro.core.benefit import benefit_metric
from repro.core.cache_entry import CacheEntry, CacheKey, LayoutObservation
from repro.core.config import ReCacheConfig
from repro.core.eviction import EvictionPolicy
from repro.core.layout_selector import LayoutSelector
from repro.core.policies import OfflinePolicy, make_policy
from repro.core.subsumption import SubsumptionIndex
from repro.engine.expressions import Expression
from repro.layouts import convert_layout
from repro.layouts.base import CacheLayout


@dataclass
class CacheMatch:
    """The result of a successful cache lookup."""

    entry: CacheEntry
    exact: bool
    lookup_time: float


@dataclass
class CacheManagerStats:
    """Aggregate counters exposed for reporting and tests."""

    lookups: int = 0
    exact_hits: int = 0
    subsumption_hits: int = 0
    misses: int = 0
    admissions_eager: int = 0
    admissions_lazy: int = 0
    admissions_skipped: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    layout_switches: int = 0
    lazy_upgrades: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def hits(self) -> int:
        return self.exact_hits + self.subsumption_hits

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ReCache:
    """Reactive cache of intermediate operator results over raw data."""

    def __init__(self, config: ReCacheConfig | None = None) -> None:
        self.config = config or ReCacheConfig()
        self.policy: EvictionPolicy = make_policy(
            self.config.eviction_policy, recompute_benefit=self.config.recompute_benefit
        )
        self.admission = AdmissionController(
            overhead_threshold=self.config.admission_threshold,
            sample_records=self.config.admission_sample_records,
        )
        self.layout_selector = LayoutSelector()
        self.subsumption = SubsumptionIndex(use_rtree=self.config.use_rtree_index)
        self.stats = CacheManagerStats()
        self._entries: dict[str, CacheEntry] = {}
        self._sequence = 0

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def begin_query(self) -> int:
        """Advance the logical clock; returns the new query sequence number."""
        self._sequence += 1
        if isinstance(self.policy, OfflinePolicy):
            self.policy.advance_to(self._sequence)
        return self._sequence

    @property
    def sequence(self) -> int:
        return self._sequence

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries.values())

    def has_live_entries(self, source: str) -> bool:
        """True when at least one cached item from ``source`` is resident."""
        return any(entry.source == source for entry in self._entries.values())

    def has_hot_entries(self, source: str) -> bool:
        """True when a cached item from ``source`` has already been reused.

        This drives the admission controller's working-set shortcut
        (Section 5.2): once caching a file has demonstrably paid off, further
        accesses to the same file are cached eagerly without re-sampling.
        """
        return any(
            entry.source == source and entry.stats.reuse_count > 0
            for entry in self._entries.values()
        )

    def get_exact(self, source: str, predicate: Expression | None) -> CacheEntry | None:
        key = CacheKey.for_select(source, predicate)
        return self._entries.get(key.as_string())

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(
        self, source: str, predicate: Expression | None, fields: list[str]
    ) -> CacheMatch | None:
        """Find an exactly matching or subsuming cache for a select operator."""
        if not self.config.caching_enabled:
            return None
        started = time.perf_counter()
        self.stats.lookups += 1

        key = CacheKey.for_select(source, predicate)
        entry = self._entries.get(key.as_string())
        if entry is not None and entry.supports_fields(fields):
            lookup_time = time.perf_counter() - started
            self.stats.exact_hits += 1
            return CacheMatch(entry=entry, exact=True, lookup_time=lookup_time)

        if self.config.enable_subsumption:
            matches = self.subsumption.find_subsuming(source, predicate, fields)
            matches = [m for m in matches if m.key.as_string() != key.as_string()]
            if matches:
                # Prefer the smallest subsuming cache: it is the cheapest to scan.
                best = min(matches, key=lambda e: e.nbytes)
                lookup_time = time.perf_counter() - started
                self.stats.subsumption_hits += 1
                return CacheMatch(entry=best, exact=False, lookup_time=lookup_time)

        self.stats.misses += 1
        return None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit_eager(
        self,
        source: str,
        source_format: str,
        predicate: Expression | None,
        fields: list[str],
        layout: CacheLayout,
        operator_time: float,
        caching_time: float,
    ) -> CacheEntry | None:
        """Admit a fully materialized cache entry."""
        if not self.config.caching_enabled:
            return None
        key = CacheKey.for_select(source, predicate)
        entry = CacheEntry(
            key=key,
            source=source,
            source_format=source_format,
            predicate=predicate,
            fields=fields,
            mode="eager",
            layout=layout,
        )
        entry.record_creation(self._sequence, operator_time, caching_time)
        if not self._make_room_for(entry):
            self.stats.admissions_skipped += 1
            return None
        self._install(entry)
        self.stats.admissions_eager += 1
        return entry

    def admit_lazy(
        self,
        source: str,
        source_format: str,
        predicate: Expression | None,
        fields: list[str],
        offsets: list[int],
        operator_time: float,
        caching_time: float,
    ) -> CacheEntry | None:
        """Admit a lazy (offsets-only) cache entry."""
        if not self.config.caching_enabled:
            return None
        key = CacheKey.for_select(source, predicate)
        entry = CacheEntry(
            key=key,
            source=source,
            source_format=source_format,
            predicate=predicate,
            fields=fields,
            mode="lazy",
            lazy_offsets=offsets,
        )
        entry.record_creation(self._sequence, operator_time, caching_time)
        if not self._make_room_for(entry):
            self.stats.admissions_skipped += 1
            return None
        self._install(entry)
        self.stats.admissions_lazy += 1
        return entry

    # ------------------------------------------------------------------
    # Reuse
    # ------------------------------------------------------------------
    def record_reuse(
        self,
        entry: CacheEntry,
        scan_time: float,
        lookup_time: float,
        observation: LayoutObservation | None = None,
    ) -> str | None:
        """Update statistics after reusing ``entry``; maybe switch its layout.

        Returns the name of the new layout if a switch was performed.
        """
        entry.record_reuse(self._sequence, scan_time, lookup_time)
        self.policy.on_access(entry, self._sequence)
        if observation is not None:
            self.layout_selector.observe(entry, observation)
        if not self.config.layout_selection or entry.is_lazy:
            return None
        decision = self.layout_selector.decide(entry)
        if not decision.should_switch:
            return None
        return self._switch_layout(entry, decision.target_layout)

    def upgrade_lazy(self, entry: CacheEntry, layout: CacheLayout, caching_time: float) -> None:
        """Replace a lazy entry's offsets with a materialized layout."""
        size_delta = layout.nbytes - entry.nbytes
        self._free_overage(size_delta, exclude=entry)
        entry.upgrade_to_eager(layout, caching_time)
        self.stats.lazy_upgrades += 1

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evict_entry(self, entry: CacheEntry) -> None:
        key = entry.key.as_string()
        if key in self._entries and self._entries[key] is entry:
            del self._entries[key]
        self.subsumption.unregister(entry)
        self.policy.on_evict(entry)
        self.stats.evictions += 1
        self.stats.evicted_bytes += entry.nbytes

    def benefit_of(self, entry: CacheEntry) -> float:
        """The current benefit metric of a cached entry (for reporting)."""
        return benefit_metric(entry)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _install(self, entry: CacheEntry) -> None:
        key = entry.key.as_string()
        existing = self._entries.get(key)
        if existing is not None:
            # A re-admission with (for example) a wider field set replaces the
            # previous entry for the same operator.
            self.evict_entry(existing)
            self.stats.evictions -= 1  # replacement, not a capacity eviction
            self.stats.evicted_bytes -= existing.nbytes
        self._entries[key] = entry
        self.policy.on_admit(entry, self._sequence)
        self.subsumption.register(entry)

    def _make_room_for(self, entry: CacheEntry) -> bool:
        """Ensure the new entry fits; returns False when it cannot ever fit."""
        limit = self.config.cache_size_limit
        if limit is None:
            return True
        if entry.nbytes > limit:
            # The item is larger than the entire cache: never admit it.
            return False
        needed = self.total_bytes + entry.nbytes - limit
        if needed > 0:
            self._evict_until_available(needed, exclude=entry)
        return True

    def _evict_until_available(self, bytes_to_free: int, exclude: CacheEntry | None = None) -> None:
        candidates = [e for e in self._entries.values() if e is not exclude]
        victims = self.policy.choose_victims(candidates, bytes_to_free)
        for victim in victims:
            self.evict_entry(victim)

    def _free_overage(self, size_delta: int, exclude: CacheEntry) -> None:
        """Evict enough to absorb ``size_delta`` extra bytes, if a limit is set."""
        limit = self.config.cache_size_limit
        if limit is None or size_delta <= 0:
            return
        needed = self.total_bytes + size_delta - limit
        if needed > 0:
            self._evict_until_available(needed, exclude=exclude)

    def _switch_layout(self, entry: CacheEntry, target: str | None) -> str | None:
        if target is None or entry.layout is None:
            return None
        converted, conversion_time = convert_layout(entry.layout, target, entry.layout.schema)
        size_delta = converted.nbytes - entry.nbytes
        limit = self.config.cache_size_limit
        if limit is not None and converted.nbytes > limit:
            # The converted layout would not fit at all; keep the old one.
            return None
        self._free_overage(size_delta, exclude=entry)
        entry.replace_layout(converted)
        # Converting the cache is additional caching work: fold it into ``c`` so
        # the benefit metric keeps reflecting the true reconstruction cost.
        entry.stats.caching_time += conversion_time
        self.layout_selector.after_switch(entry)
        self.stats.layout_switches += 1
        return target
