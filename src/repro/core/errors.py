"""Typed error taxonomy for failure containment.

Every failure the serving stack can *contain* surfaces as a subclass of
:class:`ReCacheError`, so callers (and the chaos harness) can distinguish
"the system handled a fault and is telling you about it" from a genuine
bug escaping as a bare ``Exception``:

* :class:`TransientScanError` — an IO fault (or injected equivalent) hit a
  raw-source scan; retryable, and :meth:`QueryEngine.execute` retries it
  with jittered backoff up to ``scan_retry_limit`` times.
* :class:`CorruptedCacheError` — a cache entry's layout scan raised; the
  entry is quarantined (evicted, budget released) and the query degrades
  to a raw-source scan.
* :class:`QueryRejected` — load shedding: the server refused the query
  because the queue is full while the cache is under eviction pressure.
* :class:`DeadlineExceeded` — the query's per-query deadline elapsed
  (in queue or mid-execution).
* :class:`WorkerCrashed` — an executor thread died mid-group; affected
  futures are failed with this instead of hanging.
"""

from __future__ import annotations


class ReCacheError(Exception):
    """Base class of every typed, contained failure."""


class TransientScanError(ReCacheError):
    """A raw-source scan failed in a way worth retrying (IO error, short read)."""


class CorruptedCacheError(ReCacheError):
    """A cached layout produced an error mid-scan; the entry is poisoned."""


class QueryRejected(ReCacheError):
    """The server shed this query instead of queueing it (overload protection)."""


class DeadlineExceeded(ReCacheError):
    """The query's deadline elapsed before a result was produced."""


class WorkerCrashed(ReCacheError):
    """An executor worker died while serving this query's group."""
