"""Timing primitives used to instrument query execution and caching.

The paper stresses that naive per-record ``clock_gettime`` instrumentation adds
5-10% overhead to queries, and that ReCache instead samples timing system calls
on fewer than 1% of records (Section 5.1, "Minimizing Cost Monitoring
Overhead").  :class:`SampledTimer` reproduces that behaviour: it only takes a
wall-clock reading for a configurable fraction of the records it is asked to
time and extrapolates the total.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field


class Stopwatch:
    """A simple cumulative stopwatch around :func:`time.perf_counter`.

    The stopwatch can be started and stopped repeatedly; ``elapsed`` is the sum
    of all completed intervals (plus the running one, if any).  It can also be
    used as a context manager::

        watch = Stopwatch()
        with watch:
            do_work()
        print(watch.elapsed)
    """

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is None:
            self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the cumulative elapsed time."""
        if self._started_at is not None:
            self._accumulated += time.perf_counter() - self._started_at
            self._started_at = None
        return self._accumulated

    def reset(self) -> None:
        self._accumulated = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        extra = 0.0
        if self._started_at is not None:
            extra = time.perf_counter() - self._started_at
        return self._accumulated + extra

    def add(self, seconds: float) -> None:
        """Add an externally measured interval to the accumulated time."""
        self._accumulated += seconds

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Stopwatch(elapsed={self.elapsed:.6f}s)"


class SampledTimer:
    """Times a stream of per-record operations by sampling a small fraction.

    For each record the caller invokes :meth:`maybe_start` before the operation
    and :meth:`maybe_stop` after it.  Only a ``sample_rate`` fraction of the
    records actually invoke the clock; the estimated total is the mean sampled
    duration multiplied by the number of records observed.

    A ``sample_rate`` of 1.0 degenerates to exact per-record timing, which the
    ablation bench uses to quantify the monitoring overhead the paper reports.
    """

    def __init__(self, sample_rate: float = 0.01, rng: random.Random | None = None) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self._rng = rng or random.Random(0x5EED)
        self._sampled_time = 0.0
        self._sampled_count = 0
        self._observed_count = 0
        self._pending: float | None = None

    def maybe_start(self) -> bool:
        """Possibly start timing the current record; returns True if sampled."""
        self._observed_count += 1
        if self._rng.random() < self.sample_rate:
            self._pending = time.perf_counter()
            return True
        self._pending = None
        return False

    def maybe_stop(self) -> None:
        """Stop timing the current record if it was sampled."""
        if self._pending is not None:
            self._sampled_time += time.perf_counter() - self._pending
            self._sampled_count += 1
            self._pending = None

    @property
    def observed_count(self) -> int:
        return self._observed_count

    @property
    def sampled_count(self) -> int:
        return self._sampled_count

    @property
    def estimated_total(self) -> float:
        """Estimated total time spent across all observed records."""
        if self._sampled_count == 0:
            return 0.0
        mean = self._sampled_time / self._sampled_count
        return mean * self._observed_count

    def reset(self) -> None:
        self._sampled_time = 0.0
        self._sampled_count = 0
        self._observed_count = 0
        self._pending = None


@dataclass
class TimingBreakdown:
    """Per-query timing breakdown accumulated by the executor.

    Attributes mirror the measurements the ReCache benefit metric needs
    (Section 5.1): operator execution time ``t``, caching time ``c``, cache
    scan time ``s`` and cache lookup time ``l``.
    """

    operator_time: float = 0.0
    caching_time: float = 0.0
    cache_scan_time: float = 0.0
    lookup_time: float = 0.0
    total_time: float = 0.0
    extras: dict = field(default_factory=dict)

    def merge(self, other: "TimingBreakdown") -> None:
        self.operator_time += other.operator_time
        self.caching_time += other.caching_time
        self.cache_scan_time += other.cache_scan_time
        self.lookup_time += other.lookup_time
        self.total_time += other.total_time
        for key, value in other.extras.items():
            self.extras[key] = self.extras.get(key, 0.0) + value

    def as_dict(self) -> dict:
        result = {
            "operator_time": self.operator_time,
            "caching_time": self.caching_time,
            "cache_scan_time": self.cache_scan_time,
            "lookup_time": self.lookup_time,
            "total_time": self.total_time,
        }
        result.update(self.extras)
        return result
