"""Deterministic random-number helpers.

Every workload and dataset generator in the repository accepts a ``seed`` so
that experiments are reproducible run-to-run.  ``make_rng`` centralizes the
construction so that passing either a seed or an existing ``random.Random``
instance behaves consistently everywhere.
"""

from __future__ import annotations

import random


def make_rng(seed_or_rng: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG, or ``None``.

    ``None`` maps to a fixed default seed (not the global RNG) so that callers
    who omit the argument still get deterministic behaviour.
    """
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if seed_or_rng is None:
        seed_or_rng = 0xC0FFEE
    return random.Random(seed_or_rng)


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child RNG from ``rng`` for the given label.

    Used by generators that need several independent random streams (e.g. one
    per table) without the streams interfering when one of them draws a
    different number of values.
    """
    seed = rng.getrandbits(48) ^ (hash(label) & 0xFFFFFFFF)
    return random.Random(seed)
