"""Deterministic random-number helpers.

Every workload and dataset generator in the repository accepts a ``seed`` so
that experiments are reproducible run-to-run.  ``make_rng`` centralizes the
construction so that passing either a seed or an existing ``random.Random``
instance behaves consistently everywhere.
"""

from __future__ import annotations

import random
from bisect import bisect_left


def make_rng(seed_or_rng: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG, or ``None``.

    ``None`` maps to a fixed default seed (not the global RNG) so that callers
    who omit the argument still get deterministic behaviour.
    """
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if seed_or_rng is None:
        seed_or_rng = 0xC0FFEE
    return random.Random(seed_or_rng)


class ZipfianSampler:
    """Samples ranks ``0..n-1`` with probability proportional to ``1/(rank+1)^s``.

    Used by the multi-client workload driver to skew each client's query
    stream toward a small set of hot queries/sources, the access pattern a
    serving cache is built for.  The cumulative weights are precomputed so one
    sample costs a single binary search.
    """

    def __init__(self, n: int, s: float = 1.1) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if s < 0.0:
            raise ValueError("s must be >= 0")
        self.n = n
        self.s = s
        self._cumulative: list[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / float(rank + 1) ** s
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        """Draw one rank using the caller's RNG stream."""
        point = rng.random() * self._total
        return min(self.n - 1, bisect_left(self._cumulative, point))


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child RNG from ``rng`` for the given label.

    Used by generators that need several independent random streams (e.g. one
    per table) without the streams interfering when one of them draws a
    different number of values.
    """
    seed = rng.getrandbits(48) ^ (hash(label) & 0xFFFFFFFF)
    return random.Random(seed)
