"""Small shared utilities: timing, deterministic RNG helpers, unit formatting."""

from repro.utils.timing import Stopwatch, SampledTimer, TimingBreakdown
from repro.utils.rng import make_rng
from repro.utils.units import format_bytes, format_seconds

__all__ = [
    "Stopwatch",
    "SampledTimer",
    "TimingBreakdown",
    "make_rng",
    "format_bytes",
    "format_seconds",
]
