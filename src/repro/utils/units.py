"""Human-readable formatting helpers for report output."""

from __future__ import annotations

_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB"]


def format_bytes(num_bytes: float) -> str:
    """Format a byte count using binary units (e.g. ``1.50 MiB``)."""
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    value = float(num_bytes)
    for unit in _BYTE_UNITS:
        if value < 1024.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Format a duration with a unit adapted to its magnitude."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.3f} s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:04.1f}s"
