"""Declarative query specifications accepted by the query engine.

The paper's workloads are select-project-aggregate (SPA) and select-project-
join (SPJ) queries; :class:`Query` captures exactly that shape: one or more
tables, a conjunctive (range) predicate per table, equi-join clauses between
tables, and a list of aggregates over the joined result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import validate_execution_mode, validate_result_format
from repro.engine.expressions import AggregateSpec, Expression


@dataclass
class TableRef:
    """One data source participating in a query, with its local predicate."""

    source: str
    predicate: Expression | None = None

    def signature(self) -> str:
        pred = self.predicate.signature() if self.predicate is not None else "true"
        return f"{self.source}[{pred}]"


@dataclass
class JoinSpec:
    """An equi-join clause between two of the query's tables."""

    left_source: str
    left_key: str
    right_source: str
    right_key: str

    def signature(self) -> str:
        return f"{self.left_source}.{self.left_key}={self.right_source}.{self.right_key}"


@dataclass
class Query:
    """A select-project-join/aggregate query over registered data sources."""

    tables: list[TableRef]
    aggregates: list[AggregateSpec] = field(default_factory=list)
    joins: list[JoinSpec] = field(default_factory=list)
    group_by: list[str] = field(default_factory=list)
    #: optional label used by workload generators and reports
    label: str = ""
    #: per-query output representation override: ``"rows"``, ``"columnar"``,
    #: or ``None`` to follow ``ReCacheConfig.result_format``.  Deliberately
    #: NOT part of :meth:`signature`: the format only shapes the exit
    #: representation, so the serving tier coalesces identical queries across
    #: formats and converts each duplicate's copy to its requested type.
    result_format: str | None = None
    #: per-query deadline in seconds (wall clock from submission/execution
    #: start), or ``None`` to follow ``ReCacheConfig.default_deadline``.
    #: Like ``result_format``, deliberately NOT part of :meth:`signature`:
    #: the deadline shapes *when* a result must arrive, not *what* it is,
    #: so the serving tier still coalesces identical queries.
    deadline: float | None = None
    #: per-query execution strategy override: ``"threads"``, ``"processes"``,
    #: or ``None`` to follow ``ReCacheConfig.execution_mode``.  Like the two
    #: knobs above, deliberately NOT part of :meth:`signature`: the mode
    #: decides *where* the scan runs, never what it returns (the process
    #: path is parity-tested against the thread path), so coalescing across
    #: modes stays safe.
    execution_mode: str | None = None

    def __post_init__(self) -> None:
        validate_result_format(self.result_format, allow_none=True)
        validate_execution_mode(self.execution_mode, allow_none=True)
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive or None")
        if not self.tables:
            raise ValueError("a query needs at least one table")
        sources = {t.source for t in self.tables}
        if len(sources) != len(self.tables):
            raise ValueError("each source may appear at most once per query")
        for join in self.joins:
            if join.left_source not in sources or join.right_source not in sources:
                raise ValueError(f"join {join.signature()} references unknown sources")

    def table(self, source: str) -> TableRef:
        for table in self.tables:
            if table.source == source:
                return table
        raise KeyError(f"query has no table {source!r}")

    def sources(self) -> list[str]:
        return [t.source for t in self.tables]

    def signature(self) -> str:
        tables = ",".join(t.signature() for t in self.tables)
        joins = ",".join(j.signature() for j in self.joins)
        aggs = ",".join(a.signature() for a in self.aggregates)
        return f"q({tables};{joins};{aggs};{','.join(self.group_by)})"

    @classmethod
    def select_aggregate(
        cls,
        source: str,
        predicate: Expression | None,
        aggregates: list[AggregateSpec],
        label: str = "",
    ) -> "Query":
        """Convenience constructor for single-table SPA queries."""
        return cls(tables=[TableRef(source, predicate)], aggregates=aggregates, label=label)
